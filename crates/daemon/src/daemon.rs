//! The daemon core: admission, scheduling, durability, shedding.
//!
//! A [`Daemon`] glues four pieces together around a pluggable
//! [`JobExecutor`]:
//!
//! * the [`AdmissionQueue`] — bounded, priority-aware, explicit about
//!   every refusal and displacement;
//! * a persistent worker pool — plain threads looping on
//!   [`AdmissionQueue::pop`], each job body isolated behind
//!   `catch_unwind` exactly like a fleet task attempt;
//! * the [`DaemonJournal`] — *accept-before-ack*: a submission is
//!   fsync'd before the client hears `accepted`, every terminal state
//!   is fsync'd when entered, and [`Daemon::start`] replays the
//!   journal so acknowledged-but-incomplete jobs from a crashed
//!   previous life are re-queued (counted in `resumed`);
//! * a watchdog thread — enforces per-job wall-clock deadlines
//!   (re-using the cooperative [`CancelToken`] machinery the fleet
//!   driver honors between attempts) and runs the memory-pressure
//!   reclaim pass, shedding the lowest-priority queued class with an
//!   explicit terminal `shed` state.
//!
//! **Zero silent drops.** Every submission ends in exactly one of:
//! an `accepted` ack followed by a terminal `done`/`failed`/
//! `cancelled`/`shed` state (observable via `status`/`wait`, durable in
//! the journal), or an explicit `rejected` response. Shutdown in
//! [`ShutdownMode::Now`] *parks* instead of dropping: queued and
//! cancelled-by-shutdown jobs keep their journal entries incomplete,
//! which is precisely what makes the next start resume them.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use droidsim_faults::{FaultPlan, FaultSite};
use droidsim_fleet::CancelToken;
use droidsim_kernel::journal;
use droidsim_metrics::{DaemonLedger, FleetLedger};

use crate::faultio::IoFaults;
use crate::headroom::HeadroomProbe;
use crate::journal::{DaemonJournal, JournalView};
use crate::queue::{AdmissionQueue, Admit, QueuedJob};
use crate::spec::{JobSpec, JobState, Priority};
use crate::DaemonError;

/// Executes one accepted job. Implementations must be cooperative:
/// poll [`JobControl::cancel`] (or hand it to a supervised fleet run)
/// so deadlines, client cancels and fast shutdown all work.
pub trait JobExecutor: Send + Sync + 'static {
    /// Runs `spec` to a verdict. Panics are caught by the pool and
    /// reported as [`JobVerdict::Failed`] — they never take a worker
    /// down.
    fn execute(&self, spec: &JobSpec, ctl: &JobControl) -> JobVerdict;
}

/// Everything an executor needs besides the spec.
#[derive(Debug, Clone)]
pub struct JobControl {
    /// The daemon-assigned job id.
    pub id: u64,
    /// Fires on client cancel, blown deadline, or fast shutdown.
    pub cancel: CancelToken,
    /// Where this job's *fleet* journal lives (when the daemon is
    /// journaling): pass it to `FleetOptions::resuming` so a job
    /// interrupted mid-study resumes task-by-task after a restart.
    pub fleet_journal: Option<PathBuf>,
}

/// How an execution ended.
#[derive(Debug, Clone)]
pub enum JobVerdict {
    /// Clean finish with the study digest.
    Done {
        /// The study's combined digest.
        digest: u64,
        /// The job's fleet ledger, folded into the daemon's totals.
        fleet: FleetLedger,
    },
    /// The study could not produce a comparable result.
    Failed {
        /// What went wrong.
        reason: String,
    },
    /// The executor observed the cancel token and stopped early.
    Cancelled {
        /// The executor's view of why (usually overridden by the
        /// daemon's recorded cancel reason).
        reason: String,
    },
}

/// Construction-time knobs for [`Daemon::start`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Admission-queue bound (≥ 1). A full queue rejects or displaces —
    /// it never grows.
    pub queue_capacity: usize,
    /// Pool worker threads (≥ 1): jobs executing concurrently.
    pub workers: usize,
    /// Where the daemon journal (`daemon.journal`) and per-job fleet
    /// journals (`job-<id>.fleet`) live. `None` disables durability —
    /// a restart then resumes nothing.
    pub journal_dir: Option<PathBuf>,
    /// The memory-pressure probe driving the reclaim pass.
    pub headroom: HeadroomProbe,
    /// Fault plan probed once per submission at
    /// [`FaultSite::Admission`].
    pub admission_faults: FaultPlan,
    /// I/O fault shim threaded into the journal (and shareable with
    /// the socket server). Disarmed by default.
    pub io_faults: IoFaults,
    /// Watchdog cadence for deadline checks and reclaim passes.
    pub tick: Duration,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            queue_capacity: 16,
            workers: 2,
            journal_dir: None,
            headroom: HeadroomProbe::disabled(),
            admission_faults: FaultPlan::disarmed(),
            io_faults: IoFaults::disarmed(),
            tick: Duration::from_millis(25),
        }
    }
}

impl DaemonConfig {
    /// The defaults: capacity 16, two workers, no journal, no probe.
    pub fn new() -> DaemonConfig {
        DaemonConfig::default()
    }

    /// Sets the admission-queue bound.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables durability under `dir`.
    pub fn with_journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Installs a headroom probe.
    pub fn with_headroom(mut self, probe: HeadroomProbe) -> Self {
        self.headroom = probe;
        self
    }

    /// Installs an admission fault plan.
    pub fn with_admission_faults(mut self, plan: FaultPlan) -> Self {
        self.admission_faults = plan;
        self
    }

    /// Installs an I/O fault shim (shared with the server for socket
    /// faults when both get the same handle).
    pub fn with_io_faults(mut self, io: IoFaults) -> Self {
        self.io_faults = io;
        self
    }

    /// Sets the watchdog cadence.
    pub fn with_tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }
}

/// The daemon's answer to one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Journaled and queued; the id is live immediately.
    Accepted {
        /// The assigned job id.
        id: u64,
        /// Queue depth right after admission.
        queue_depth: usize,
    },
    /// Refused, with the reason the client is told. Nothing was
    /// journaled; the submission left no trace but this response.
    Rejected {
        /// Why (`queue-full`, `memory-pressure`, `shutting-down`,
        /// `bad-spec: …`, `injected-admission-fault`,
        /// `journal-degraded`, …).
        reason: String,
    },
    /// The spec's `dedupe_key` matched an already-accepted job: nothing
    /// new was scheduled, nothing was journaled. The original job's id
    /// is returned so a client retrying after a lost ack converges on
    /// the one real execution.
    Duplicate {
        /// The originally assigned job id.
        id: u64,
    },
}

/// A point-in-time view of one job, for `status`/`wait` responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The job id.
    pub id: u64,
    /// Lifecycle state (terminal states carry digest/reason).
    pub state: JobState,
    /// The job's priority.
    pub priority: Priority,
    /// The client's label (possibly empty).
    pub tag: String,
}

impl JobStatus {
    /// The status as response-line fields.
    pub fn kv_fields(&self) -> Vec<(&'static str, String)> {
        let mut out = vec![("job_id", self.id.to_string())];
        out.extend(self.state.kv_fields());
        out.push(("priority", self.priority.name().to_owned()));
        if !self.tag.is_empty() {
            out.push(("tag", self.tag.clone()));
        }
        out
    }

    /// Rebuilds a status from decoded response fields.
    pub fn from_fields(fields: &[(String, String)]) -> Result<JobStatus, String> {
        let id = journal::field(fields, "job_id")
            .and_then(|v| v.parse().ok())
            .ok_or("missing job_id= field")?;
        let state = JobState::from_fields(fields)?;
        let priority = journal::field(fields, "priority")
            .and_then(Priority::parse)
            .unwrap_or(Priority::Normal);
        let tag = journal::field(fields, "tag").unwrap_or("").to_owned();
        Ok(JobStatus {
            id,
            state,
            priority,
            tag,
        })
    }
}

/// How [`Daemon::shutdown`] stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop accepting, run the queue dry, then stop. Every accepted
    /// job settles before this returns.
    Drain,
    /// Stop accepting and stop fast: running jobs are cancelled via
    /// their tokens and **parked** (journal entry left incomplete),
    /// queued jobs stay parked too — the next start resumes all of
    /// them. Nothing is lost, just postponed.
    Now,
}

impl ShutdownMode {
    /// The wire tag.
    pub fn name(self) -> &'static str {
        match self {
            ShutdownMode::Drain => "drain",
            ShutdownMode::Now => "now",
        }
    }

    /// Parses a wire tag.
    pub fn parse(tag: &str) -> Option<ShutdownMode> {
        match tag {
            "drain" => Some(ShutdownMode::Drain),
            "now" => Some(ShutdownMode::Now),
            _ => None,
        }
    }
}

/// A point-in-time telemetry snapshot (the `stats` endpoint's payload).
#[derive(Debug, Clone)]
pub struct DaemonStats {
    /// Admission/outcome counters, with the queue gauge and the
    /// allocation counter refreshed at snapshot time.
    pub ledger: DaemonLedger,
    /// Fleet ledgers of every job completed this daemon life, merged.
    pub fleet: FleetLedger,
    /// Pool size.
    pub workers: usize,
    /// Admission-queue bound.
    pub queue_capacity: usize,
    /// Whether shutdown has begun.
    pub draining: bool,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    cancel: CancelToken,
    deadline: Option<Instant>,
    cancel_reason: Option<String>,
    parked: bool,
}

struct AdmissionGate {
    faults: FaultPlan,
    next_id: u64,
    /// `dedupe_key` → original job id, for every accepted job that
    /// supplied a key. Rebuilt from the journal on start, so
    /// idempotency holds across restarts.
    dedupe: BTreeMap<String, u64>,
}

struct Shared {
    executor: Box<dyn JobExecutor>,
    queue: AdmissionQueue,
    jobs: Mutex<BTreeMap<u64, JobEntry>>,
    settled: Condvar,
    ledger: Mutex<DaemonLedger>,
    fleet_totals: Mutex<FleetLedger>,
    journal: Mutex<Option<DaemonJournal>>,
    /// Terminal states owed to the journal: settles whose
    /// `record_state` failed while the journal was refusing writes.
    /// The watchdog's recovery probe drains this before re-arming.
    journal_backlog: Mutex<Vec<(u64, JobState)>>,
    gate: Mutex<AdmissionGate>,
    draining: AtomicBool,
    /// Journal writes are failing: reject new submissions
    /// (`journal-degraded`), finish in-flight work, probe for
    /// recovery. Cleared by the watchdog once writes succeed again.
    degraded: AtomicBool,
    stop_now: AtomicBool,
    stopped: AtomicBool,
    allocs_at_start: u64,
    journal_dir: Option<PathBuf>,
    headroom: HeadroomProbe,
    tick: Duration,
    workers: usize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// The resident scheduler (see module docs). Construct with
/// [`Daemon::start`]; stop with [`Daemon::shutdown`].
pub struct Daemon {
    shared: Arc<Shared>,
    pool: Mutex<Vec<JoinHandle<()>>>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl Daemon {
    /// Builds the daemon: replays the journal (re-queuing acknowledged
    /// incomplete jobs), then spawns the worker pool and the watchdog.
    pub fn start(cfg: DaemonConfig, executor: impl JobExecutor) -> Result<Daemon, DaemonError> {
        let (journal, view) = match &cfg.journal_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join("daemon.journal");
                // Open for append *first*: it repairs whatever a crash
                // tore (a half-written record, even a half-written
                // header) by truncating to the valid prefix, so the
                // load that follows always sees a clean file.
                let journal = DaemonJournal::open_append_with(&path, cfg.io_faults.clone())?;
                let view = DaemonJournal::load(&path)?;
                (Some(journal), view)
            }
            None => (
                None,
                JournalView {
                    next_id: 1,
                    ..JournalView::default()
                },
            ),
        };

        // Reconstruct the ledger so `in_flight` reconciles across the
        // restart: settled previous-life jobs count as accepted+settled,
        // incomplete ones count *only* as resumed (they re-settle in
        // this life).
        let mut ledger = DaemonLedger::new();
        let mut jobs = BTreeMap::new();
        let mut resume = Vec::new();
        // Rebuild the idempotency map (view iterates in id order, so
        // the *first* acceptance of a key wins, matching live order).
        let mut dedupe = BTreeMap::new();
        for j in view.jobs.values() {
            if !j.spec.dedupe_key.is_empty() {
                dedupe.entry(j.spec.dedupe_key.clone()).or_insert(j.id);
            }
        }
        for j in view.jobs.values() {
            let state = match &j.terminal {
                Some(state) => {
                    ledger.accepted += 1;
                    match state {
                        JobState::Done { .. } => ledger.completed += 1,
                        JobState::Failed { .. } => ledger.failed += 1,
                        JobState::Cancelled { .. } => ledger.cancelled += 1,
                        JobState::Shed { .. } => ledger.shed += 1,
                        JobState::Queued | JobState::Running => {
                            unreachable!("non-terminal journaled")
                        }
                    }
                    state.clone()
                }
                None => {
                    ledger.resumed += 1;
                    resume.push(QueuedJob {
                        id: j.id,
                        spec: j.spec.clone(),
                    });
                    JobState::Queued
                }
            };
            jobs.insert(
                j.id,
                JobEntry {
                    spec: j.spec.clone(),
                    state,
                    cancel: CancelToken::new(),
                    // The original acceptance instant is gone; a
                    // deadline re-arms from resume.
                    deadline: j
                        .spec
                        .deadline_ms
                        .map(|ms| Instant::now() + Duration::from_millis(ms)),
                    cancel_reason: None,
                    parked: false,
                },
            );
        }

        let shared = Arc::new(Shared {
            executor: Box::new(executor),
            queue: AdmissionQueue::new(cfg.queue_capacity),
            jobs: Mutex::new(jobs),
            settled: Condvar::new(),
            ledger: Mutex::new(ledger),
            fleet_totals: Mutex::new(FleetLedger::new()),
            journal: Mutex::new(journal),
            journal_backlog: Mutex::new(Vec::new()),
            gate: Mutex::new(AdmissionGate {
                faults: cfg.admission_faults.clone(),
                next_id: view.next_id,
                dedupe,
            }),
            draining: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            stop_now: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            allocs_at_start: droidsim_kernel::alloc_track::current(),
            journal_dir: cfg.journal_dir.clone(),
            headroom: cfg.headroom.clone(),
            tick: cfg.tick,
            workers: cfg.workers.max(1),
        });

        // Acknowledged promises first: resumed jobs enter the queue (in
        // id order, bypassing capacity) before any new submission can.
        for job in resume {
            shared.queue.push_resumed(job);
        }

        let pool = (0..shared.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || watchdog_loop(&shared))
        };
        Ok(Daemon {
            shared,
            pool: Mutex::new(pool),
            watchdog: Mutex::new(Some(watchdog)),
        })
    }

    /// Submits one job: validate → admission-fault probe → dedupe
    /// lookup → degraded check → pressure check → queue decision →
    /// **journal (fsync)** → enqueue → ack. The whole sequence is
    /// serialized on the admission gate so the queue decision cannot be
    /// invalidated before the enqueue (pops only shrink the queue).
    pub fn submit(&self, spec: JobSpec) -> Admission {
        let shared = &self.shared;
        if shared.draining.load(Ordering::Acquire) || shared.stop_now.load(Ordering::Acquire) {
            return self.reject("shutting-down", false);
        }
        if let Err(e) = spec.validate() {
            return self.reject(&format!("bad-spec: {e}"), false);
        }
        let mut gate = lock(&shared.gate);
        if gate.faults.should_inject(FaultSite::Admission) {
            return self.reject("injected-admission-fault", true);
        }
        // Idempotency first: a retry of an already-accepted submission
        // converges on the original id even while degraded or under
        // pressure — the original's journal record is the promise.
        if !spec.dedupe_key.is_empty() {
            if let Some(&original) = gate.dedupe.get(&spec.dedupe_key) {
                lock(&shared.ledger).dedupe_hits += 1;
                return Admission::Duplicate { id: original };
            }
        }
        if shared.degraded.load(Ordering::Acquire) {
            // The journal is refusing writes: accepting would mean
            // acking unjournaled work. Reject explicitly; the watchdog
            // probes for recovery. (Not touching the journal here keeps
            // the probe sequence deterministic for seeded fault plans.)
            return self.reject("journal-degraded", false);
        }
        if shared.headroom.under_pressure() && spec.priority < Priority::High {
            // Load shedding at the door: cheaper than queuing work the
            // reclaim pass would immediately shed again.
            return self.reject("memory-pressure", false);
        }
        if !shared.queue.would_admit(spec.priority) {
            return self.reject("queue-full", false);
        }
        let id = gate.next_id;
        gate.next_id += 1;
        lock(&shared.jobs).insert(
            id,
            JobEntry {
                spec: spec.clone(),
                state: JobState::Queued,
                cancel: CancelToken::new(),
                deadline: spec
                    .deadline_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms)),
                cancel_reason: None,
                parked: false,
            },
        );
        // Accept-before-ack: the fsync'd journal record is the promise.
        let journal_failed = {
            let mut journal = lock(&shared.journal);
            match journal.as_mut() {
                Some(j) => j.record_accepted(id, &spec).is_err(),
                None => false,
            }
        };
        if journal_failed {
            // Never ack unjournaled work: withdraw the entry, enter
            // degraded, and tell the client exactly why. The id is
            // burned, not reused — ids only ever move forward.
            lock(&shared.jobs).remove(&id);
            note_journal_fault(shared);
            return self.reject("journal-degraded", false);
        }
        if !spec.dedupe_key.is_empty() {
            gate.dedupe.insert(spec.dedupe_key.clone(), id);
        }
        let depth = match shared.queue.try_admit(QueuedJob { id, spec }) {
            Admit::Queued { depth } => depth,
            Admit::Displaced { shed, depth } => {
                settle(
                    shared,
                    shed.id,
                    JobState::Shed {
                        reason: "displaced-by-higher-priority".to_owned(),
                    },
                );
                depth
            }
            Admit::Full => {
                // Defensively unreachable (`would_admit` held under the
                // gate): keep the no-silent-drop contract anyway by
                // shedding *explicitly* — the ack stands, the status
                // says shed.
                settle(
                    shared,
                    id,
                    JobState::Shed {
                        reason: "admission-race".to_owned(),
                    },
                );
                shared.queue.depth()
            }
        };
        let mut ledger = lock(&shared.ledger);
        ledger.accepted += 1;
        ledger.observe_queue_depth(depth as u64);
        Admission::Accepted {
            id,
            queue_depth: depth,
        }
    }

    fn reject(&self, reason: &str, injected: bool) -> Admission {
        let mut ledger = lock(&self.shared.ledger);
        ledger.rejected += 1;
        if injected {
            ledger.rejected_injected += 1;
        }
        Admission::Rejected {
            reason: reason.to_owned(),
        }
    }

    /// The job's current status, `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let jobs = lock(&self.shared.jobs);
        jobs.get(&id).map(|e| status_of(id, e))
    }

    /// Blocks until the job settles or `timeout` elapses; returns the
    /// status either way (`None` only for an unknown id).
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        let mut jobs = lock(&self.shared.jobs);
        loop {
            let entry = jobs.get(&id)?;
            if entry.state.is_terminal() {
                return Some(status_of(id, entry));
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(status_of(id, entry));
            }
            let wait_for = (deadline - now).min(Duration::from_millis(50));
            let (guard, _) = self
                .shared
                .settled
                .wait_timeout(jobs, wait_for)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            jobs = guard;
        }
    }

    /// Cooperatively cancels a job: a still-queued job settles
    /// `cancelled` immediately, a running one when its executor
    /// observes the token. Returns the post-request status.
    pub fn cancel(&self, id: u64) -> Option<JobStatus> {
        let shared = &self.shared;
        {
            let mut jobs = lock(&shared.jobs);
            let entry = jobs.get_mut(&id)?;
            if entry.state.is_terminal() {
                return Some(status_of(id, entry));
            }
            entry
                .cancel_reason
                .get_or_insert_with(|| "client-cancel".to_owned());
            entry.cancel.cancel();
        }
        if shared.queue.remove(id).is_some() {
            settle(
                shared,
                id,
                JobState::Cancelled {
                    reason: "client-cancel".to_owned(),
                },
            );
        }
        self.status(id)
    }

    /// A telemetry snapshot with the queue gauge and allocation counter
    /// refreshed now.
    pub fn stats(&self) -> DaemonStats {
        let shared = &self.shared;
        let snapshot = {
            let mut ledger = lock(&shared.ledger);
            ledger.observe_queue_depth(shared.queue.depth() as u64);
            ledger.alloc_events =
                droidsim_kernel::alloc_track::current().saturating_sub(shared.allocs_at_start);
            ledger.clone()
        };
        DaemonStats {
            ledger: snapshot,
            fleet: lock(&shared.fleet_totals).clone(),
            workers: shared.workers,
            queue_capacity: shared.queue.capacity(),
            draining: shared.draining.load(Ordering::Acquire),
        }
    }

    /// Stops the daemon (see [`ShutdownMode`]). Blocks until the pool
    /// and watchdog have exited. Idempotent.
    pub fn shutdown(&self, mode: ShutdownMode) {
        let shared = &self.shared;
        shared.draining.store(true, Ordering::Release);
        match mode {
            ShutdownMode::Drain => {
                let mut jobs = lock(&shared.jobs);
                loop {
                    let busy = jobs.values().any(|e| !e.state.is_terminal() && !e.parked);
                    if !busy && shared.queue.depth() == 0 {
                        break;
                    }
                    let (guard, _) = shared
                        .settled
                        .wait_timeout(jobs, Duration::from_millis(50))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    jobs = guard;
                }
            }
            ShutdownMode::Now => {
                shared.stop_now.store(true, Ordering::Release);
                let jobs = lock(&shared.jobs);
                for entry in jobs.values() {
                    // A cancel without a recorded reason is the parking
                    // signal run_job() looks for.
                    if matches!(entry.state, JobState::Running) && entry.cancel_reason.is_none() {
                        entry.cancel.cancel();
                    }
                }
            }
        }
        shared.queue.wake_all();
        for handle in lock(&self.pool).drain(..) {
            let _ = handle.join();
        }
        shared.stopped.store(true, Ordering::Release);
        if let Some(handle) = lock(&self.watchdog).take() {
            let _ = handle.join();
        }
    }

    /// Whether [`Daemon::shutdown`] has completed.
    pub fn is_stopped(&self) -> bool {
        self.shared.stopped.load(Ordering::Acquire)
    }

    /// Whether shutdown has begun (new submissions are rejected).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Whether the journal is refusing writes and new submissions are
    /// being rejected with `journal-degraded`.
    pub fn is_degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::Acquire)
    }

    /// Terminal states still owed to the journal (settles that could
    /// not be recorded while degraded).
    pub fn journal_backlog_len(&self) -> usize {
        lock(&self.shared.journal_backlog).len()
    }

    /// Counts a connection refused by the server's concurrency cap.
    pub fn note_conn_rejected(&self) {
        lock(&self.shared.ledger).conns_rejected += 1;
    }

    /// Counts a connection closed by the server's read timeout.
    pub fn note_slowloris(&self) {
        lock(&self.shared.ledger).slowloris_closed += 1;
    }

    /// The `health` endpoint's fields: the lifecycle state machine
    /// (`running|draining|degraded|stopped`) plus journal status.
    pub fn health_fields(&self) -> Vec<(&'static str, String)> {
        let state = if self.is_stopped() {
            "stopped"
        } else if self.is_draining() {
            "draining"
        } else if self.is_degraded() {
            "degraded"
        } else {
            "running"
        };
        vec![
            ("state", state.to_owned()),
            (
                "journal",
                if self.shared.journal_dir.is_some() {
                    "enabled".to_owned()
                } else {
                    "disabled".to_owned()
                },
            ),
            ("journal_degraded", self.is_degraded().to_string()),
            ("journal_backlog", self.journal_backlog_len().to_string()),
            (
                "in_flight",
                lock(&self.shared.ledger).in_flight().to_string(),
            ),
        ]
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Best-effort fast stop; threads exit on their own (they only
        // hold an Arc<Shared>) so dropping without shutdown() leaks
        // nothing but a little latency.
        self.shared.draining.store(true, Ordering::Release);
        self.shared.stop_now.store(true, Ordering::Release);
        self.shared.queue.wake_all();
    }
}

fn status_of(id: u64, entry: &JobEntry) -> JobStatus {
    JobStatus {
        id,
        state: entry.state.clone(),
        priority: entry.spec.priority,
        tag: entry.spec.tag.clone(),
    }
}

/// Moves a job to a terminal state exactly once: table, journal,
/// ledger, waiters — in that order (the lock order everywhere is
/// jobs → journal → ledger).
fn settle(shared: &Shared, id: u64, state: JobState) {
    debug_assert!(state.is_terminal());
    {
        let mut jobs = lock(&shared.jobs);
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        if entry.state.is_terminal() {
            return;
        }
        entry.state = state.clone();
    }
    let journal_failed = {
        let mut journal = lock(&shared.journal);
        match journal.as_mut() {
            Some(j) => j.record_state(id, &state).is_err(),
            None => false,
        }
    };
    if journal_failed {
        // The settle stands in memory (waiters see it, the executor's
        // work is not redone) but the journal is owed the record: queue
        // it on the backlog the recovery probe drains, and degrade so
        // no *new* work is acked on a journal that can't keep promises.
        lock(&shared.journal_backlog).push((id, state.clone()));
        note_journal_fault(shared);
    }
    {
        let mut ledger = lock(&shared.ledger);
        match &state {
            JobState::Done { .. } => ledger.completed += 1,
            JobState::Failed { .. } => ledger.failed += 1,
            JobState::Cancelled { .. } => ledger.cancelled += 1,
            JobState::Shed { .. } => ledger.shed += 1,
            JobState::Queued | JobState::Running => {}
        }
    }
    shared.settled.notify_all();
}

/// Parks a job at fast shutdown: back to `Queued` in the table, journal
/// entry left incomplete, so the next start re-queues it.
fn park(shared: &Shared, id: u64) {
    {
        let mut jobs = lock(&shared.jobs);
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        if entry.state.is_terminal() {
            return;
        }
        entry.state = JobState::Queued;
        entry.parked = true;
    }
    shared.settled.notify_all();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let Some(job) = shared.queue.pop(&shared.stop_now, &shared.draining) else {
            return;
        };
        run_job(shared, &job);
    }
}

fn run_job(shared: &Arc<Shared>, job: &QueuedJob) {
    let id = job.id;
    let ctl = {
        let mut jobs = lock(&shared.jobs);
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        if entry.state.is_terminal() {
            return; // shed or deadline-cancelled while queued
        }
        if entry.cancel.is_cancelled() && !shared.stop_now.load(Ordering::Acquire) {
            let reason = entry
                .cancel_reason
                .clone()
                .unwrap_or_else(|| "client-cancel".to_owned());
            drop(jobs);
            settle(shared, id, JobState::Cancelled { reason });
            return;
        }
        entry.state = JobState::Running;
        JobControl {
            id,
            cancel: entry.cancel.clone(),
            fleet_journal: shared
                .journal_dir
                .as_ref()
                .map(|d| d.join(format!("job-{id}.fleet"))),
        }
    };
    let verdict = match catch_unwind(AssertUnwindSafe(|| {
        shared.executor.execute(&job.spec, &ctl)
    })) {
        Ok(v) => v,
        Err(p) => JobVerdict::Failed {
            reason: format!("executor panicked: {}", panic_text(p)),
        },
    };
    match verdict {
        JobVerdict::Done { digest, fleet } => {
            lock(&shared.fleet_totals).merge(&fleet);
            settle(shared, id, JobState::Done { digest });
        }
        JobVerdict::Failed { reason } => {
            settle(shared, id, JobState::Failed { reason });
        }
        JobVerdict::Cancelled { reason } => {
            let recorded = lock(&shared.jobs)
                .get(&id)
                .and_then(|e| e.cancel_reason.clone());
            if shared.stop_now.load(Ordering::Acquire) && recorded.is_none() {
                // Fast shutdown, not a real cancellation: park for the
                // next life instead of burning the acknowledgment.
                park(shared, id);
            } else {
                settle(
                    shared,
                    id,
                    JobState::Cancelled {
                        reason: recorded.unwrap_or(reason),
                    },
                );
            }
        }
    }
}

fn watchdog_loop(shared: &Arc<Shared>) {
    while !shared.stopped.load(Ordering::Acquire) {
        std::thread::sleep(shared.tick);
        if shared.stop_now.load(Ordering::Acquire) {
            return;
        }
        enforce_deadlines(shared);
        reclaim_under_pressure(shared);
        probe_journal(shared);
        let depth = shared.queue.depth() as u64;
        lock(&shared.ledger).observe_queue_depth(depth);
    }
}

/// Counts a journal write/fsync failure and enters the degraded state
/// (the entry is counted once per running-to-degraded transition).
fn note_journal_fault(shared: &Shared) {
    let mut ledger = lock(&shared.ledger);
    ledger.journal_faults += 1;
    if !shared.degraded.swap(true, Ordering::AcqRel) {
        ledger.degraded_entries += 1;
    }
}

/// The degraded daemon's path back: each watchdog tick, first pay the
/// journal what it is owed (the settle backlog), then prove the write
/// path with a no-op probe record. Only when both succeed does the
/// daemon re-arm and accept submissions again.
fn probe_journal(shared: &Shared) {
    if !shared.degraded.load(Ordering::Acquire) {
        return;
    }
    let mut journal = lock(&shared.journal);
    let Some(j) = journal.as_mut() else {
        // No journal configured: nothing to be degraded about.
        shared.degraded.store(false, Ordering::Release);
        return;
    };
    loop {
        let owed = lock(&shared.journal_backlog).first().cloned();
        let Some((id, state)) = owed else { break };
        if j.record_state(id, &state).is_err() {
            lock(&shared.ledger).journal_faults += 1;
            return; // still failing; try again next tick
        }
        lock(&shared.journal_backlog).remove(0);
    }
    match j.probe() {
        Ok(()) => shared.degraded.store(false, Ordering::Release),
        Err(_) => lock(&shared.ledger).journal_faults += 1,
    }
}

fn enforce_deadlines(shared: &Shared) {
    let now = Instant::now();
    let expired: Vec<u64> = {
        let mut jobs = lock(&shared.jobs);
        let mut out = Vec::new();
        for (&id, entry) in jobs.iter_mut() {
            if !entry.state.is_terminal() && entry.deadline.is_some_and(|d| d <= now) {
                entry.deadline = None; // fire once
                out.push(id);
            }
        }
        out
    };
    for id in expired {
        lock(&shared.ledger).deadline_expired += 1;
        if shared.queue.remove(id).is_some() {
            // Never started: settle straight away.
            settle(
                shared,
                id,
                JobState::Cancelled {
                    reason: "deadline-exceeded".to_owned(),
                },
            );
        } else {
            // Running (or about to finish): cancel cooperatively; the
            // worker settles it with the recorded reason.
            let mut jobs = lock(&shared.jobs);
            if let Some(entry) = jobs.get_mut(&id) {
                if !entry.state.is_terminal() {
                    entry
                        .cancel_reason
                        .get_or_insert_with(|| "deadline-exceeded".to_owned());
                    entry.cancel.cancel();
                }
            }
        }
    }
}

fn reclaim_under_pressure(shared: &Shared) {
    if !shared.headroom.under_pressure() {
        return;
    }
    // Warm-path memo caches are the cheapest memory to give back: drop
    // their cold half before shedding any queued work. Reclaim never
    // changes results — evicted entries are re-derived on the cold path.
    droidsim_kernel::memo::reclaim_all();
    lock(&shared.ledger).reclaim_passes += 1;
    let victims = shared.queue.shed_lowest_class(Priority::High);
    for victim in victims {
        settle(
            shared,
            victim.id,
            JobState::Shed {
                reason: "memory-pressure".to_owned(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobKind;
    use std::sync::atomic::AtomicU64;

    /// Deterministic stand-in digest: tests compare against this.
    fn digest_of_seed(seed: u64) -> u64 {
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0D1D
    }

    /// A cooperative executor: sleeps `work_ms` in small slices,
    /// polling the cancel token, then reports the seed digest. Seeds
    /// in `fail_seeds` fail; seeds in `panic_seeds` panic.
    struct TestExecutor {
        work_ms: u64,
        fail_seeds: Vec<u64>,
        panic_seeds: Vec<u64>,
    }

    impl TestExecutor {
        fn instant() -> TestExecutor {
            TestExecutor::slow(0)
        }

        fn slow(work_ms: u64) -> TestExecutor {
            TestExecutor {
                work_ms,
                fail_seeds: Vec::new(),
                panic_seeds: Vec::new(),
            }
        }
    }

    impl JobExecutor for TestExecutor {
        fn execute(&self, spec: &JobSpec, ctl: &JobControl) -> JobVerdict {
            let total = Duration::from_millis(self.work_ms);
            let started = Instant::now();
            while started.elapsed() < total {
                if ctl.cancel.is_cancelled() {
                    return JobVerdict::Cancelled {
                        reason: "executor-observed-cancel".to_owned(),
                    };
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            if self.panic_seeds.contains(&spec.seed) {
                panic!("synthetic executor panic at seed {}", spec.seed);
            }
            if self.fail_seeds.contains(&spec.seed) {
                return JobVerdict::Failed {
                    reason: "synthetic failure".to_owned(),
                };
            }
            JobVerdict::Done {
                digest: digest_of_seed(spec.seed),
                fleet: FleetLedger::new(),
            }
        }
    }

    fn spec(seed: u64) -> JobSpec {
        JobSpec::new(JobKind::Fig10).with_seed(seed)
    }

    fn accepted_id(adm: &Admission) -> u64 {
        match adm {
            Admission::Accepted { id, .. } => *id,
            Admission::Rejected { reason } => panic!("expected acceptance, got {reason}"),
            Admission::Duplicate { id } => panic!("expected acceptance, got duplicate of {id}"),
        }
    }

    /// Polls until the job leaves the queue (a worker claimed it) so
    /// tests can fill the queue behind it without racing the pool.
    fn wait_until_running(d: &Daemon, id: u64) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while d.status(id).unwrap().state == JobState::Queued {
            assert!(Instant::now() < deadline, "job {id} never started");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("droidsimd-core-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn accepted_jobs_complete_with_deterministic_digests() {
        let d =
            Daemon::start(DaemonConfig::new().with_workers(2), TestExecutor::instant()).unwrap();
        let ids: Vec<(u64, u64)> = (0..4)
            .map(|i| {
                let seed = 100 + i;
                (accepted_id(&d.submit(spec(seed))), seed)
            })
            .collect();
        for (id, seed) in ids {
            let status = d.wait(id, Duration::from_secs(5)).unwrap();
            assert_eq!(
                status.state,
                JobState::Done {
                    digest: digest_of_seed(seed)
                },
                "job {id}"
            );
        }
        d.shutdown(ShutdownMode::Drain);
        let stats = d.stats();
        assert_eq!(stats.ledger.accepted, 4);
        assert_eq!(stats.ledger.completed, 4);
        assert_eq!(stats.ledger.in_flight(), 0);
    }

    #[test]
    fn full_queue_rejects_explicitly_and_loses_nothing() {
        let d = Daemon::start(
            DaemonConfig::new().with_workers(1).with_capacity(2),
            TestExecutor::slow(30),
        )
        .unwrap();
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for seed in 0..8 {
            match d.submit(spec(seed)) {
                Admission::Accepted { id, .. } => accepted.push((id, seed)),
                Admission::Rejected { reason } => {
                    assert_eq!(reason, "queue-full");
                    rejected += 1;
                }
                Admission::Duplicate { id } => panic!("no dedupe keys, got duplicate of {id}"),
            }
        }
        assert!(rejected > 0, "8 submits into capacity 2 must overflow");
        d.shutdown(ShutdownMode::Drain);
        for (id, seed) in &accepted {
            let status = d.status(*id).unwrap();
            assert_eq!(
                status.state,
                JobState::Done {
                    digest: digest_of_seed(*seed)
                },
                "acknowledged job {id} must complete"
            );
        }
        let stats = d.stats();
        assert_eq!(stats.ledger.accepted, accepted.len() as u64);
        assert_eq!(stats.ledger.rejected, rejected);
        assert_eq!(stats.ledger.in_flight(), 0);
    }

    #[test]
    fn high_priority_displaces_and_pressure_sheds_explicitly() {
        let gauge = Arc::new(AtomicU64::new(u64::MAX));
        let d = Daemon::start(
            DaemonConfig::new()
                .with_workers(1)
                .with_capacity(2)
                .with_tick(Duration::from_millis(5))
                .with_headroom(HeadroomProbe::fixed(gauge.clone(), 1000)),
            TestExecutor::slow(60),
        )
        .unwrap();
        // Worker grabs the first job; two Normal jobs fill the queue.
        let running = accepted_id(&d.submit(spec(1)));
        wait_until_running(&d, running);
        let normal_a = accepted_id(&d.submit(spec(2)));
        let normal_b = accepted_id(&d.submit(spec(3)));
        // Queue full for equal priority (no displacement within a class)…
        assert!(matches!(
            d.submit(spec(4)),
            Admission::Rejected { reason } if reason == "queue-full"
        ));
        // …but High displaces the newest Normal job, which sheds
        // explicitly.
        let high = accepted_id(&d.submit(spec(5).with_priority(Priority::High)));
        let shed = d.status(normal_b).unwrap();
        assert_eq!(
            shed.state,
            JobState::Shed {
                reason: "displaced-by-higher-priority".to_owned()
            }
        );
        // Memory pressure: the reclaim pass sheds the queued Normal job…
        gauge.store(1, Ordering::Release);
        let shed_status = d.wait(normal_a, Duration::from_secs(2)).expect("job known");
        assert_eq!(
            shed_status.state,
            JobState::Shed {
                reason: "memory-pressure".to_owned()
            }
        );
        // …and the door rejects non-High while pressure lasts.
        assert!(matches!(
            d.submit(spec(6)),
            Admission::Rejected { reason } if reason == "memory-pressure"
        ));
        gauge.store(u64::MAX, Ordering::Release);
        d.shutdown(ShutdownMode::Drain);
        for id in [running, high] {
            assert!(
                matches!(d.status(id).unwrap().state, JobState::Done { .. }),
                "job {id} must still complete"
            );
        }
        let stats = d.stats();
        assert_eq!(stats.ledger.shed, 2);
        assert!(stats.ledger.reclaim_passes >= 1);
        assert_eq!(stats.ledger.in_flight(), 0, "{}", stats.ledger);
    }

    #[test]
    fn deadlines_cancel_queued_and_running_jobs() {
        let d = Daemon::start(
            DaemonConfig::new()
                .with_workers(1)
                .with_tick(Duration::from_millis(5)),
            TestExecutor::slow(400),
        )
        .unwrap();
        let running = accepted_id(&d.submit(spec(1).with_deadline_ms(40)));
        let queued = accepted_id(&d.submit(spec(2).with_deadline_ms(40)));
        for id in [running, queued] {
            let status = d.wait(id, Duration::from_secs(5)).unwrap();
            assert_eq!(
                status.state,
                JobState::Cancelled {
                    reason: "deadline-exceeded".to_owned()
                },
                "job {id}"
            );
        }
        d.shutdown(ShutdownMode::Drain);
        let stats = d.stats();
        assert_eq!(stats.ledger.deadline_expired, 2);
        assert_eq!(stats.ledger.cancelled, 2);
    }

    #[test]
    fn client_cancel_settles_queued_jobs_immediately() {
        let d =
            Daemon::start(DaemonConfig::new().with_workers(1), TestExecutor::slow(100)).unwrap();
        let _running = accepted_id(&d.submit(spec(1)));
        let queued = accepted_id(&d.submit(spec(2)));
        let status = d.cancel(queued).unwrap();
        assert_eq!(
            status.state,
            JobState::Cancelled {
                reason: "client-cancel".to_owned()
            }
        );
        assert_eq!(d.cancel(queued).unwrap().state, status.state, "idempotent");
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn injected_admission_faults_reject_without_accepting() {
        let plan = FaultPlan::disarmed().on_nth_probe(FaultSite::Admission, 1);
        let d = Daemon::start(
            DaemonConfig::new().with_admission_faults(plan),
            TestExecutor::instant(),
        )
        .unwrap();
        assert!(matches!(
            d.submit(spec(1)),
            Admission::Rejected { reason } if reason == "injected-admission-fault"
        ));
        let id = accepted_id(&d.submit(spec(2)));
        assert!(d
            .wait(id, Duration::from_secs(5))
            .unwrap()
            .state
            .is_terminal());
        d.shutdown(ShutdownMode::Drain);
        let stats = d.stats();
        assert_eq!(stats.ledger.rejected, 1);
        assert_eq!(stats.ledger.rejected_injected, 1);
        assert_eq!(stats.ledger.accepted, 1);
    }

    #[test]
    fn executor_panics_become_failed_not_dead_workers() {
        let d = Daemon::start(
            DaemonConfig::new().with_workers(1),
            TestExecutor {
                work_ms: 0,
                fail_seeds: vec![2],
                panic_seeds: vec![1],
            },
        )
        .unwrap();
        let panicking = accepted_id(&d.submit(spec(1)));
        let failing = accepted_id(&d.submit(spec(2)));
        let fine = accepted_id(&d.submit(spec(3)));
        let status = d.wait(panicking, Duration::from_secs(5)).unwrap();
        match status.state {
            JobState::Failed { reason } => {
                assert!(reason.contains("panicked"), "got {reason}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(matches!(
            d.wait(failing, Duration::from_secs(5)).unwrap().state,
            JobState::Failed { .. }
        ));
        // The worker that caught the panic is still alive to run this:
        assert!(matches!(
            d.wait(fine, Duration::from_secs(5)).unwrap().state,
            JobState::Done { .. }
        ));
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn restart_resumes_every_acknowledged_incomplete_job() {
        let dir = scratch("restart");
        let mut acknowledged = Vec::new();
        {
            let d = Daemon::start(
                DaemonConfig::new().with_workers(1).with_journal_dir(&dir),
                TestExecutor::slow(60),
            )
            .unwrap();
            for seed in 10..14 {
                acknowledged.push((accepted_id(&d.submit(spec(seed))), seed));
            }
            // First job is running; kill fast. Running job parks (its
            // journal entry stays incomplete), queued jobs park too.
            std::thread::sleep(Duration::from_millis(10));
            d.shutdown(ShutdownMode::Now);
            let stats = d.stats();
            assert_eq!(stats.ledger.completed, 0, "nothing finished pre-kill");
        }
        let d = Daemon::start(
            DaemonConfig::new().with_workers(2).with_journal_dir(&dir),
            TestExecutor::instant(),
        )
        .unwrap();
        let stats = d.stats();
        assert_eq!(stats.ledger.resumed, 4, "every ack is resumed");
        for (id, seed) in &acknowledged {
            let status = d.wait(*id, Duration::from_secs(5)).unwrap();
            assert_eq!(
                status.state,
                JobState::Done {
                    digest: digest_of_seed(*seed)
                },
                "resumed job {id} must land on the clean digest"
            );
        }
        d.shutdown(ShutdownMode::Drain);
        assert_eq!(d.stats().ledger.in_flight(), 0);
        // A third life finds only terminal entries: nothing to resume,
        // and previous-life results are still queryable.
        let d3 = Daemon::start(
            DaemonConfig::new().with_journal_dir(&dir),
            TestExecutor::instant(),
        )
        .unwrap();
        assert_eq!(d3.stats().ledger.resumed, 0);
        let (id0, seed0) = acknowledged[0];
        assert_eq!(
            d3.status(id0).unwrap().state,
            JobState::Done {
                digest: digest_of_seed(seed0)
            }
        );
        d3.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn duplicate_dedupe_keys_converge_on_one_execution_across_restart() {
        let dir = scratch("dedupe");
        let first;
        {
            let d = Daemon::start(
                DaemonConfig::new().with_journal_dir(&dir),
                TestExecutor::instant(),
            )
            .unwrap();
            first = accepted_id(&d.submit(spec(1).with_dedupe_key("k-1")));
            // A blind retry (lost ack) returns the original id…
            assert_eq!(
                d.submit(spec(1).with_dedupe_key("k-1")),
                Admission::Duplicate { id: first }
            );
            // …while a different key is new work.
            let other = accepted_id(&d.submit(spec(2).with_dedupe_key("k-2")));
            assert_ne!(first, other);
            d.shutdown(ShutdownMode::Drain);
            let stats = d.stats();
            assert_eq!(stats.ledger.accepted, 2);
            assert_eq!(stats.ledger.dedupe_hits, 1);
        }
        // The map survives the restart via the journal: the same key
        // still answers with the original id, even though that job has
        // long settled.
        let d = Daemon::start(
            DaemonConfig::new().with_journal_dir(&dir),
            TestExecutor::instant(),
        )
        .unwrap();
        assert_eq!(
            d.submit(spec(1).with_dedupe_key("k-1")),
            Admission::Duplicate { id: first }
        );
        assert_eq!(
            d.status(first).unwrap().state,
            JobState::Done {
                digest: digest_of_seed(1)
            }
        );
        d.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn journal_faults_degrade_then_recover_without_losing_acks() {
        use crate::faultio::IoFaults;

        let dir = scratch("degraded");
        let io = IoFaults::disarmed();
        let d = Daemon::start(
            DaemonConfig::new()
                .with_workers(1)
                .with_tick(Duration::from_millis(5))
                .with_journal_dir(&dir)
                .with_io_faults(io.clone()),
            TestExecutor::slow(40),
        )
        .unwrap();
        // A healthy accept, still running when the fault window opens.
        let running = accepted_id(&d.submit(spec(1).with_dedupe_key("k-run")));
        wait_until_running(&d, running);

        // ENOSPC window: every journal write fails from here on.
        io.set_plan(FaultPlan::seeded(7).with_rate(FaultSite::JournalWrite, 1.0));
        // The next submit hits the failing journal: rejected, never
        // acked, and the daemon is now degraded.
        assert!(matches!(
            d.submit(spec(2)),
            Admission::Rejected { reason } if reason == "journal-degraded"
        ));
        assert!(d.is_degraded());
        // While degraded, submissions are refused *without* touching
        // the journal…
        assert!(matches!(
            d.submit(spec(3)),
            Admission::Rejected { reason } if reason == "journal-degraded"
        ));
        // …but a duplicate of acknowledged work still converges.
        assert_eq!(
            d.submit(spec(1).with_dedupe_key("k-run")),
            Admission::Duplicate { id: running }
        );
        // In-flight work finishes during the window; its terminal
        // record lands on the backlog, owed to the journal.
        let status = d.wait(running, Duration::from_secs(5)).unwrap();
        assert_eq!(
            status.state,
            JobState::Done {
                digest: digest_of_seed(1)
            },
            "degraded mode finishes in-flight work"
        );

        // The window closes; the watchdog's probe drains the backlog
        // and re-arms on its own.
        io.set_plan(FaultPlan::disarmed());
        let deadline = Instant::now() + Duration::from_secs(5);
        while d.is_degraded() {
            assert!(Instant::now() < deadline, "daemon never recovered");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(d.journal_backlog_len(), 0, "owed records were paid");
        let id2 = accepted_id(&d.submit(spec(4)));
        assert!(d
            .wait(id2, Duration::from_secs(5))
            .unwrap()
            .state
            .is_terminal());
        d.shutdown(ShutdownMode::Drain);
        let stats = d.stats();
        assert_eq!(stats.ledger.degraded_entries, 1);
        assert!(stats.ledger.journal_faults >= 1);

        // The journal survived the chaos: a restart sees the settled
        // digest (flushed from the backlog), resumes nothing, and never
        // heard of the rejected submissions.
        let d2 = Daemon::start(
            DaemonConfig::new().with_journal_dir(&dir),
            TestExecutor::instant(),
        )
        .unwrap();
        assert_eq!(d2.stats().ledger.resumed, 0);
        assert_eq!(
            d2.status(running).unwrap().state,
            JobState::Done {
                digest: digest_of_seed(1)
            }
        );
        d2.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn health_fields_walk_the_state_machine() {
        let d = Daemon::start(DaemonConfig::new(), TestExecutor::instant()).unwrap();
        let field = |fields: &Vec<(&'static str, String)>, key: &str| {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        let h = d.health_fields();
        assert_eq!(field(&h, "state"), "running");
        assert_eq!(field(&h, "journal"), "disabled");
        d.shutdown(ShutdownMode::Drain);
        assert_eq!(field(&d.health_fields(), "state"), "stopped");
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let d = Daemon::start(DaemonConfig::new(), TestExecutor::instant()).unwrap();
        d.shutdown(ShutdownMode::Drain);
        assert!(matches!(
            d.submit(spec(1)),
            Admission::Rejected { reason } if reason == "shutting-down"
        ));
        assert!(d.is_stopped());
    }
}
