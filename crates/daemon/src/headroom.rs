//! Memory-headroom probing for the load-shedding watchdog.
//!
//! The daemon's reclaim policy needs one bit — "is the host short on
//! memory right now?" — plus a way for tests to flip that bit
//! deterministically. [`HeadroomProbe`] provides both: the production
//! variant reads `MemAvailable` from `/proc/meminfo` each watchdog
//! tick, and the [`HeadroomProbe::Fixed`] variant reads a shared
//! atomic a test (or an operator's load generator) can set at will.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the daemon decides whether the host is under memory pressure.
#[derive(Debug, Clone, Default)]
pub enum HeadroomProbe {
    /// Never under pressure; the reclaim pass never fires.
    #[default]
    Disabled,
    /// Test/operator-controlled: pressure iff the shared atomic (KiB
    /// of available memory) is below the floor.
    Fixed {
        /// Shared "available memory" gauge, in KiB.
        available_kib: Arc<AtomicU64>,
        /// Pressure threshold, in KiB.
        floor_kib: u64,
    },
    /// Production: pressure iff `/proc/meminfo` `MemAvailable` is
    /// below the floor. An unreadable or absent `/proc/meminfo`
    /// (non-Linux hosts) reads as *no* pressure — shedding must never
    /// be triggered by a probe failure.
    Proc {
        /// Pressure threshold, in KiB.
        floor_kib: u64,
    },
}

impl HeadroomProbe {
    /// A probe that never reports pressure.
    pub fn disabled() -> HeadroomProbe {
        HeadroomProbe::Disabled
    }

    /// A deterministic probe backed by a shared gauge (see
    /// [`HeadroomProbe::Fixed`]).
    pub fn fixed(available_kib: Arc<AtomicU64>, floor_kib: u64) -> HeadroomProbe {
        HeadroomProbe::Fixed {
            available_kib,
            floor_kib,
        }
    }

    /// The production `/proc/meminfo` probe.
    pub fn proc_meminfo(floor_kib: u64) -> HeadroomProbe {
        HeadroomProbe::Proc { floor_kib }
    }

    /// Available memory in KiB, when the probe can tell.
    pub fn available_kib(&self) -> Option<u64> {
        match self {
            HeadroomProbe::Disabled => None,
            HeadroomProbe::Fixed { available_kib, .. } => {
                Some(available_kib.load(Ordering::Acquire))
            }
            HeadroomProbe::Proc { .. } => meminfo_available_kib(),
        }
    }

    /// Whether the reclaim pass should fire this tick.
    pub fn under_pressure(&self) -> bool {
        let floor = match self {
            HeadroomProbe::Disabled => return false,
            HeadroomProbe::Fixed { floor_kib, .. } | HeadroomProbe::Proc { floor_kib } => {
                *floor_kib
            }
        };
        self.available_kib().is_some_and(|kib| kib < floor)
    }
}

/// Parses `MemAvailable:` out of `/proc/meminfo`. `None` when the file
/// or the line is missing (non-Linux, exotic kernels).
fn meminfo_available_kib() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/meminfo").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("MemAvailable:") {
            return rest.split_whitespace().next().and_then(|v| v.parse().ok());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_probe_tracks_the_shared_gauge() {
        let gauge = Arc::new(AtomicU64::new(1_000_000));
        let probe = HeadroomProbe::fixed(gauge.clone(), 500_000);
        assert!(!probe.under_pressure());
        gauge.store(499_999, Ordering::Release);
        assert!(probe.under_pressure());
        assert_eq!(probe.available_kib(), Some(499_999));
        gauge.store(500_000, Ordering::Release);
        assert!(!probe.under_pressure(), "floor itself is not pressure");
    }

    #[test]
    fn disabled_probe_never_pressures() {
        let probe = HeadroomProbe::disabled();
        assert!(!probe.under_pressure());
        assert_eq!(probe.available_kib(), None);
    }

    #[test]
    fn proc_probe_is_fail_safe() {
        // Whatever the host: a floor of 0 KiB can never be undercut,
        // and a probe failure must read as "no pressure".
        assert!(!HeadroomProbe::proc_meminfo(0).under_pressure());
    }
}
