//! Order-stable digests for fleet reduction.
//!
//! A fleet run must be *provably* identical to its serial twin without
//! hauling every logcat line and histogram back to the reducer. Each
//! task folds its observable output — logcat text, metric summaries,
//! study rows — into a 64-bit FNV-1a [`Digest`]; the reducer then
//! combines the per-task values **in task-index order** with
//! [`combine_ordered`]. Scheduling can change which worker computes a
//! digest but never what any digest contains nor the order they are
//! combined in, so serial and parallel runs produce the same final
//! value, byte for byte.

/// Incremental 64-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use droidsim_fleet::Digest;
///
/// let mut d = Digest::new();
/// d.write_str("W/zizhan: stale view dropped");
/// d.write_u64(3);
/// assert_eq!(d.finish(), {
///     let mut e = Digest::new();
///     e.write_str("W/zizhan: stale view dropped");
///     e.write_u64(3);
///     e.finish()
/// });
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Digest {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Digest {
        Digest { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// digest differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Folds a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` by bit pattern (exact, not approximate — the runs
    /// being compared are supposed to be bit-identical).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Digest {
    fn default() -> Digest {
        Digest::new()
    }
}

/// Reduces per-task digests into one fleet digest by folding them in
/// task-index order. The fold itself is another FNV pass, so both the
/// values *and their positions* are covered: swapping two device digests
/// changes the result.
pub fn combine_ordered<I: IntoIterator<Item = u64>>(digests: I) -> u64 {
    let mut d = Digest::new();
    for v in digests {
        d.write_u64(v);
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(Digest::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        let mut a = Digest::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn combine_is_position_sensitive() {
        assert_ne!(combine_ordered([1, 2]), combine_ordered([2, 1]));
        assert_eq!(combine_ordered([1, 2, 3]), combine_ordered([1, 2, 3]));
    }

    #[test]
    fn f64_digest_is_exact() {
        let mut a = Digest::new();
        a.write_f64(0.1 + 0.2);
        let mut b = Digest::new();
        b.write_f64(0.3);
        assert_ne!(a.finish(), b.finish(), "bit patterns differ");
    }
}
