//! Order-stable digests for fleet reduction.
//!
//! A fleet run must be *provably* identical to its serial twin without
//! hauling every logcat line and histogram back to the reducer. Each
//! task folds its observable output — logcat text, metric summaries,
//! study rows — into a 64-bit FNV-1a [`Digest`]; the reducer then
//! combines the per-task values **in task-index order** with
//! [`combine_ordered`]. Scheduling can change which worker computes a
//! digest but never what any digest contains nor the order they are
//! combined in, so serial and parallel runs produce the same final
//! value, byte for byte.

/// Incremental 64-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use droidsim_fleet::Digest;
///
/// let mut d = Digest::new();
/// d.write_str("W/zizhan: stale view dropped");
/// d.write_u64(3);
/// assert_eq!(d.finish(), {
///     let mut e = Digest::new();
///     e.write_str("W/zizhan: stale view dropped");
///     e.write_u64(3);
///     e.finish()
/// });
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Digest {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Digest {
        Digest { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// digest differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Folds a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` by bit pattern (exact, not approximate — the runs
    /// being compared are supposed to be bit-identical).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Digest {
    fn default() -> Digest {
        Digest::new()
    }
}

/// Reduces per-task digests into one fleet digest by folding them in
/// task-index order. The fold itself is another FNV pass, so both the
/// values *and their positions* are covered: swapping two device digests
/// changes the result.
pub fn combine_ordered<I: IntoIterator<Item = u64>>(digests: I) -> u64 {
    let mut d = Digest::new();
    for v in digests {
        d.write_u64(v);
    }
    d.finish()
}

/// Tags one per-task digest with its task index: an FNV pass over
/// `(index, digest)` followed by an avalanche finalizer. The tag is what
/// keeps the **unordered** merge position-sensitive — swapping two
/// device digests changes both tagged values, so [`combine_indexed`]
/// still notices, even though its fold is commutative.
///
/// The finalizer matters: a raw FNV tag ends in a multiply, which
/// distributes over the wrapping-add fold, so for low-entropy digests a
/// swap across indices could cancel out of the sum exactly. The
/// xor-shift-multiply cascade (SplitMix64's output stage) destroys that
/// affine structure.
pub fn mix_indexed(index: u64, digest: u64) -> u64 {
    let mut d = Digest::new();
    d.write_u64(index);
    d.write_u64(digest);
    let mut h = d.finish();
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Reduces `(index, digest)` pairs into one fleet digest **in any
/// order**: each pair is tagged by [`mix_indexed`] and the tagged values
/// are folded with wrapping addition, which is commutative and
/// associative. Workers can therefore merge results as they complete —
/// no ordered result draining, no per-slot buffering — and the value is
/// identical for any completion order and any worker count, including
/// the `jobs = 1` inline run.
///
/// The value differs from [`combine_ordered`] (different fold); compare
/// like with like.
///
/// # Examples
///
/// ```
/// use droidsim_fleet::combine_indexed;
///
/// let forward = combine_indexed([(0, 7u64), (1, 11), (2, 13)]);
/// let shuffled = combine_indexed([(2, 13u64), (0, 7), (1, 11)]);
/// assert_eq!(forward, shuffled, "completion order is irrelevant");
///
/// let swapped = combine_indexed([(0, 11u64), (1, 7), (2, 13)]);
/// assert_ne!(forward, swapped, "index tags keep positions covered");
/// ```
pub fn combine_indexed<I: IntoIterator<Item = (u64, u64)>>(pairs: I) -> u64 {
    pairs
        .into_iter()
        .map(|(i, d)| mix_indexed(i, d))
        .fold(0u64, u64::wrapping_add)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(Digest::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        let mut a = Digest::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn combine_is_position_sensitive() {
        assert_ne!(combine_ordered([1, 2]), combine_ordered([2, 1]));
        assert_eq!(combine_ordered([1, 2, 3]), combine_ordered([1, 2, 3]));
    }

    #[test]
    fn indexed_combine_is_order_free_but_position_sensitive() {
        let pairs = [(0u64, 101u64), (1, 202), (2, 303), (3, 404)];
        let mut rev = pairs;
        rev.reverse();
        assert_eq!(combine_indexed(pairs), combine_indexed(rev));
        // Swapping two digests across indices is visible.
        assert_ne!(
            combine_indexed([(0u64, 202u64), (1, 101), (2, 303), (3, 404)]),
            combine_indexed(pairs)
        );
        // And so is a missing task.
        assert_ne!(
            combine_indexed(pairs[..3].iter().copied()),
            combine_indexed(pairs)
        );
    }

    #[test]
    fn f64_digest_is_exact() {
        let mut a = Digest::new();
        a.write_f64(0.1 + 0.2);
        let mut b = Digest::new();
        b.write_f64(0.3);
        assert_ne!(a.finish(), b.finish(), "bit patterns differ");
    }
}
