//! Crash-safe supervision for fleet runs: panic isolation, bounded
//! deterministic retries, a per-task stall watchdog, and an append-only
//! checkpoint journal for resume.
//!
//! The plain [`run_fleet`](crate::run_fleet) contract is all-or-nothing:
//! every task must return. A night-long randomized campaign cannot
//! afford that — one organic panic at seed 4711 of 10 000 must not cost
//! the other 9 999 results. [`run_fleet_supervised`] therefore wraps
//! every task attempt in `catch_unwind` (the same boundary the
//! migration supervisor uses around app callbacks) and reports a typed
//! [`TaskOutcome`] per slot instead of unwinding through the pool:
//!
//! * a panicked or timed-out attempt is **requeued** up to
//!   [`FleetOptions::max_retries`] times, each retry re-deriving the
//!   *identical* `Xoshiro256::stream(seed, index)` context — so a
//!   transient fault's retry reproduces the same digest a fault-free
//!   run would have produced;
//! * a task that exhausts its retries is **quarantined**: its slot
//!   reports the failure (with a seed/index repro line) and every other
//!   slot still returns in item order;
//! * with a wall-clock [`FleetOptions::task_budget`], attempts run on a
//!   detached thread and a straggler is marked
//!   [`TaskOutcome::TimedOut`] instead of hanging the scope (the
//!   runaway thread is abandoned — it can no longer write into the
//!   run's slots);
//! * with a [`FleetOptions::journal`], every completed task appends one
//!   fsync'd `index/outcome/digest` line; a later run passing the same
//!   path as [`FleetOptions::resume`] skips the recorded indices and
//!   reuses their digests, so an interrupted study resumes instead of
//!   recomputing.
//!
//! Deterministic fault injection comes from
//! [`FaultSite::FleetTask`]: the driver probes the plan once per task
//! *attempt* through an order-independent per-index stream, so verdicts
//! do not depend on which worker claims which task, and a forced probe
//! (`on_nth_probe(FleetTask, index + 1)`) models a *transient* fault —
//! it strikes the first attempt only, and the retry succeeds.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use droidsim_faults::{FaultPlan, FaultSite};
use droidsim_kernel::journal;
use droidsim_metrics::FleetLedger;

use crate::{combine_ordered, CancelToken, FleetConfig, TaskCtx};

/// How one fleet task ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOutcome<R> {
    /// The task produced its result (possibly after retries).
    Ok(R),
    /// Every attempt panicked; the task is quarantined.
    Panicked {
        /// The final attempt's panic payload, rendered to text.
        payload: String,
        /// The fleet's root seed (for the repro line).
        seed: u64,
        /// The task's index in the submitted item list.
        index: usize,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// Every attempt overran the watchdog budget; the task is
    /// quarantined.
    TimedOut {
        /// The per-task wall-clock budget in force.
        budget: Duration,
        /// The fleet's root seed (for the repro line).
        seed: u64,
        /// The task's index in the submitted item list.
        index: usize,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// A resume journal already had this task's result; it was not
    /// re-run. The recorded digest stands in for the value.
    Skipped {
        /// The task's index in the submitted item list.
        index: usize,
        /// The digest the interrupted run recorded for this task.
        digest: u64,
    },
    /// The run's [`CancelToken`] was set before this task could start
    /// (or between its attempts); the task was never completed and is
    /// *not* journaled — a later resume re-runs it.
    Cancelled {
        /// The task's index in the submitted item list.
        index: usize,
    },
}

impl<R> TaskOutcome<R> {
    /// The result, when the task produced one this run.
    pub fn ok(&self) -> Option<&R> {
        match self {
            TaskOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the slot holds a fresh result.
    pub fn is_ok(&self) -> bool {
        matches!(self, TaskOutcome::Ok(_))
    }

    /// Whether the task was quarantined (panicked or timed out).
    pub fn is_quarantined(&self) -> bool {
        matches!(
            self,
            TaskOutcome::Panicked { .. } | TaskOutcome::TimedOut { .. }
        )
    }

    /// A stable tag for journals and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            TaskOutcome::Ok(_) => "ok",
            TaskOutcome::Panicked { .. } => "panicked",
            TaskOutcome::TimedOut { .. } => "timed-out",
            TaskOutcome::Skipped { .. } => "skipped",
            TaskOutcome::Cancelled { .. } => "cancelled",
        }
    }
}

/// Supervision knobs for [`run_fleet_supervised`]. The default is the
/// plain contract: no retries, no watchdog, no journal, no injection.
#[derive(Debug, Clone, Default)]
pub struct FleetOptions {
    /// Requeues per task after a panicked or timed-out attempt.
    pub max_retries: u32,
    /// Wall-clock budget per task attempt; `None` disables the watchdog
    /// (the default, and the only choice on the `--jobs 1` legacy
    /// inline path of plain `run_fleet`). With a budget, each attempt
    /// runs on a detached thread so a straggler cannot hang the pool.
    pub task_budget: Option<Duration>,
    /// How long an injected stall sleeps; make it comfortably larger
    /// than `task_budget` so injected stalls time out deterministically.
    pub stall_for: Duration,
    /// Fault plan probed at [`FaultSite::FleetTask`] once per attempt.
    /// Rate faults draw from an order-independent per-index stream;
    /// forced probes (1-based task index) strike the first attempt only.
    pub faults: FaultPlan,
    /// Task indices that panic on *every* attempt — simulated
    /// hard-broken seeds that must end up in quarantine.
    pub hard_fail: Vec<usize>,
    /// Append one fsync'd line per completed task to this journal.
    pub journal: Option<PathBuf>,
    /// Skip tasks recorded `ok` in this journal (typically the same
    /// path as `journal`), reusing their recorded digests.
    pub resume: Option<PathBuf>,
    /// Cooperative cancellation: when the token fires, tasks not yet
    /// started (and failed tasks between retries) finish as
    /// [`TaskOutcome::Cancelled`] instead of running. `None` (the
    /// default) never cancels.
    pub cancel: Option<CancelToken>,
}

impl FleetOptions {
    /// The default plain contract (see type-level docs).
    pub fn new() -> FleetOptions {
        FleetOptions {
            stall_for: Duration::from_millis(400),
            ..FleetOptions::default()
        }
    }

    /// Sets the retry bound.
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Arms the stall watchdog with a per-attempt wall-clock budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.task_budget = Some(budget);
        self
    }

    /// Installs a fault plan (probed at [`FaultSite::FleetTask`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Marks task indices as hard-broken (panic on every attempt).
    pub fn with_hard_fail(mut self, indices: Vec<usize>) -> Self {
        self.hard_fail = indices;
        self
    }

    /// Journals completed tasks to `path`.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Resumes from `path`, also appending new completions to it.
    pub fn resuming(mut self, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        self.resume = Some(path.clone());
        self.journal = Some(path);
        self
    }

    /// Installs a cooperative cancellation token (see
    /// [`FleetOptions::cancel`]).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// A supervision failure that prevents the run from starting (the run
/// itself never fails — tasks do, individually).
#[derive(Debug)]
pub enum FleetError {
    /// Opening, reading or writing the journal failed.
    Io(std::io::Error),
    /// The resume journal does not match this run (wrong seed or item
    /// count, or an unreadable header).
    Journal(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Io(e) => write!(f, "fleet journal I/O: {e}"),
            FleetError::Journal(m) => write!(f, "fleet journal: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}

/// The append-only checkpoint journal: a header line naming the run
/// (seed + item count), then one line per completed task. Lines are
/// written through [`droidsim_kernel::journal`] and fsync'd one by one,
/// so a crash leaves at most one truncated line — which the loader
/// discards along with everything after it.
#[derive(Debug)]
pub struct FleetJournal {
    file: File,
}

/// What a journal recorded before the run was interrupted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalState {
    /// The interrupted run's root seed.
    pub seed: u64,
    /// The interrupted run's item count.
    pub items: usize,
    /// Digest per task index recorded `ok`.
    pub completed: BTreeMap<usize, u64>,
}

impl FleetJournal {
    /// Opens `path` for appending, writing the header when the file is
    /// new or empty. An existing header must match `seed` and `items`.
    pub fn create_or_append(
        path: &Path,
        seed: u64,
        items: usize,
    ) -> Result<FleetJournal, FleetError> {
        let exists = path.exists() && std::fs::metadata(path)?.len() > 0;
        if exists {
            let state = FleetJournal::load(path)?;
            if state.seed != seed || state.items != items {
                return Err(FleetError::Journal(format!(
                    "{} belongs to a different run (seed {} items {}, this run: seed {} items {})",
                    path.display(),
                    state.seed,
                    state.items,
                    seed,
                    items
                )));
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if !exists {
            let header = journal::encode_line(&[
                ("kind", "header"),
                ("seed", &seed.to_string()),
                ("items", &items.to_string()),
            ]);
            writeln!(file, "{header}")?;
            file.sync_data()?;
        }
        Ok(FleetJournal { file })
    }

    /// Appends and fsyncs one completed-task line.
    pub fn record(
        &mut self,
        index: usize,
        tag: &str,
        digest: Option<u64>,
        attempts: u32,
    ) -> Result<(), FleetError> {
        let digest_hex = digest.map(|d| format!("{d:016x}")).unwrap_or_default();
        let line = journal::encode_line(&[
            ("kind", "task"),
            ("index", &index.to_string()),
            ("outcome", tag),
            ("digest", &digest_hex),
            ("attempts", &attempts.to_string()),
        ]);
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Reads a journal back, stopping silently at the first malformed
    /// (truncated) line. Quarantined entries are *not* treated as
    /// completed — a resumed run retries them.
    pub fn load(path: &Path) -> Result<JournalState, FleetError> {
        let reader = BufReader::new(File::open(path)?);
        let mut lines = reader.lines();
        let header = lines
            .next()
            .transpose()?
            .and_then(|l| journal::decode_line(&l))
            .ok_or_else(|| {
                FleetError::Journal(format!("{}: missing or unreadable header", path.display()))
            })?;
        if journal::field(&header, "kind") != Some("header") {
            return Err(FleetError::Journal(format!(
                "{}: first line is not a header",
                path.display()
            )));
        }
        let parse_u64 = |key: &str| -> Result<u64, FleetError> {
            journal::field(&header, key)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| {
                    FleetError::Journal(format!("{}: header lacks {key}", path.display()))
                })
        };
        let seed = parse_u64("seed")?;
        let items = parse_u64("items")? as usize;
        let mut completed = BTreeMap::new();
        for line in lines {
            let Some(fields) = journal::decode_line(&line?) else {
                break; // truncated tail — everything before it stands
            };
            if journal::field(&fields, "kind") != Some("task") {
                break;
            }
            let entry = (|| {
                let index: usize = journal::field(&fields, "index")?.parse().ok()?;
                let outcome = journal::field(&fields, "outcome")?;
                let digest = journal::field(&fields, "digest")?;
                Some((index, outcome.to_owned(), digest.to_owned()))
            })();
            let Some((index, outcome, digest)) = entry else {
                break;
            };
            if outcome == "ok" && index < items {
                if let Ok(d) = u64::from_str_radix(&digest, 16) {
                    completed.insert(index, d);
                }
            }
        }
        Ok(JournalState {
            seed,
            items,
            completed,
        })
    }
}

/// One quarantined task: everything needed to reproduce it alone.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedTask {
    /// The task's index in the submitted item list.
    pub index: usize,
    /// The fleet's root seed.
    pub seed: u64,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// `"panicked"` or `"timed-out"`.
    pub kind: &'static str,
    /// The final panic payload (empty for timeouts).
    pub payload: String,
}

impl QuarantinedTask {
    /// A one-line repro recipe: rerun just this task, inline, with the
    /// exact RNG stream it had in the fleet.
    pub fn repro_line(&self) -> String {
        format!(
            "repro: DROIDSIM_JOBS=1 seed={} index={} rng=Xoshiro256::stream({}, {}) last-attempt={}{}",
            self.seed,
            self.index,
            self.seed,
            self.index,
            self.kind,
            if self.payload.is_empty() {
                String::new()
            } else {
                format!(" payload={}", self.payload)
            }
        )
    }
}

/// Everything a supervised run observed besides the results themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Outcome/retry/latency accounting, folded in task-index order.
    pub ledger: FleetLedger,
    /// Tasks that exhausted their retries, in index order.
    pub quarantined: Vec<QuarantinedTask>,
    /// The run's root seed.
    pub seed: u64,
    /// The run's worker count.
    pub jobs: usize,
}

impl FleetReport {
    /// Whether every task produced (or resumed) a result.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// A human-readable quarantine report with one repro line per
    /// quarantined task (empty string when clean).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet report: jobs={} seed={} {}\n",
            self.jobs,
            self.seed,
            self.ledger.deterministic_fingerprint()
        ));
        if self.quarantined.is_empty() {
            out.push_str("quarantine: empty\n");
        } else {
            out.push_str(&format!(
                "QUARANTINED: {} task(s) lost after retries\n",
                self.quarantined.len()
            ));
            for q in &self.quarantined {
                out.push_str(&format!(
                    "  index {:>4}: {} after {} attempt(s); {}\n",
                    q.index,
                    q.kind,
                    q.attempts,
                    q.repro_line()
                ));
            }
        }
        out
    }
}

/// A supervised run: per-task outcomes in item order, per-task digests
/// (fresh or resumed), and the report.
#[derive(Debug)]
pub struct FleetRun<R> {
    /// One outcome per submitted item, in item order.
    pub outcomes: Vec<TaskOutcome<R>>,
    /// One digest per item — `Some` for `Ok` (computed by `digest_of`)
    /// and `Skipped` (recorded by the interrupted run), `None` for
    /// quarantined slots.
    pub digests: Vec<Option<u64>>,
    /// Outcome accounting and the quarantine list.
    pub report: FleetReport,
}

impl<R> FleetRun<R> {
    /// Results that materialised this run, with their indices.
    pub fn ok_results(&self) -> impl Iterator<Item = (usize, &R)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.ok().map(|r| (i, r)))
    }

    /// The study digest: the per-task digests folded in item order.
    /// `None` when any task is quarantined — a partial run has no
    /// comparable digest.
    pub fn combined_digest(&self) -> Option<u64> {
        self.digests
            .iter()
            .copied()
            .collect::<Option<Vec<u64>>>()
            .map(combine_ordered)
    }

    /// The study digest under the **unordered** index-tagged merge
    /// ([`combine_indexed`](crate::combine_indexed)): the value a
    /// streaming reducer that merges digests as tasks complete would
    /// produce. Deterministic for any worker count; `None` when any
    /// task is quarantined.
    pub fn combined_digest_unordered(&self) -> Option<u64> {
        let tagged: Option<Vec<(u64, u64)>> = self
            .digests
            .iter()
            .enumerate()
            .map(|(i, d)| d.map(|d| (i as u64, d)))
            .collect();
        tagged.map(crate::combine_indexed)
    }
}

/// What one injected fleet-task fault does to the attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InjectedKind {
    Panic,
    Stall,
}

/// The deterministic injection verdict for `(index, attempt)`.
///
/// Order-independent by construction: the draw comes from the plan's
/// per-site stream at lane `index`, advanced two draws per attempt —
/// no shared counter, so worker scheduling cannot perturb it. Forced
/// probes model transient faults (first attempt only); `hard_fail`
/// models hard-broken tasks (every attempt).
fn injected_fault(opts: &FleetOptions, index: usize, attempt: u32) -> Option<InjectedKind> {
    if opts.hard_fail.contains(&index) {
        return Some(InjectedKind::Panic);
    }
    let site = FaultSite::FleetTask;
    let forced = attempt == 0
        && opts
            .faults
            .forced_probes(site)
            .contains(&(index as u64 + 1));
    let rate = opts.faults.rate(site);
    if !forced && rate <= 0.0 {
        return None;
    }
    let mut lane = opts.faults.site_stream(site, index as u64);
    for _ in 0..attempt {
        lane.next_f64();
        lane.next_f64();
    }
    let strikes = lane.next_f64() < rate;
    let wants_stall = lane.next_f64() < 0.5;
    if !(forced || strikes) {
        return None;
    }
    // Stalls need the watchdog to be observable; without a budget the
    // injection degrades to a panic so it cannot hang the run.
    Some(if wants_stall && opts.task_budget.is_some() {
        InjectedKind::Stall
    } else {
        InjectedKind::Panic
    })
}

pub(crate) fn payload_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

enum Attempt<R> {
    Done(R),
    Panicked(String),
    TimedOut,
}

/// Runs one attempt, isolated. Without a budget the attempt runs inline
/// behind `catch_unwind`; with one it runs on a detached thread and the
/// caller waits at most `budget` — a straggler is abandoned, its result
/// channel dropped.
fn run_attempt<T, R, F>(
    run: &Arc<F>,
    seed: u64,
    index: usize,
    item: T,
    fault: Option<InjectedKind>,
    budget: Option<Duration>,
    stall_for: Duration,
) -> Attempt<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(TaskCtx, T) -> R + Send + Sync + 'static,
{
    let body = {
        let run = Arc::clone(run);
        move || {
            if let Some(InjectedKind::Stall) = fault {
                std::thread::sleep(stall_for);
            }
            if let Some(InjectedKind::Panic) = fault {
                panic!("injected fleet-task fault");
            }
            run(TaskCtx::stream(seed, index), item)
        }
    };
    match budget {
        None => match catch_unwind(AssertUnwindSafe(body)) {
            Ok(r) => Attempt::Done(r),
            Err(p) => Attempt::Panicked(payload_text(p)),
        },
        Some(budget) => {
            let (tx, rx) = mpsc::channel();
            std::thread::spawn(move || {
                let out = catch_unwind(AssertUnwindSafe(body)).map_err(payload_text);
                let _ = tx.send(out);
            });
            match rx.recv_timeout(budget) {
                Ok(Ok(r)) => Attempt::Done(r),
                Ok(Err(p)) => Attempt::Panicked(p),
                Err(_) => Attempt::TimedOut,
            }
        }
    }
}

/// Per-slot bookkeeping a worker fills and the reducer folds.
struct TaskRecord<R> {
    outcome: TaskOutcome<R>,
    digest: Option<u64>,
    retries: u32,
    injected: u32,
    panicked_attempts: u32,
    timed_out_attempts: u32,
    latencies_ms: Vec<f64>,
}

fn lock<X>(m: &Mutex<X>) -> std::sync::MutexGuard<'_, X> {
    // Workers never panic while holding a lock (every attempt is behind
    // catch_unwind), but a poisoned mutex must still not poison the
    // whole fleet: take the data regardless.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `run` over every item like [`run_fleet`](crate::run_fleet), but
/// crash-safe: the returned [`FleetRun`] has one [`TaskOutcome`] per
/// item in item order, and a failing task quarantines instead of
/// aborting the pool. `digest_of` maps a result to the 64-bit digest
/// recorded in journals and folded into [`FleetRun::combined_digest`].
///
/// Determinism: for a given `(cfg.seed, items, opts.faults)` the
/// outcomes and digests are identical for any worker count, and a task
/// whose transient fault was retried produces the same digest as in a
/// fault-free run (the retry re-derives the identical RNG stream).
pub fn run_fleet_supervised<T, R, F, D>(
    cfg: &FleetConfig,
    opts: &FleetOptions,
    items: Vec<T>,
    run: F,
    digest_of: D,
) -> Result<FleetRun<R>, FleetError>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(TaskCtx, T) -> R + Send + Sync + 'static,
    D: Fn(&R) -> u64 + Sync,
{
    let n = items.len();
    let resumed: BTreeMap<usize, u64> = match &opts.resume {
        Some(path) if path.exists() => {
            let state = FleetJournal::load(path)?;
            if state.seed != cfg.seed || state.items != n {
                return Err(FleetError::Journal(format!(
                    "{} belongs to a different run (seed {} items {}, this run: seed {} items {})",
                    path.display(),
                    state.seed,
                    state.items,
                    cfg.seed,
                    n
                )));
            }
            state.completed
        }
        _ => BTreeMap::new(),
    };
    let journal = match &opts.journal {
        Some(path) => Some(Mutex::new(FleetJournal::create_or_append(
            path, cfg.seed, n,
        )?)),
        None => None,
    };

    let run = Arc::new(run);
    let records: Vec<Mutex<Option<TaskRecord<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let allocs_before = droidsim_kernel::alloc_track::current();

    let cancelled = || opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled);
    let worker_body = |i: usize| {
        if let Some(&digest) = resumed.get(&i) {
            *lock(&records[i]) = Some(TaskRecord {
                outcome: TaskOutcome::Skipped { index: i, digest },
                digest: Some(digest),
                retries: 0,
                injected: 0,
                panicked_attempts: 0,
                timed_out_attempts: 0,
                latencies_ms: Vec::new(),
            });
            return;
        }
        let mut rec = TaskRecord {
            outcome: TaskOutcome::Skipped {
                index: i,
                digest: 0,
            }, // placeholder
            digest: None,
            retries: 0,
            injected: 0,
            panicked_attempts: 0,
            timed_out_attempts: 0,
            latencies_ms: Vec::new(),
        };
        let mut attempt: u32 = 0;
        let mut last_panic = String::new();
        let mut last_was_timeout;
        loop {
            if cancelled() {
                // Not journaled: a resumed run must re-run this task.
                rec.outcome = TaskOutcome::Cancelled { index: i };
                break;
            }
            let fault = injected_fault(opts, i, attempt);
            if fault.is_some() {
                rec.injected += 1;
            }
            let started = Instant::now();
            let result = run_attempt(
                &run,
                cfg.seed,
                i,
                items[i].clone(),
                fault,
                opts.task_budget,
                opts.stall_for,
            );
            rec.latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
            match result {
                Attempt::Done(r) => {
                    let digest = digest_of(&r);
                    if let Some(j) = &journal {
                        let _ = lock(j).record(i, "ok", Some(digest), attempt + 1);
                    }
                    rec.digest = Some(digest);
                    rec.outcome = TaskOutcome::Ok(r);
                    break;
                }
                Attempt::Panicked(payload) => {
                    rec.panicked_attempts += 1;
                    last_panic = payload;
                    last_was_timeout = false;
                }
                Attempt::TimedOut => {
                    rec.timed_out_attempts += 1;
                    last_was_timeout = true;
                }
            }
            if attempt < opts.max_retries {
                attempt += 1;
                rec.retries += 1;
                continue;
            }
            if let Some(j) = &journal {
                let _ = lock(j).record(i, "quarantined", None, attempt + 1);
            }
            rec.outcome = if last_was_timeout {
                TaskOutcome::TimedOut {
                    budget: opts.task_budget.unwrap_or_default(),
                    seed: cfg.seed,
                    index: i,
                    attempts: attempt + 1,
                }
            } else {
                TaskOutcome::Panicked {
                    payload: last_panic.clone(),
                    seed: cfg.seed,
                    index: i,
                    attempts: attempt + 1,
                }
            };
            break;
        }
        *lock(&records[i]) = Some(rec);
    };

    if cfg.jobs <= 1 || n <= 1 {
        for i in 0..n {
            worker_body(i);
        }
    } else {
        // Chunked claiming: early claims take a batch of indices per
        // cursor RMW, shrinking to single tasks near the tail — the
        // shared `run_claiming_pool` skeleton (see `claim_chunk`).
        crate::run_claiming_pool(cfg.jobs, n, |range| {
            for i in range {
                worker_body(i);
            }
        });
    }

    // Fold the slots in task-index order — the same contract as plain
    // run_fleet's reducer, so the report is reproducible for any worker
    // count.
    let mut ledger = FleetLedger::new();
    // Process-wide delta, not per-task: concurrent runs overlap, so the
    // value is diagnostic only (and excluded from fingerprints).
    ledger.alloc_events = droidsim_kernel::alloc_track::current().saturating_sub(allocs_before);
    let mut quarantined = Vec::new();
    let mut outcomes = Vec::with_capacity(n);
    let mut digests = Vec::with_capacity(n);
    for (i, slot) in records.into_iter().enumerate() {
        let rec = lock(&slot)
            .take()
            .unwrap_or_else(|| panic!("fleet slot {i} was never filled"));
        match &rec.outcome {
            TaskOutcome::Ok(_) => ledger.ok += 1,
            TaskOutcome::Skipped { .. } => ledger.skipped += 1,
            TaskOutcome::Cancelled { .. } => ledger.cancelled += 1,
            TaskOutcome::Panicked {
                payload, attempts, ..
            } => {
                ledger.panicked += 1;
                quarantined.push(QuarantinedTask {
                    index: i,
                    seed: cfg.seed,
                    attempts: *attempts,
                    kind: "panicked",
                    payload: payload.clone(),
                });
            }
            TaskOutcome::TimedOut { attempts, .. } => {
                ledger.timed_out += 1;
                quarantined.push(QuarantinedTask {
                    index: i,
                    seed: cfg.seed,
                    attempts: *attempts,
                    kind: "timed-out",
                    payload: String::new(),
                });
            }
        }
        ledger.retries += u64::from(rec.retries);
        ledger.panicked_attempts += u64::from(rec.panicked_attempts);
        ledger.timed_out_attempts += u64::from(rec.timed_out_attempts);
        ledger.injected_faults += u64::from(rec.injected);
        for ms in &rec.latencies_ms {
            ledger.attempt_latency_ms.record(*ms);
        }
        digests.push(rec.digest.or(match &rec.outcome {
            TaskOutcome::Skipped { digest, .. } => Some(*digest),
            _ => None,
        }));
        outcomes.push(rec.outcome);
    }
    Ok(FleetRun {
        outcomes,
        digests,
        report: FleetReport {
            ledger,
            quarantined,
            seed: cfg.seed,
            jobs: cfg.jobs,
        },
    })
}
