//! Deterministic parallel fleet driver.
//!
//! Every experiment harness in this workspace — the top-100 study, the
//! Fig. 10 sweeps, the fault matrix, the ablations — simulates *devices*:
//! fully self-contained state machines with their own virtual clock,
//! event queue, logcat buffer, and metrics sinks. Two devices never share
//! state, so a study over N devices is embarrassingly parallel. This
//! crate partitions that work across a [`std::thread::scope`]-based pool
//! while keeping the result of a parallel run **bit-identical** to the
//! serial one:
//!
//! * **Indexed work, indexed results.** Tasks are claimed from a shared
//!   atomic counter, but every task knows its index and writes its result
//!   into its own slot. Reduction folds the slots in index order, so the
//!   outcome is independent of which worker ran what and when.
//! * **Per-task RNG streams.** Each task derives its generator with
//!   [`Xoshiro256::stream`]`(seed, index)` — no draw made by one device
//!   can perturb another, regardless of scheduling.
//! * **No cross-task sinks.** Logcat, metrics, and the virtual clock all
//!   live inside the task's own `Device`; the reducer merges per-device
//!   [digests](crate::digest) after the fact instead of interleaving
//!   writes during the run.
//!
//! The worker count comes from `--jobs` / the `DROIDSIM_JOBS` environment
//! variable, defaulting to the machine's available parallelism; `1`
//! selects the legacy inline path (no threads are spawned at all).
//!
//! # Examples
//!
//! ```
//! use droidsim_fleet::{run_fleet, FleetConfig};
//!
//! let cfg = FleetConfig::new(4, 42);
//! let squares = run_fleet(&cfg, (0u64..8).collect(), |mut ctx, n| {
//!     let _jitter = ctx.rng.next_f64(); // this task's private stream
//!     n * n
//! });
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let serial = run_fleet(&FleetConfig::new(1, 42), (0u64..8).collect(), |mut ctx, n| {
//!     let _jitter = ctx.rng.next_f64();
//!     n * n
//! });
//! assert_eq!(squares, serial, "parallel ≡ serial");
//! ```

pub mod digest;

pub use digest::{combine_ordered, Digest};

use droidsim_kernel::Xoshiro256;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "DROIDSIM_JOBS";

/// How a fleet run is partitioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads; `1` runs inline on the caller thread.
    pub jobs: usize,
    /// Root seed; each task's RNG stream is split from it by index.
    pub seed: u64,
}

impl FleetConfig {
    /// A config with an explicit worker count (clamped to ≥ 1).
    pub fn new(jobs: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            jobs: jobs.max(1),
            seed,
        }
    }

    /// A config resolving the worker count from the environment: an
    /// explicit `jobs` argument (e.g. from a `--jobs` flag) wins, then
    /// `DROIDSIM_JOBS`, then the machine's available parallelism.
    pub fn from_env(jobs: Option<usize>, seed: u64) -> FleetConfig {
        FleetConfig::new(resolve_jobs(jobs), seed)
    }
}

/// Resolves the worker count: explicit argument > `DROIDSIM_JOBS` >
/// available cores. Invalid or zero values fall through to the next
/// source; the result is always ≥ 1.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit.filter(|&n| n > 0) {
        return n;
    }
    if let Some(n) = std::env::var(JOBS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Per-task context handed to the fleet closure.
///
/// The RNG is this task's private stream — identical whether the task
/// runs on the caller thread or any worker.
#[derive(Debug)]
pub struct TaskCtx {
    /// The task's index in the submitted item list (and in the result
    /// vector).
    pub index: usize,
    /// The fleet's root seed.
    pub seed: u64,
    /// The task's own RNG stream (`Xoshiro256::stream(seed, index)`).
    pub rng: Xoshiro256,
}

impl TaskCtx {
    fn new(cfg: &FleetConfig, index: usize) -> TaskCtx {
        TaskCtx {
            index,
            seed: cfg.seed,
            rng: Xoshiro256::stream(cfg.seed, index as u64),
        }
    }
}

/// Runs `run` over every item, partitioned across `cfg.jobs` workers,
/// and returns the results **in item order** — bit-identical to the
/// `jobs = 1` inline run as long as `run` depends only on its arguments.
///
/// Work is claimed dynamically (an atomic cursor), so a slow simulation
/// does not stall the tail of the list behind a static partition.
pub fn run_fleet<T, R, F>(cfg: &FleetConfig, items: Vec<T>, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(TaskCtx, T) -> R + Sync,
{
    if cfg.jobs <= 1 || items.len() <= 1 {
        // Legacy path: no threads, no locks — exactly the old serial loop.
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run(TaskCtx::new(cfg, i), item))
            .collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = cfg.jobs.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("fleet item slot poisoned")
                    .take()
                    .expect("fleet item claimed twice");
                let out = run(TaskCtx::new(cfg, i), item);
                *results[i].lock().expect("fleet result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("fleet result slot poisoned")
                .expect("fleet task produced no result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_chain(cfg: &FleetConfig, len: usize) -> Vec<u64> {
        run_fleet(cfg, (0..len).collect(), |mut ctx, _i| {
            (0..8)
                .map(|_| ctx.rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        })
    }

    #[test]
    fn parallel_results_match_serial_order() {
        let serial = draw_chain(&FleetConfig::new(1, 7), 32);
        for jobs in [2, 3, 4, 8] {
            assert_eq!(
                draw_chain(&FleetConfig::new(jobs, 7), 32),
                serial,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn tasks_see_their_own_stream() {
        let cfg = FleetConfig::new(4, 9);
        let firsts = run_fleet(&cfg, (0..16).collect::<Vec<usize>>(), |mut ctx, i| {
            assert_eq!(ctx.index, i);
            ctx.rng.next_u64()
        });
        let mut unique = firsts.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), firsts.len(), "streams must not collide");
        assert_eq!(firsts[3], Xoshiro256::stream(9, 3).next_u64());
    }

    #[test]
    fn explicit_jobs_beats_env_and_zero_is_ignored() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(Some(0)) >= 1);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn empty_and_single_item_fleets_work() {
        let cfg = FleetConfig::new(8, 1);
        let none: Vec<u32> = run_fleet(&cfg, Vec::<u32>::new(), |_, x| x);
        assert!(none.is_empty());
        assert_eq!(run_fleet(&cfg, vec![5u32], |_, x| x * 2), vec![10]);
    }
}
