//! Deterministic parallel fleet driver.
//!
//! Every experiment harness in this workspace — the top-100 study, the
//! Fig. 10 sweeps, the fault matrix, the ablations — simulates *devices*:
//! fully self-contained state machines with their own virtual clock,
//! event queue, logcat buffer, and metrics sinks. Two devices never share
//! state, so a study over N devices is embarrassingly parallel. This
//! crate partitions that work across a [`std::thread::scope`]-based pool
//! while keeping the result of a parallel run **bit-identical** to the
//! serial one:
//!
//! * **Indexed work, indexed results.** Tasks are claimed from a shared
//!   atomic counter, but every task knows its index and writes its result
//!   into its own slot. Reduction folds the slots in index order, so the
//!   outcome is independent of which worker ran what and when.
//! * **Per-task RNG streams.** Each task derives its generator with
//!   [`Xoshiro256::stream`]`(seed, index)` — no draw made by one device
//!   can perturb another, regardless of scheduling.
//! * **No cross-task sinks.** Logcat, metrics, and the virtual clock all
//!   live inside the task's own `Device`; the reducer merges per-device
//!   [digests](crate::digest) after the fact instead of interleaving
//!   writes during the run.
//!
//! The worker count comes from `--jobs` / the `DROIDSIM_JOBS` environment
//! variable, defaulting to the machine's available parallelism; `1`
//! selects the legacy inline path (no threads are spawned at all). A
//! zero or non-numeric worker count is rejected with an error naming
//! the offending source — never silently replaced.
//!
//! For long campaigns, [`run_fleet_supervised`] layers crash safety on
//! the same driver: per-task panic isolation, deterministic bounded
//! retries, a wall-clock stall watchdog, and an append-only
//! checkpoint journal with resume — see the [`supervise`] module.
//!
//! # Examples
//!
//! ```
//! use droidsim_fleet::{run_fleet, FleetConfig};
//!
//! let cfg = FleetConfig::new(4, 42);
//! let squares = run_fleet(&cfg, (0u64..8).collect(), |mut ctx, n| {
//!     let _jitter = ctx.rng.next_f64(); // this task's private stream
//!     n * n
//! });
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let serial = run_fleet(&FleetConfig::new(1, 42), (0u64..8).collect(), |mut ctx, n| {
//!     let _jitter = ctx.rng.next_f64();
//!     n * n
//! });
//! assert_eq!(squares, serial, "parallel ≡ serial");
//! ```

pub mod digest;
pub mod supervise;

pub use digest::{combine_indexed, combine_ordered, mix_indexed, Digest};
pub use supervise::{
    run_fleet_supervised, FleetError, FleetJournal, FleetOptions, FleetReport, FleetRun,
    JournalState, QuarantinedTask, TaskOutcome,
};

use droidsim_kernel::Xoshiro256;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "DROIDSIM_JOBS";

/// How a fleet run is partitioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads; `1` runs inline on the caller thread.
    pub jobs: usize,
    /// Root seed; each task's RNG stream is split from it by index.
    pub seed: u64,
}

impl FleetConfig {
    /// A config with an explicit worker count (clamped to ≥ 1).
    pub fn new(jobs: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            jobs: jobs.max(1),
            seed,
        }
    }

    /// A config resolving the worker count from the environment: an
    /// explicit `jobs` argument (e.g. from a `--jobs` flag) wins, then
    /// `DROIDSIM_JOBS`, then the machine's available parallelism.
    ///
    /// # Panics
    ///
    /// Panics with the [`JobsError`] message when the explicit argument
    /// is `0` or `DROIDSIM_JOBS` is set to something that is not a
    /// positive integer. Binaries wanting a graceful exit use
    /// [`FleetConfig::try_from_env`].
    pub fn from_env(jobs: Option<usize>, seed: u64) -> FleetConfig {
        match FleetConfig::try_from_env(jobs, seed) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`FleetConfig::from_env`], but invalid worker counts come
    /// back as a typed error instead of a panic.
    pub fn try_from_env(jobs: Option<usize>, seed: u64) -> Result<FleetConfig, JobsError> {
        Ok(FleetConfig::new(try_resolve_jobs(jobs)?, seed))
    }
}

/// Why a worker count could not be resolved. The offending source
/// (`--jobs` or `DROIDSIM_JOBS`) and value are named so the error is
/// actionable, not a silent fallback to 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobsError {
    /// Which knob held the bad value.
    pub source: &'static str,
    /// The rejected value, verbatim.
    pub value: String,
}

impl core::fmt::Display for JobsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid worker count {:?} from {}: expected a positive integer \
             (omit it to use all available cores)",
            self.value, self.source
        )
    }
}

impl std::error::Error for JobsError {}

/// Resolves the worker count: explicit argument > `DROIDSIM_JOBS` >
/// available cores. A zero or non-numeric value is an error naming the
/// source — never a silent fallback; the Ok value is always ≥ 1.
pub fn try_resolve_jobs(explicit: Option<usize>) -> Result<usize, JobsError> {
    if let Some(n) = explicit {
        return if n > 0 {
            Ok(n)
        } else {
            Err(JobsError {
                source: "--jobs",
                value: "0".to_owned(),
            })
        };
    }
    if let Ok(v) = std::env::var(JOBS_ENV) {
        return parse_jobs_value(JOBS_ENV, &v);
    }
    Ok(std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

/// Parses one worker-count value from `source` (strict: positive
/// integers only).
pub fn parse_jobs_value(source: &'static str, value: &str) -> Result<usize, JobsError> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(JobsError {
            source,
            value: value.to_owned(),
        }),
    }
}

/// Panicking form of [`try_resolve_jobs`] for callers without an error
/// path.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    match try_resolve_jobs(explicit) {
        Ok(n) => n,
        Err(e) => panic!("{e}"),
    }
}

/// Per-task context handed to the fleet closure.
///
/// The RNG is this task's private stream — identical whether the task
/// runs on the caller thread or any worker.
#[derive(Debug)]
pub struct TaskCtx {
    /// The task's index in the submitted item list (and in the result
    /// vector).
    pub index: usize,
    /// The fleet's root seed.
    pub seed: u64,
    /// The task's own RNG stream (`Xoshiro256::stream(seed, index)`).
    pub rng: Xoshiro256,
}

impl TaskCtx {
    fn new(cfg: &FleetConfig, index: usize) -> TaskCtx {
        TaskCtx::stream(cfg.seed, index)
    }

    /// The context task `index` gets under root `seed` — identical on
    /// every attempt, worker, and worker count. Retries re-derive it so
    /// a retried task reproduces the exact digest of an undisturbed run.
    pub(crate) fn stream(seed: u64, index: usize) -> TaskCtx {
        TaskCtx {
            index,
            seed,
            rng: Xoshiro256::stream(seed, index as u64),
        }
    }
}

/// Takes a lock without honouring poisoning: no fleet worker panics
/// while holding one (task code runs behind `catch_unwind`), and even
/// if the invariant broke, one slot's poison must not cost the run.
fn lock_slot<X>(m: &Mutex<X>) -> std::sync::MutexGuard<'_, X> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Claims the next batch of task indices from the shared cursor.
///
/// Claiming one index per round-trip puts the cursor's cache line on the
/// critical path of every task; claiming a fixed large batch starves the
/// tail. This takes the middle road: batch size adapts as
/// `max(1, remaining / (4·jobs))`, so early claims are coarse (few
/// contended RMWs) and the final claims degrade to single tasks (no
/// worker sits on a hoard while others idle). The `remaining` estimate
/// reads a possibly stale cursor; the claimed range is clamped to `n`,
/// so over-claiming past the end is harmless.
pub(crate) fn claim_chunk(
    cursor: &AtomicUsize,
    n: usize,
    jobs: usize,
) -> Option<std::ops::Range<usize>> {
    let seen = cursor.load(Ordering::Relaxed).min(n);
    let k = ((n - seen) / (4 * jobs.max(1))).max(1);
    let start = cursor.fetch_add(k, Ordering::Relaxed);
    (start < n).then(|| start..(start + k).min(n))
}

/// A cooperative cancellation flag shared between a fleet run and its
/// supervisor (e.g. the `droidsimd` deadline watchdog).
///
/// Cancellation is *cooperative*: the supervised driver checks the
/// token between task attempts, never mid-attempt — an in-flight
/// simulation always runs to its own completion (or its watchdog
/// budget), so a cancelled run still journals every task it finished.
/// Cloning shares the flag; the default token is never cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// The shared worker-pool skeleton: spawns `min(workers, n)` scoped
/// threads that claim adaptive index chunks (see [`claim_chunk`]'s
/// batching policy) from one shared cursor until all `n` indices are
/// claimed, invoking `chunk` once per claimed range.
///
/// This is the single claiming loop behind [`run_fleet`],
/// [`run_fleet_reduce`] and the supervised driver — and the primitive
/// external pools (the `droidsimd` resume pass, the `droidsim-load`
/// client fan-out) build on instead of re-implementing. With
/// `workers <= 1` or `n <= 1` the chunks run inline on the caller
/// thread, preserving the legacy no-thread path.
pub fn run_claiming_pool<C>(workers: usize, n: usize, chunk: C)
where
    C: Fn(std::ops::Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        chunk(0..n);
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(range) = claim_chunk(&cursor, n, workers) {
                    chunk(range);
                }
            });
        }
    });
}

/// Runs `run` over every item, partitioned across `cfg.jobs` workers,
/// and returns the results **in item order** — bit-identical to the
/// `jobs = 1` inline run as long as `run` depends only on its arguments.
///
/// Work is claimed dynamically (an atomic cursor), so a slow simulation
/// does not stall the tail of the list behind a static partition.
///
/// # Panics
///
/// A panicking task no longer poisons the pool: every task runs behind
/// `catch_unwind`, all remaining tasks complete, and only then does
/// this function re-raise the failure — with a crash dump naming every
/// failed task's seed/index repro. Callers who want the partial results
/// instead use [`run_fleet_supervised`].
pub fn run_fleet<T, R, F>(cfg: &FleetConfig, items: Vec<T>, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(TaskCtx, T) -> R + Sync,
{
    let n = items.len();
    let outcomes: Vec<Result<R, String>> = if cfg.jobs <= 1 || n <= 1 {
        // Legacy path: no threads, no locks — the old serial loop, with
        // the same isolation boundary as the pool.
        items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                catch_unwind(AssertUnwindSafe(|| run(TaskCtx::new(cfg, i), item)))
                    .map_err(supervise::payload_text)
            })
            .collect()
    } else {
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<Result<R, String>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        run_claiming_pool(cfg.jobs, n, |range| {
            for i in range {
                let Some(item) = lock_slot(&slots[i]).take() else {
                    continue;
                };
                let out = catch_unwind(AssertUnwindSafe(|| run(TaskCtx::new(cfg, i), item)))
                    .map_err(supervise::payload_text);
                *lock_slot(&results[i]) = Some(out);
            }
        });
        results
            .into_iter()
            .map(|slot| {
                lock_slot(&slot)
                    .take()
                    .unwrap_or_else(|| Err("fleet task produced no result".to_owned()))
            })
            .collect()
    };

    let mut out = Vec::with_capacity(n);
    let mut dumps = Vec::new();
    for (i, o) in outcomes.into_iter().enumerate() {
        match o {
            Ok(r) => out.push(r),
            Err(payload) => dumps.push(format!(
                "  task {i}: panicked ({payload}); repro: DROIDSIM_JOBS=1 \
                 seed={} index={i} rng=Xoshiro256::stream({}, {i})",
                cfg.seed, cfg.seed
            )),
        }
    }
    if !dumps.is_empty() {
        panic!(
            "{} of {n} fleet task(s) panicked ({} completed); \
             use run_fleet_supervised for partial results\n{}",
            dumps.len(),
            out.len(),
            dumps.join("\n")
        );
    }
    out
}

/// Digest-only fleet run: maps every item to a 64-bit digest and merges
/// them **unordered** with [`combine_indexed`] as workers finish.
///
/// This is the fast path for study harnesses that only need the reduced
/// fleet digest: there are no per-item `Mutex` slots and no ordered
/// result draining — each worker folds its chunk's index-tagged digests
/// locally and publishes one wrapping-add per chunk into a shared
/// accumulator. Because the tagged fold is commutative, the value is
/// identical for any worker count and any completion order, including
/// the `jobs = 1` inline run.
///
/// # Panics
///
/// Like [`run_fleet`], a panicking task does not poison the pool: all
/// remaining tasks complete, then the failure is re-raised with a
/// per-task repro line.
pub fn run_fleet_reduce<T, F>(cfg: &FleetConfig, items: &[T], run: F) -> u64
where
    T: Sync,
    F: Fn(TaskCtx, &T) -> u64 + Sync,
{
    use std::sync::atomic::AtomicU64;

    let n = items.len();
    let acc = AtomicU64::new(0);
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let attempt = |i: usize| -> u64 {
        match catch_unwind(AssertUnwindSafe(|| run(TaskCtx::new(cfg, i), &items[i]))) {
            Ok(d) => digest::mix_indexed(i as u64, d),
            Err(payload) => {
                lock_slot(&failures).push(format!(
                    "  task {i}: panicked ({}); repro: DROIDSIM_JOBS=1 \
                     seed={} index={i} rng=Xoshiro256::stream({}, {i})",
                    supervise::payload_text(payload),
                    cfg.seed,
                    cfg.seed
                ));
                0
            }
        }
    };
    if cfg.jobs <= 1 || n <= 1 {
        let total = (0..n).map(&attempt).fold(0u64, u64::wrapping_add);
        acc.store(total, Ordering::Relaxed);
    } else {
        run_claiming_pool(cfg.jobs, n, |range| {
            let chunk = range.map(&attempt).fold(0u64, u64::wrapping_add);
            // fetch_add on u64 wraps, matching the inline fold.
            acc.fetch_add(chunk, Ordering::Relaxed);
        });
    }
    let dumps = lock_slot(&failures);
    if !dumps.is_empty() {
        panic!(
            "{} of {n} fleet task(s) panicked; \
             use run_fleet_supervised for partial results\n{}",
            dumps.len(),
            dumps.join("\n")
        );
    }
    acc.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_chain(cfg: &FleetConfig, len: usize) -> Vec<u64> {
        run_fleet(cfg, (0..len).collect(), |mut ctx, _i| {
            (0..8)
                .map(|_| ctx.rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        })
    }

    #[test]
    fn parallel_results_match_serial_order() {
        let serial = draw_chain(&FleetConfig::new(1, 7), 32);
        for jobs in [2, 3, 4, 8] {
            assert_eq!(
                draw_chain(&FleetConfig::new(jobs, 7), 32),
                serial,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn tasks_see_their_own_stream() {
        let cfg = FleetConfig::new(4, 9);
        let firsts = run_fleet(&cfg, (0..16).collect::<Vec<usize>>(), |mut ctx, i| {
            assert_eq!(ctx.index, i);
            ctx.rng.next_u64()
        });
        let mut unique = firsts.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), firsts.len(), "streams must not collide");
        assert_eq!(firsts[3], Xoshiro256::stream(9, 3).next_u64());
    }

    #[test]
    fn explicit_jobs_beats_env_and_zero_is_rejected() {
        assert_eq!(try_resolve_jobs(Some(3)), Ok(3));
        let err = try_resolve_jobs(Some(0)).unwrap_err();
        assert_eq!(err.source, "--jobs");
        assert!(err.to_string().contains("positive integer"), "{err}");
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn jobs_values_parse_strictly() {
        assert_eq!(parse_jobs_value(JOBS_ENV, " 4 "), Ok(4));
        for bad in ["0", "", "three", "-2", "4.5", "0x4"] {
            let err = parse_jobs_value(JOBS_ENV, bad).unwrap_err();
            assert_eq!(err.source, JOBS_ENV);
            assert_eq!(err.value, bad);
            assert!(
                err.to_string().contains(JOBS_ENV),
                "error must name the source: {err}"
            );
        }
    }

    #[test]
    fn claiming_pool_visits_every_index_exactly_once() {
        for workers in [1usize, 2, 4, 8, 64] {
            let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
            run_claiming_pool(workers, hits.len(), |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "workers={workers}"
            );
        }
        run_claiming_pool(4, 0, |_| panic!("no chunks for an empty pool"));
    }

    #[test]
    fn cancel_token_is_shared_and_idempotent() {
        let token = CancelToken::new();
        let peer = token.clone();
        assert!(!token.is_cancelled());
        peer.cancel();
        peer.cancel();
        assert!(token.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn empty_and_single_item_fleets_work() {
        let cfg = FleetConfig::new(8, 1);
        let none: Vec<u32> = run_fleet(&cfg, Vec::<u32>::new(), |_, x| x);
        assert!(none.is_empty());
        assert_eq!(run_fleet(&cfg, vec![5u32], |_, x| x * 2), vec![10]);
    }

    #[test]
    fn a_panicking_task_reports_instead_of_poisoning() {
        // The old driver died on a poisoned result slot; now every other
        // task completes and the re-raised panic carries a repro line.
        for jobs in [1usize, 4] {
            let err = std::panic::catch_unwind(|| {
                run_fleet(
                    &FleetConfig::new(jobs, 3),
                    (0..8u64).collect(),
                    |_ctx, n| {
                        if n == 3 {
                            panic!("organic bug at n=3");
                        }
                        n * n
                    },
                )
            })
            .expect_err("the failure must still surface");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("1 of 8 fleet task(s) panicked"), "{msg}");
            assert!(msg.contains("7 completed"), "{msg}");
            assert!(msg.contains("organic bug at n=3"), "{msg}");
            assert!(msg.contains("index=3"), "{msg}");
        }
    }
}

#[cfg(test)]
mod supervise_tests {
    use super::*;
    use droidsim_faults::{FaultPlan, FaultSite};
    use std::time::Duration;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("droidsim-fleet-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    /// The workload under supervision: a deterministic function of the
    /// task's private RNG stream, so digests double as correctness
    /// checks.
    fn chain(ctx: TaskCtx, _n: usize) -> u64 {
        let mut rng = ctx.rng;
        (0..8).map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add)
    }

    fn supervised(cfg: &FleetConfig, opts: &FleetOptions) -> FleetRun<u64> {
        run_fleet_supervised(cfg, opts, (0..8).collect(), chain, |r| *r).unwrap()
    }

    #[test]
    fn clean_supervised_run_equals_plain_run() {
        let plain = run_fleet(&FleetConfig::new(1, 5), (0..8).collect(), chain);
        for jobs in [1usize, 2, 8] {
            let run = supervised(&FleetConfig::new(jobs, 5), &FleetOptions::new());
            let got: Vec<u64> = run.outcomes.iter().map(|o| *o.ok().unwrap()).collect();
            assert_eq!(got, plain, "jobs={jobs}");
            assert_eq!(
                run.combined_digest(),
                Some(combine_ordered(plain.iter().copied()))
            );
            assert!(run.report.is_clean());
            assert_eq!(run.report.ledger.ok, 8);
            assert_eq!(run.report.ledger.retries, 0);
        }
    }

    #[test]
    fn hard_failures_quarantine_and_spare_the_rest() {
        let opts = FleetOptions::new().with_retries(2).with_hard_fail(vec![3]);
        let clean = supervised(&FleetConfig::new(4, 5), &FleetOptions::new());
        let run = supervised(&FleetConfig::new(4, 5), &opts);
        for (i, o) in run.outcomes.iter().enumerate() {
            if i == 3 {
                assert!(o.is_quarantined(), "index 3 must be quarantined");
                assert_eq!(o.tag(), "panicked");
            } else {
                assert_eq!(o.ok(), clean.outcomes[i].ok(), "index {i}");
            }
        }
        assert_eq!(run.combined_digest(), None, "partial runs have no digest");
        assert_eq!(run.report.ledger.retries, 2);
        assert_eq!(run.report.quarantined.len(), 1);
        let q = &run.report.quarantined[0];
        assert_eq!((q.index, q.attempts, q.kind), (3, 3, "panicked"));
        assert!(q.repro_line().contains("index=3"), "{}", q.repro_line());
        assert!(run.report.render().contains("QUARANTINED: 1 task(s)"));
    }

    #[test]
    fn transient_forced_fault_retries_to_the_clean_digest() {
        let clean = supervised(&FleetConfig::new(1, 9), &FleetOptions::new());
        let faulted = FleetOptions::new()
            .with_retries(1)
            .with_faults(FaultPlan::seeded(77).on_nth_probe(FaultSite::FleetTask, 6));
        for jobs in [1usize, 2, 4, 8] {
            let run = supervised(&FleetConfig::new(jobs, 9), &faulted);
            assert_eq!(
                run.combined_digest(),
                clean.combined_digest(),
                "jobs={jobs}: retry must reproduce the clean digest"
            );
            assert_eq!(run.report.ledger.retries, 1, "jobs={jobs}");
            assert_eq!(run.report.ledger.injected_faults, 1, "jobs={jobs}");
            assert!(run.report.is_clean(), "jobs={jobs}");
        }
    }

    #[test]
    fn watchdog_times_out_injected_stalls() {
        // Rate 1.0 at FleetTask: every first attempt faults; with the
        // watchdog armed roughly half inject stalls. No retries, so
        // every task is quarantined either way — but the run returns.
        let opts = FleetOptions {
            task_budget: Some(Duration::from_millis(40)),
            stall_for: Duration::from_millis(400),
            faults: FaultPlan::seeded(5).with_rate(FaultSite::FleetTask, 1.0),
            ..FleetOptions::new()
        };
        let run = supervised(&FleetConfig::new(4, 5), &opts);
        assert_eq!(run.report.ledger.quarantined(), 8);
        assert!(
            run.report.ledger.timed_out >= 1,
            "some stalls must time out: {}",
            run.report.ledger.deterministic_fingerprint()
        );
        assert!(
            run.report.ledger.panicked >= 1,
            "some faults must panic: {}",
            run.report.ledger.deterministic_fingerprint()
        );
        for o in &run.outcomes {
            assert!(o.is_quarantined());
        }
        // With one retry, every task recovers: the injection draw at
        // attempt 1 comes from the same per-index lane, past the
        // attempt-0 draws, and the rate-1.0 verdict repeats... so use a
        // transient plan instead to prove timeout recovery.
        let transient = FleetOptions {
            task_budget: Some(Duration::from_millis(40)),
            stall_for: Duration::from_millis(400),
            max_retries: 1,
            faults: FaultPlan::seeded(5).on_nth_probe(FaultSite::FleetTask, 2),
            ..FleetOptions::new()
        };
        let clean = supervised(&FleetConfig::new(1, 5), &FleetOptions::new());
        let run = supervised(&FleetConfig::new(4, 5), &transient);
        assert!(run.report.is_clean());
        assert_eq!(run.combined_digest(), clean.combined_digest());
    }

    #[test]
    fn pre_cancelled_run_marks_every_task_cancelled() {
        let token = CancelToken::new();
        token.cancel();
        for jobs in [1usize, 4] {
            let run = supervised(
                &FleetConfig::new(jobs, 5),
                &FleetOptions::new().with_cancel(token.clone()),
            );
            assert_eq!(run.report.ledger.cancelled, 8, "jobs={jobs}");
            assert_eq!(run.report.ledger.ok, 0, "jobs={jobs}");
            assert_eq!(run.combined_digest(), None, "no digest for a cancelled run");
            for o in &run.outcomes {
                assert_eq!(o.tag(), "cancelled");
                assert!(!o.is_quarantined(), "cancelled is not a failure");
            }
        }
    }

    #[test]
    fn mid_run_cancellation_journals_finished_tasks_for_resume() {
        let token = CancelToken::new();
        let path = tmp("cancel");
        let opts = FleetOptions::new()
            .with_journal(&path)
            .with_cancel(token.clone());
        let run = run_fleet_supervised(
            &FleetConfig::new(1, 13),
            &opts,
            (0..8).collect(),
            {
                let token = token.clone();
                move |ctx, n: usize| {
                    let r = chain(ctx, n);
                    if n == 3 {
                        token.cancel(); // a deadline firing mid-study
                    }
                    r
                }
            },
            |r: &u64| *r,
        )
        .unwrap();
        assert_eq!(run.report.ledger.ok, 4);
        assert_eq!(run.report.ledger.cancelled, 4);
        assert_eq!(run.combined_digest(), None);

        // The four finished tasks were journaled; a resume runs only the
        // cancelled tail and lands on the uninterrupted digest.
        let clean = supervised(&FleetConfig::new(1, 13), &FleetOptions::new());
        let resumed = supervised(
            &FleetConfig::new(1, 13),
            &FleetOptions::new().resuming(&path),
        );
        assert_eq!(resumed.report.ledger.skipped, 4);
        assert_eq!(resumed.report.ledger.ok, 4);
        assert_eq!(resumed.combined_digest(), clean.combined_digest());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_then_resume_reproduces_the_uninterrupted_digest() {
        let cfg = FleetConfig::new(2, 13);
        let clean = supervised(&cfg, &FleetOptions::new());

        // First run journals everything…
        let path = tmp("resume");
        let run = supervised(&cfg, &FleetOptions::new().with_journal(&path));
        assert_eq!(run.combined_digest(), clean.combined_digest());

        // …then the file is truncated to the header + half the tasks,
        // with a torn final line — exactly what a crash leaves behind.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 9, "header + 8 tasks");
        let mut kept = lines[..5].join("\n");
        kept.push('\n');
        kept.push_str("kind=task index=6 outco"); // torn mid-write
        std::fs::write(&path, kept).unwrap();

        let state = FleetJournal::load(&path).unwrap();
        assert_eq!(state.completed.len(), 4, "torn line discarded");

        let resumed = supervised(&cfg, &FleetOptions::new().resuming(&path));
        assert_eq!(resumed.report.ledger.skipped, 4);
        assert_eq!(resumed.report.ledger.ok, 4);
        assert_eq!(
            resumed.combined_digest(),
            clean.combined_digest(),
            "a resumed run must digest identically to an uninterrupted one"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_a_foreign_journal() {
        let path = tmp("foreign");
        let _ = supervised(
            &FleetConfig::new(1, 1),
            &FleetOptions::new().with_journal(&path),
        );
        let err = run_fleet_supervised(
            &FleetConfig::new(1, 2), // different seed
            &FleetOptions::new().resuming(&path),
            (0..8).collect(),
            chain,
            |r: &u64| *r,
        )
        .unwrap_err();
        assert!(err.to_string().contains("different run"), "got: {err}");
        let _ = std::fs::remove_file(&path);
    }
}
