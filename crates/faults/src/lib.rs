//! Deterministic fault injection for the supervised migration subsystem.
//!
//! RCHDroid's promise is that runtime-change handling never leaves an
//! activity in a worse state than stock Android's restart path. Testing
//! that promise needs failures on demand: a [`FaultPlan`] decides, at
//! named [`FaultSite`]s on the handling path, whether this particular
//! probe fails — either at a seeded per-site rate or forced at an exact
//! probe index.
//!
//! Determinism is the whole point: every site draws from its **own**
//! PRNG stream (derived from the plan seed with a SplitMix64 splitter),
//! so the verdicts at one site do not depend on how often other sites
//! were probed, and two holders of clones of the same plan that probe
//! *disjoint* site sets reproduce the exact same fault schedule as a
//! single holder would. Replaying a failing seed replays the faults.

use core::fmt;
use droidsim_kernel::{SplitMix64, Xoshiro256};

/// A named point on the change-handling path where a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// The essence-based mapping fails to resolve a view's sunny peer
    /// even though one should exist (a stale or lost coupling entry).
    EssenceMappingMiss,
    /// The per-type Table-1 attribute copy of one view blows up.
    AttributeCopy,
    /// The saved-instance-state parcel is corrupted when the shadow
    /// bundle is snapshotted (restore must proceed without it).
    BundleCorruption,
    /// The app's async callback panics while running on the shadow
    /// instance.
    AsyncCallbackPanic,
    /// A migration flush overruns its virtual-time deadline budget.
    FlushDeadlineOverrun,
    /// Allocating the sunny instance fails under GC pressure.
    AllocationFailure,
    /// A whole fleet task (one device simulation) panics or stalls.
    /// Probed by the fleet driver per task *attempt*, never on the
    /// change-handling path — so it is not part of [`FaultSite::ALL`],
    /// which the fault matrix drives through a single device.
    FleetTask,
    /// The daemon's admission path drops a submission: the accept
    /// bookkeeping fails transiently before the job can be queued, so
    /// the client receives an explicit `Rejected` instead of an ack.
    /// Probed by `droidsimd` once per submission; like
    /// [`FaultSite::FleetTask`] it lives outside the change-handling
    /// path and is therefore not part of [`FaultSite::ALL`].
    Admission,
    /// A daemon-journal record write fails (`ENOSPC`, or a short write
    /// that tears the record mid-line). Probed by the daemon's I/O shim
    /// once per appended record; outside [`FaultSite::ALL`].
    JournalWrite,
    /// The `fsync` after a daemon-journal append fails: the bytes may
    /// or may not be durable, so the writer must treat the record as
    /// unjournaled. Probed once per append; outside [`FaultSite::ALL`].
    JournalSync,
    /// A server-side socket read breaks mid-request (peer reset or a
    /// stall the governor converts into a close). Probed by the
    /// connection handler before each read; outside [`FaultSite::ALL`].
    SocketRead,
    /// A server-side socket write breaks before the response line is
    /// flushed — the client sees EOF where an acknowledgment should
    /// be, the canonical lost-ack window idempotent submission covers.
    /// Probed before each response write; outside [`FaultSite::ALL`].
    SocketWrite,
}

impl FaultSite {
    /// Every change-handling-path site, in a fixed order (the fault
    /// matrix iterates this). [`FaultSite::FleetTask`] lives outside the
    /// handling path and is probed by the fleet driver instead.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::EssenceMappingMiss,
        FaultSite::AttributeCopy,
        FaultSite::BundleCorruption,
        FaultSite::AsyncCallbackPanic,
        FaultSite::FlushDeadlineOverrun,
        FaultSite::AllocationFailure,
    ];

    /// A stable, log-friendly name (keys metrics and logcat lines).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::EssenceMappingMiss => "essence-mapping-miss",
            FaultSite::AttributeCopy => "attribute-copy",
            FaultSite::BundleCorruption => "bundle-corruption",
            FaultSite::AsyncCallbackPanic => "async-callback-panic",
            FaultSite::FlushDeadlineOverrun => "flush-deadline-overrun",
            FaultSite::AllocationFailure => "allocation-failure",
            FaultSite::FleetTask => "fleet-task",
            FaultSite::Admission => "admission",
            FaultSite::JournalWrite => "journal-write",
            FaultSite::JournalSync => "journal-sync",
            FaultSite::SocketRead => "socket-read",
            FaultSite::SocketWrite => "socket-write",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::EssenceMappingMiss => 0,
            FaultSite::AttributeCopy => 1,
            FaultSite::BundleCorruption => 2,
            FaultSite::AsyncCallbackPanic => 3,
            FaultSite::FlushDeadlineOverrun => 4,
            FaultSite::AllocationFailure => 5,
            FaultSite::FleetTask => 6,
            FaultSite::Admission => 7,
            FaultSite::JournalWrite => 8,
            FaultSite::JournalSync => 9,
            FaultSite::SocketRead => 10,
            FaultSite::SocketWrite => 11,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// + FleetTask, Admission, and the four daemon-edge I/O sites, all
// outside ALL (they are probed by the fleet driver and the daemon's
// I/O shim, never on the change-handling path).
const SITES: usize = FaultSite::ALL.len() + 6;

/// The daemon-edge I/O sites the chaos shim probes, in a fixed order
/// (the `--io-fault-pct` flag arms exactly these).
pub const IO_SITES: [FaultSite; 4] = [
    FaultSite::JournalWrite,
    FaultSite::JournalSync,
    FaultSite::SocketRead,
    FaultSite::SocketWrite,
];

/// A seeded, deterministic schedule of injected faults.
///
/// Each site has an independent injection rate (probability per probe),
/// an optional set of *forced* probe indices (1-based: "fail the nth
/// time this site is asked"), and its own PRNG stream. The default plan
/// is [`FaultPlan::disarmed`] — it never injects and never draws.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    site_seeds: [u64; SITES],
    rngs: [Xoshiro256; SITES],
    rates: [f64; SITES],
    forced: [Vec<u64>; SITES],
    probes: [u64; SITES],
    injected: [u64; SITES],
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disarmed()
    }
}

impl FaultPlan {
    /// A plan that never injects (the production configuration).
    pub fn disarmed() -> Self {
        FaultPlan::seeded(0)
    }

    /// A plan with per-site streams derived from `seed` and all rates at
    /// zero; arm sites with [`FaultPlan::with_rate`] /
    /// [`FaultPlan::on_nth_probe`].
    pub fn seeded(seed: u64) -> Self {
        let mut splitter = SplitMix64::new(seed);
        let site_seeds: [u64; SITES] = core::array::from_fn(|_| splitter.next_u64());
        FaultPlan {
            seed,
            site_seeds,
            rngs: core::array::from_fn(|i| Xoshiro256::seed_from(site_seeds[i])),
            rates: [0.0; SITES],
            forced: core::array::from_fn(|_| Vec::new()),
            probes: [0; SITES],
            injected: [0; SITES],
        }
    }

    /// The seed the per-site streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets one site's injection probability per probe (clamped to
    /// `[0, 1]`).
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        self.rates[site.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets every site's injection probability (clamped to `[0, 1]`).
    pub fn with_rate_everywhere(mut self, rate: f64) -> Self {
        for site in FaultSite::ALL {
            self.rates[site.index()] = rate.clamp(0.0, 1.0);
        }
        self
    }

    /// Forces an injection at the `nth` probe of `site` (1-based),
    /// regardless of the site's rate. Repeatable for several indices.
    pub fn on_nth_probe(mut self, site: FaultSite, nth: u64) -> Self {
        if nth > 0 {
            self.forced[site.index()].push(nth);
        }
        self
    }

    /// Whether any site can ever inject.
    pub fn is_armed(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0) || self.forced.iter().any(|f| !f.is_empty())
    }

    /// One probe: should the fault at `site` strike now?
    ///
    /// Counts the probe, consults the forced indices, then (only for a
    /// non-zero rate) draws from the site's own stream — so rate-zero
    /// sites cost nothing and never perturb other sites' verdicts.
    pub fn should_inject(&mut self, site: FaultSite) -> bool {
        let i = site.index();
        self.probes[i] += 1;
        let hit = if self.forced[i].contains(&self.probes[i]) {
            true
        } else if self.rates[i] > 0.0 {
            self.rngs[i].next_f64() < self.rates[i]
        } else {
            false
        };
        if hit {
            self.injected[i] += 1;
        }
        hit
    }

    /// The injection probability currently configured for `site`.
    pub fn rate(&self, site: FaultSite) -> f64 {
        self.rates[site.index()]
    }

    /// The forced probe indices (1-based) configured for `site`.
    pub fn forced_probes(&self, site: FaultSite) -> &[u64] {
        &self.forced[site.index()]
    }

    /// A *stateless* per-`(site, lane)` stream for probes whose verdicts
    /// must not depend on probe order — e.g. the fleet driver probing
    /// [`FaultSite::FleetTask`] from many worker threads at once. Two
    /// calls with the same plan seed, site and lane return identical
    /// streams no matter what else was probed in between; distinct lanes
    /// (one per fleet task index) never share a stream.
    pub fn site_stream(&self, site: FaultSite, lane: u64) -> Xoshiro256 {
        Xoshiro256::stream(self.site_seeds[site.index()], lane)
    }

    /// Probes recorded at `site` so far.
    pub fn probes(&self, site: FaultSite) -> u64 {
        self.probes[site.index()]
    }

    /// Injections recorded at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()]
    }

    /// Total injections across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_injects() {
        let mut plan = FaultPlan::disarmed();
        assert!(!plan.is_armed());
        for _ in 0..1000 {
            for site in FaultSite::ALL {
                assert!(!plan.should_inject(site));
            }
        }
        assert_eq!(plan.total_injected(), 0);
        assert_eq!(plan.probes(FaultSite::AttributeCopy), 1000);
    }

    #[test]
    fn same_seed_reproduces_the_same_schedule() {
        let schedule = |seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::seeded(seed).with_rate_everywhere(0.3);
            (0..200)
                .map(|i| plan.should_inject(FaultSite::ALL[i % FaultSite::ALL.len()]))
                .collect()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43), "different seeds diverge");
    }

    #[test]
    fn sites_draw_from_independent_streams() {
        // Probing extra sites in between must not change another site's
        // verdict sequence.
        let isolated = |noise: bool| -> Vec<bool> {
            let mut plan = FaultPlan::seeded(7).with_rate_everywhere(0.5);
            (0..100)
                .map(|_| {
                    if noise {
                        plan.should_inject(FaultSite::BundleCorruption);
                        plan.should_inject(FaultSite::AllocationFailure);
                    }
                    plan.should_inject(FaultSite::AttributeCopy)
                })
                .collect()
        };
        assert_eq!(isolated(false), isolated(true));
    }

    #[test]
    fn rate_controls_the_injection_fraction() {
        let mut plan = FaultPlan::seeded(1).with_rate(FaultSite::AttributeCopy, 0.2);
        let hits = (0..10_000)
            .filter(|_| plan.should_inject(FaultSite::AttributeCopy))
            .count();
        let fraction = hits as f64 / 10_000.0;
        assert!((fraction - 0.2).abs() < 0.02, "got {fraction}");
        assert_eq!(plan.injected(FaultSite::AttributeCopy), hits as u64);
    }

    #[test]
    fn forced_nth_probe_fires_exactly_there() {
        let mut plan = FaultPlan::seeded(9)
            .on_nth_probe(FaultSite::BundleCorruption, 3)
            .on_nth_probe(FaultSite::BundleCorruption, 5);
        let verdicts: Vec<bool> = (0..6)
            .map(|_| plan.should_inject(FaultSite::BundleCorruption))
            .collect();
        assert_eq!(verdicts, [false, false, true, false, true, false]);
        assert!(plan.is_armed());
    }

    #[test]
    fn rates_clamp_to_unit_interval() {
        let mut plan = FaultPlan::seeded(2).with_rate(FaultSite::AsyncCallbackPanic, 7.5);
        assert!(plan.should_inject(FaultSite::AsyncCallbackPanic));
        let mut never = FaultPlan::seeded(2).with_rate(FaultSite::AsyncCallbackPanic, -1.0);
        assert!(!never.should_inject(FaultSite::AsyncCallbackPanic));
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for site in FaultSite::ALL
            .into_iter()
            .chain([FaultSite::FleetTask, FaultSite::Admission])
            .chain(IO_SITES)
        {
            assert!(seen.insert(site.name()));
            assert_eq!(site.to_string(), site.name());
        }
        assert_eq!(seen.len(), 12);
        assert!(!FaultSite::ALL.contains(&FaultSite::FleetTask));
        assert!(!FaultSite::ALL.contains(&FaultSite::Admission));
        for site in IO_SITES {
            assert!(!FaultSite::ALL.contains(&site), "{site} is daemon-edge");
        }
    }

    #[test]
    fn io_sites_draw_independent_streams_and_stay_disarmed_by_default() {
        // Arming the I/O sites must not perturb the handling-path
        // schedules (seeded CI runs stay stable), and
        // with_rate_everywhere must leave them disarmed — the daemon
        // arms them explicitly via --io-fault-pct.
        let schedule = |arm_io: bool| -> Vec<bool> {
            let mut plan = FaultPlan::seeded(21).with_rate_everywhere(0.3);
            if arm_io {
                for site in IO_SITES {
                    plan = plan.with_rate(site, 1.0);
                }
            }
            (0..60)
                .map(|i| plan.should_inject(FaultSite::ALL[i % FaultSite::ALL.len()]))
                .collect()
        };
        assert_eq!(schedule(false), schedule(true));
        let mut blanket = FaultPlan::seeded(21).with_rate_everywhere(1.0);
        for site in IO_SITES {
            assert!(!blanket.should_inject(site), "{site} must stay disarmed");
        }
        // And each I/O site injects independently when armed.
        let mut armed = FaultPlan::seeded(21);
        for site in IO_SITES {
            armed = armed.with_rate(site, 0.5);
        }
        for site in IO_SITES {
            let hits = (0..200).filter(|_| armed.should_inject(site)).count();
            assert!(hits > 50 && hits < 150, "{site}: {hits}/200");
        }
    }

    #[test]
    fn admission_site_draws_its_own_stream() {
        // The admission site must be probeable at a rate without
        // perturbing the handling-path sites (same seed, noise on and
        // off), and with_rate_everywhere must leave it disarmed — the
        // daemon arms it explicitly.
        let schedule = |noise: bool| -> Vec<bool> {
            let mut plan = FaultPlan::seeded(3).with_rate(FaultSite::Admission, 0.4);
            (0..100)
                .map(|_| {
                    if noise {
                        plan.should_inject(FaultSite::AttributeCopy);
                    }
                    plan.should_inject(FaultSite::Admission)
                })
                .collect()
        };
        assert_eq!(schedule(false), schedule(true));
        assert!(schedule(false).iter().any(|&v| v));
        let mut blanket = FaultPlan::seeded(3).with_rate_everywhere(1.0);
        assert!(!blanket.should_inject(FaultSite::Admission));
    }

    #[test]
    fn site_streams_are_order_independent_and_lane_disjoint() {
        let plan = FaultPlan::seeded(11).with_rate(FaultSite::FleetTask, 0.5);
        // Probing other sites (stateful API) must not perturb the
        // stateless per-lane streams.
        let mut noisy = plan.clone();
        for _ in 0..50 {
            noisy.should_inject(FaultSite::AttributeCopy);
        }
        for lane in 0..8 {
            assert_eq!(
                plan.site_stream(FaultSite::FleetTask, lane).next_u64(),
                noisy.site_stream(FaultSite::FleetTask, lane).next_u64(),
                "lane {lane}"
            );
        }
        let firsts: std::collections::BTreeSet<u64> = (0..64)
            .map(|lane| plan.site_stream(FaultSite::FleetTask, lane).next_u64())
            .collect();
        assert_eq!(firsts.len(), 64, "lanes must not collide");
        assert_eq!(plan.rate(FaultSite::FleetTask), 0.5);
        assert!(plan.forced_probes(FaultSite::FleetTask).is_empty());
    }

    #[test]
    fn fleet_task_site_does_not_disturb_handling_site_schedules() {
        // The 7th per-site seed is drawn after the six handling sites',
        // so pre-existing fault schedules (seeded runs in CI) are
        // unchanged by the FleetTask addition.
        let schedule = |arm_fleet: bool| -> Vec<bool> {
            let mut plan = FaultPlan::seeded(42).with_rate_everywhere(0.3);
            assert_eq!(plan.rate(FaultSite::FleetTask), 0.0, "ALL excludes it");
            if arm_fleet {
                plan = plan.with_rate(FaultSite::FleetTask, 1.0);
            }
            (0..60)
                .map(|i| plan.should_inject(FaultSite::ALL[i % FaultSite::ALL.len()]))
                .collect()
        };
        assert_eq!(schedule(false), schedule(true));
    }
}
