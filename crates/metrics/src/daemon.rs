//! The resident daemon's admission/queue/outcome ledger.
//!
//! `droidsimd` is a long-running service: unlike one fleet run's
//! [`FleetLedger`](crate::FleetLedger), its ledger accumulates over the
//! daemon's whole lifetime (and, via [`DaemonLedger::merge`], across a
//! restart). The counters answer the questions an operator asks an
//! overloaded service: how many jobs were accepted vs explicitly
//! rejected, how many the shedder dropped with an explicit verdict, how
//! deep the admission queue got, and how much the resume pass recovered
//! after a crash.
//!
//! Every rejected or shed job shows up here — the daemon's contract is
//! *zero silent drops*, so `accepted == completed + failed + cancelled +
//! shed + still-pending` must always reconcile, and the `stats` endpoint
//! renders this ledger so external tooling (the `bench_gate` family) can
//! assert exactly that.

use core::fmt;

/// Lifetime counters and gauges for one `droidsimd` process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaemonLedger {
    /// Jobs acknowledged: journaled, then answered `accepted`.
    pub accepted: u64,
    /// Submissions answered `rejected` (queue full, shutdown, bad spec,
    /// or an injected admission fault) — never silently dropped.
    pub rejected: u64,
    /// Of the rejected, how many were injected admission faults.
    pub rejected_injected: u64,
    /// Accepted jobs the shedder dropped under queue/memory pressure,
    /// each with an explicit terminal `shed` state a waiter observes.
    pub shed: u64,
    /// Accepted jobs re-enqueued by a restart's journal resume pass.
    pub resumed: u64,
    /// Jobs that ran to completion with a digest.
    pub completed: u64,
    /// Jobs whose execution failed (quarantined tasks, executor panic).
    pub failed: u64,
    /// Jobs cancelled by a client or a blown deadline.
    pub cancelled: u64,
    /// Deadline expiries the watchdog turned into cancellations.
    pub deadline_expired: u64,
    /// Reclaim passes the headroom probe triggered.
    pub reclaim_passes: u64,
    /// Current admission-queue depth (gauge, not a counter).
    pub queue_depth: u64,
    /// Deepest the admission queue ever got.
    pub queue_high_water: u64,
    /// Allocation events (`droidsim_kernel::alloc_track`) observed since
    /// daemon start. Wall-clock-class telemetry: excluded from the
    /// deterministic fingerprint, surfaced for `bench_gate`-style tools.
    pub alloc_events: u64,
    /// Times the daemon entered the `degraded` health state because the
    /// journal stopped accepting writes. Environment-dependent (a real
    /// or injected I/O fault), so fingerprint-excluded like
    /// `alloc_events`.
    pub degraded_entries: u64,
    /// Journal write/fsync failures observed (real or injected).
    /// Fingerprint-excluded.
    pub journal_faults: u64,
    /// Submissions answered `result=duplicate` because their
    /// `dedupe_key` matched an already-accepted job. Fingerprint-
    /// excluded: a retry schedule is timing, not admission order.
    pub dedupe_hits: u64,
    /// Connections refused by the concurrent-connection cap with
    /// `error=too-many-connections`. Fingerprint-excluded.
    pub conns_rejected: u64,
    /// Connections closed by the per-connection read timeout (slowloris
    /// defense). Fingerprint-excluded.
    pub slowloris_closed: u64,
}

impl DaemonLedger {
    /// Fresh, all-zero ledger.
    pub fn new() -> DaemonLedger {
        DaemonLedger::default()
    }

    /// Jobs that reached a terminal state.
    pub fn settled(&self) -> u64 {
        self.completed + self.failed + self.cancelled + self.shed
    }

    /// Accepted jobs not yet settled (queued or running).
    pub fn in_flight(&self) -> u64 {
        (self.accepted + self.resumed).saturating_sub(self.settled())
    }

    /// Records a queue-depth observation, maintaining the high-water
    /// mark.
    pub fn observe_queue_depth(&mut self, depth: u64) {
        self.queue_depth = depth;
        self.queue_high_water = self.queue_high_water.max(depth);
    }

    /// Folds another ledger into this one (e.g. a restarted daemon
    /// folding the pre-crash ledger recovered from its journal). Gauges
    /// keep `other`'s value only for the high-water mark.
    pub fn merge(&mut self, other: &DaemonLedger) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.rejected_injected += other.rejected_injected;
        self.shed += other.shed;
        self.resumed += other.resumed;
        self.completed += other.completed;
        self.failed += other.failed;
        self.cancelled += other.cancelled;
        self.deadline_expired += other.deadline_expired;
        self.reclaim_passes += other.reclaim_passes;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.alloc_events += other.alloc_events;
        self.degraded_entries += other.degraded_entries;
        self.journal_faults += other.journal_faults;
        self.dedupe_hits += other.dedupe_hits;
        self.conns_rejected += other.conns_rejected;
        self.slowloris_closed += other.slowloris_closed;
    }

    /// The admission-sequence-determined part of the ledger: everything
    /// except the live queue-depth gauge, the allocation counter, and
    /// the chaos-edge counters (degraded entries, journal faults,
    /// dedupe hits, connection rejections, slowloris closes) — those
    /// depend on fault timing and client behavior, like the fleet
    /// ledger's wall-clock fields. Identical across runs replaying the
    /// same admission sequence.
    pub fn deterministic_fingerprint(&self) -> String {
        format!(
            "daemon[accepted={} rejected={} rejected_injected={} shed={} resumed={} \
             completed={} failed={} cancelled={} deadline_expired={} reclaim_passes={}]",
            self.accepted,
            self.rejected,
            self.rejected_injected,
            self.shed,
            self.resumed,
            self.completed,
            self.failed,
            self.cancelled,
            self.deadline_expired,
            self.reclaim_passes,
        )
    }

    /// The `stats`-endpoint fields as `(key, value)` pairs, in a fixed
    /// order, ready for one kv journal line. Includes the telemetry the
    /// fingerprint excludes (queue gauges, allocation events).
    pub fn kv_fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("accepted", self.accepted.to_string()),
            ("rejected", self.rejected.to_string()),
            ("rejected_injected", self.rejected_injected.to_string()),
            ("shed", self.shed.to_string()),
            ("resumed", self.resumed.to_string()),
            ("completed", self.completed.to_string()),
            ("failed", self.failed.to_string()),
            ("cancelled", self.cancelled.to_string()),
            ("deadline_expired", self.deadline_expired.to_string()),
            ("reclaim_passes", self.reclaim_passes.to_string()),
            ("in_flight", self.in_flight().to_string()),
            ("queue_depth", self.queue_depth.to_string()),
            ("queue_high_water", self.queue_high_water.to_string()),
            ("alloc_events", self.alloc_events.to_string()),
            ("degraded_entries", self.degraded_entries.to_string()),
            ("journal_faults", self.journal_faults.to_string()),
            ("dedupe_hits", self.dedupe_hits.to_string()),
            ("conns_rejected", self.conns_rejected.to_string()),
            ("slowloris_closed", self.slowloris_closed.to_string()),
        ]
    }
}

impl fmt::Display for DaemonLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queue[depth={} high_water={}] allocs={}",
            self.deterministic_fingerprint(),
            self.queue_depth,
            self.queue_high_water,
            self.alloc_events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settled_and_in_flight_reconcile() {
        let mut l = DaemonLedger::new();
        l.accepted = 10;
        l.resumed = 2;
        l.completed = 6;
        l.failed = 1;
        l.cancelled = 1;
        l.shed = 2;
        assert_eq!(l.settled(), 10);
        assert_eq!(l.in_flight(), 2);
    }

    #[test]
    fn queue_depth_tracks_high_water() {
        let mut l = DaemonLedger::new();
        l.observe_queue_depth(3);
        l.observe_queue_depth(7);
        l.observe_queue_depth(2);
        assert_eq!(l.queue_depth, 2);
        assert_eq!(l.queue_high_water, 7);
        let line = l.to_string();
        assert!(line.contains("high_water=7"), "got {line}");
    }

    #[test]
    fn fingerprint_excludes_gauges_and_allocs() {
        let mut a = DaemonLedger::new();
        let mut b = DaemonLedger::new();
        a.accepted = 4;
        b.accepted = 4;
        b.observe_queue_depth(9);
        b.alloc_events = 1234;
        b.degraded_entries = 2;
        b.journal_faults = 5;
        b.dedupe_hits = 3;
        b.conns_rejected = 8;
        b.slowloris_closed = 1;
        assert_eq!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
        b.shed += 1;
        assert_ne!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
    }

    #[test]
    fn merge_adds_counters_and_maxes_high_water() {
        let mut a = DaemonLedger {
            accepted: 3,
            completed: 2,
            queue_high_water: 5,
            alloc_events: 10,
            ..DaemonLedger::new()
        };
        let b = DaemonLedger {
            accepted: 4,
            rejected: 2,
            shed: 1,
            resumed: 3,
            queue_high_water: 2,
            alloc_events: 5,
            degraded_entries: 1,
            journal_faults: 4,
            dedupe_hits: 2,
            conns_rejected: 6,
            slowloris_closed: 3,
            ..DaemonLedger::new()
        };
        a.merge(&b);
        assert_eq!(a.accepted, 7);
        assert_eq!(a.rejected, 2);
        assert_eq!(a.resumed, 3);
        assert_eq!(a.queue_high_water, 5);
        assert_eq!(a.alloc_events, 15);
        assert_eq!(a.degraded_entries, 1);
        assert_eq!(a.journal_faults, 4);
        assert_eq!(a.dedupe_hits, 2);
        assert_eq!(a.conns_rejected, 6);
        assert_eq!(a.slowloris_closed, 3);
    }

    #[test]
    fn kv_fields_cover_the_stats_contract() {
        let mut l = DaemonLedger::new();
        l.observe_queue_depth(4);
        l.alloc_events = 99;
        let kv = l.kv_fields();
        for key in [
            "accepted",
            "queue_high_water",
            "alloc_events",
            "shed",
            "degraded_entries",
            "journal_faults",
            "dedupe_hits",
            "conns_rejected",
            "slowloris_closed",
        ] {
            assert!(kv.iter().any(|(k, _)| *k == key), "missing {key}");
        }
        let find = |key: &str| kv.iter().find(|(k, _)| *k == key).unwrap().1.clone();
        assert_eq!(find("queue_high_water"), "4");
        assert_eq!(find("alloc_events"), "99");
    }
}
