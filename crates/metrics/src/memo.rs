//! The warm-path memoization ledger.
//!
//! [`kernel::memo`](droidsim_kernel::memo) keeps three content-addressed
//! caches hot across a whole fleet run (and a whole daemon lifetime):
//! resolved resource views, inflated templates, and mapping plans. This
//! ledger is the operator-facing view of those caches — per-cache hits,
//! misses, evictions, resident entries and approximate resident bytes —
//! captured with [`MemoLedger::capture`] from the process-wide registry.
//!
//! Hit/miss counts depend on job scheduling (which worker saw a shape
//! first decides who pays the miss), so like wall-clock histograms and
//! `alloc_events` this ledger is **fingerprint-excluded telemetry**: it
//! never participates in any deterministic fingerprint, and the memo ≡
//! cold gates assert exactly that the *digests* stay identical while
//! these counters swing.

use core::fmt;
use droidsim_kernel::memo::{self, MemoSnapshot};

/// Per-cache counters for one memo cache, as captured at a point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoCacheStats {
    /// Cache name (`"resolve"`, `"inflate"`, `"mapping"`).
    pub name: String,
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that fell through to a cold derivation (including the
    /// first, tombstone-only sighting of a key).
    pub misses: u64,
    /// Entries dropped by capacity pressure or a reclaim pass.
    pub evictions: u64,
    /// Resident, current-generation entries.
    pub entries: u64,
    /// Approximate resident bytes of cached values.
    pub bytes: u64,
}

impl MemoCacheStats {
    fn from_snapshot(s: &MemoSnapshot) -> MemoCacheStats {
        MemoCacheStats {
            name: s.name.to_owned(),
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            entries: s.entries,
            bytes: s.bytes,
        }
    }

    /// Hit fraction in `[0, 1]`; zero for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Point-in-time snapshot of every registered memo cache, name-sorted.
///
/// Scheduling-dependent telemetry — never enters a deterministic
/// fingerprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoLedger {
    /// One entry per registered cache, sorted by name.
    pub caches: Vec<MemoCacheStats>,
}

impl MemoLedger {
    /// Captures the current counters of every cache registered with
    /// `droidsim_kernel::memo`. Caches register lazily on first use, so
    /// an early capture may see fewer caches than a later one.
    pub fn capture() -> MemoLedger {
        MemoLedger {
            caches: memo::snapshot_all()
                .iter()
                .map(MemoCacheStats::from_snapshot)
                .collect(),
        }
    }

    /// Totals across all caches: (hits, misses, evictions, bytes).
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        self.caches.iter().fold((0, 0, 0, 0), |acc, c| {
            (
                acc.0 + c.hits,
                acc.1 + c.misses,
                acc.2 + c.evictions,
                acc.3 + c.bytes,
            )
        })
    }

    /// The `stats`-endpoint fields as `(key, value)` pairs: aggregate
    /// totals first, then one packed field per cache. Keys are `'static`
    /// to match the daemon's kv-line contract, so per-cache fields use
    /// the fixed names of the three warm-path caches; an unknown cache
    /// folds into the totals only.
    pub fn kv_fields(&self) -> Vec<(&'static str, String)> {
        let (hits, misses, evictions, bytes) = self.totals();
        let mut out = vec![
            ("memo_hits", hits.to_string()),
            ("memo_misses", misses.to_string()),
            ("memo_evictions", evictions.to_string()),
            ("memo_bytes", bytes.to_string()),
        ];
        for cache in &self.caches {
            let key = match cache.name.as_str() {
                "resolve" => "memo_resolve",
                "inflate" => "memo_inflate",
                "mapping" => "memo_mapping",
                _ => continue,
            };
            out.push((
                key,
                format!(
                    "{}/{}/{}/{}",
                    cache.hits, cache.misses, cache.evictions, cache.entries
                ),
            ));
        }
        out
    }
}

impl fmt::Display for MemoLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.caches.is_empty() {
            return write!(f, "memo[no caches registered]");
        }
        write!(f, "memo[")?;
        for (i, c) in self.caches.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(
                f,
                "{}: hits={} misses={} evictions={} entries={} bytes={}",
                c.name, c.hits, c.misses, c.evictions, c.entries, c.bytes
            )?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemoLedger {
        MemoLedger {
            caches: vec![
                MemoCacheStats {
                    name: "inflate".into(),
                    hits: 30,
                    misses: 10,
                    evictions: 2,
                    entries: 8,
                    bytes: 4096,
                },
                MemoCacheStats {
                    name: "mapping".into(),
                    hits: 5,
                    misses: 5,
                    evictions: 0,
                    entries: 5,
                    bytes: 640,
                },
                MemoCacheStats {
                    name: "resolve".into(),
                    hits: 65,
                    misses: 15,
                    evictions: 1,
                    entries: 14,
                    bytes: 2048,
                },
            ],
        }
    }

    #[test]
    fn totals_sum_across_caches() {
        let l = sample();
        assert_eq!(l.totals(), (100, 30, 3, 6784));
    }

    #[test]
    fn hit_rate_handles_untouched_cache() {
        let untouched = MemoCacheStats::default();
        assert_eq!(untouched.hit_rate(), 0.0);
        let l = sample();
        let inflate = &l.caches[0];
        assert!((inflate.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn kv_fields_pack_totals_then_per_cache() {
        let l = sample();
        let kv = l.kv_fields();
        let find = |key: &str| kv.iter().find(|(k, _)| *k == key).unwrap().1.clone();
        assert_eq!(find("memo_hits"), "100");
        assert_eq!(find("memo_misses"), "30");
        assert_eq!(find("memo_inflate"), "30/10/2/8");
        assert_eq!(find("memo_resolve"), "65/15/1/14");
        assert_eq!(find("memo_mapping"), "5/5/0/5");
    }

    #[test]
    fn unknown_cache_folds_into_totals_only() {
        let l = MemoLedger {
            caches: vec![MemoCacheStats {
                name: "mystery".into(),
                hits: 7,
                misses: 3,
                ..MemoCacheStats::default()
            }],
        };
        let kv = l.kv_fields();
        assert!(kv.iter().any(|(k, v)| *k == "memo_hits" && v == "7"));
        assert!(!kv.iter().any(|(k, _)| k.starts_with("memo_mystery")));
    }

    #[test]
    fn capture_reflects_registered_caches_sorted() {
        // No caches may be registered yet in this test process; either
        // way capture() must not panic and must come back name-sorted.
        let l = MemoLedger::capture();
        let names: Vec<&str> = l.caches.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let _ = l.to_string();
    }

    #[test]
    fn display_mentions_every_cache() {
        let line = sample().to_string();
        for name in ["resolve", "inflate", "mapping"] {
            assert!(line.contains(name), "missing {name} in {line}");
        }
    }
}
