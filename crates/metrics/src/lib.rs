//! Calibrated cost/memory/CPU/energy models and statistics.
//!
//! The paper measures wall-clock latencies, PSS memory, CPU utilisation
//! and board power on real RK3399 hardware. The simulator replaces the
//! hardware with *models* whose structure mirrors the mechanisms that
//! produce the paper's shapes:
//!
//! * [`CostModel`] — per-step latencies (IPC, destroy, create, inflate per
//!   view, restore, resume, mapping build, flip swap, per-view lazy
//!   migration). Composite costs (a full Android-10 relaunch, an RCHDroid
//!   first change, a coin-flip change) are *sums of the steps the protocol
//!   actually executes*, so e.g. the flip path is O(1) in view count while
//!   the init path is O(n) — which is exactly Fig. 10's shape.
//! * [`MemoryModel`] — PSS = app base + Σ alive activity heaps; RCHDroid's
//!   overhead is literally the shadow instance kept alive.
//! * [`trace`] — CPU-utilisation and memory time series (Fig. 9).
//! * [`EnergyModel`] — board power; handling bursts are far below the
//!   power meter's resolution, reproducing the paper's "unchanged 4.03 W".
//! * [`stats`] — mean/std/min/max summaries used by every harness.
//!
//! Calibration targets (§6 of DESIGN.md) are asserted by this crate's
//! tests: Android-10 ≈ 141.8 ms for the 4-view benchmark app, RCHDroid
//! flip ≈ 89.2 ms flat, RCHDroid-init 154.6 → 180.2 ms over 1 → 16 views,
//! async migration 8.6 → 20.2 ms.

pub mod analysis;
pub mod cost;
pub mod daemon;
pub mod energy;
pub mod faults;
pub mod fleet;
pub mod memo;
pub mod memory;
pub mod migration;
pub mod stats;
pub mod trace;

pub use analysis::AnalysisLedger;
pub use cost::{AppCostProfile, CostModel, CostParams};
pub use daemon::DaemonLedger;
pub use energy::EnergyModel;
pub use faults::FaultMetrics;
pub use fleet::{DeviceMetrics, FleetLedger};
pub use memo::{MemoCacheStats, MemoLedger};
pub use memory::{MemoryModel, MemorySnapshot};
pub use migration::MigrationMetrics;
pub use stats::{Histogram, Summary};
pub use trace::{TracePoint, Tracer};
