//! Small statistics helpers used by every experiment harness.

use core::fmt;

/// Summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; empty input yields the all-zero summary.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Coefficient of variation (σ/µ); 0 for a zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Relative saving of `self` (the faster system) versus `baseline`:
    /// `(baseline.mean - self.mean) / baseline.mean`.
    pub fn saving_vs(&self, baseline: &Summary) -> f64 {
        if baseline.mean == 0.0 {
            0.0
        } else {
            (baseline.mean - self.mean) / baseline.mean
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} max={:.2}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// The mean of a sample (0 when empty).
pub fn mean(samples: &[f64]) -> f64 {
    Summary::of(samples).mean
}

/// Linear-interpolation percentile (`q` in `[0, 1]`).
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// An accumulating sample distribution.
///
/// Samples are kept exactly (the simulator's batch counts are small, so
/// there is no need for bucketing); summaries and percentiles are computed
/// on demand. Used by the migration engine to track per-batch sizes and
/// flush latencies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Adds one observation. Non-finite values are rejected so that
    /// percentiles stay well-defined.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "histogram sample must be finite");
        self.samples.push(value);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        mean(&self.samples)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Linear-interpolation percentile (`q` in `[0, 1]`; 0 when empty).
    pub fn percentile(&self, q: f64) -> f64 {
        percentile(&self.samples, q)
    }

    /// Full summary statistics over the recorded observations.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.samples)
    }

    /// Merges another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} p50={:.2} p95={:.2} max={:.2}",
            self.count(),
            self.mean(),
            self.percentile(0.5),
            self.percentile(0.95),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_sample_is_zeroes() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn saving_vs_baseline() {
        let fast = Summary::of(&[75.0, 75.0]);
        let slow = Summary::of(&[100.0, 100.0]);
        assert!((fast.saving_vs(&slow) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cv_of_constant_sample_is_zero() {
        let s = Summary::of(&[5.0; 10]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    #[should_panic(expected = "q must be in")]
    fn percentile_rejects_bad_q() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn histogram_accumulates_and_summarises() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert_eq!(h.max(), 4.0);
        assert!((h.percentile(0.5) - 2.5).abs() < 1e-12);
        assert_eq!(h.summary().min, 1.0);
    }

    #[test]
    fn histogram_merge_combines_samples() {
        let mut a = Histogram::new();
        a.record(1.0);
        let mut b = Histogram::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn histogram_rejects_nan() {
        Histogram::new().record(f64::NAN);
    }
}
