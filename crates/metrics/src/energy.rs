//! The board energy model.
//!
//! §5.6 of the paper: the power meter reads 4.03 W for all 27 apps on
//! both systems — the shadow instance is inactive (no rendering, no CPU),
//! so it draws nothing the meter can resolve. The model reproduces that:
//! board power = idle base + display + CPU-activity term, where the
//! activity term integrates busy time; millisecond-scale handling bursts
//! vanish at the meter's sampling resolution.

use droidsim_kernel::SimDuration;
use serde::{Deserialize, Serialize};

/// Board-level power/energy model.
///
/// # Examples
///
/// ```
/// use droidsim_kernel::SimDuration;
/// use droidsim_metrics::EnergyModel;
///
/// let model = EnergyModel::rk3399();
/// // A 150 ms handling burst over a 10 s observation window:
/// let watts = model.mean_power(SimDuration::from_secs(10), SimDuration::from_millis(150));
/// assert!((watts - 4.03).abs() < 0.05, "invisible at meter resolution");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Idle board power (SoC + RAM + peripherals), watts.
    pub idle_watts: f64,
    /// Display panel power, watts.
    pub display_watts: f64,
    /// Additional power while a core is fully busy, watts.
    pub busy_watts: f64,
    /// The meter's display resolution, watts.
    pub meter_resolution_watts: f64,
}

impl EnergyModel {
    /// Constants for the ROC-RK3399-PC-PLUS evaluation board: idle +
    /// display sums to the paper's 4.03 W reading.
    pub fn rk3399() -> Self {
        EnergyModel {
            idle_watts: 2.73,
            display_watts: 1.30,
            busy_watts: 2.1,
            meter_resolution_watts: 0.01,
        }
    }

    /// Mean power over an observation `window` during which the CPU was
    /// busy for `busy` time in total.
    pub fn mean_power(&self, window: SimDuration, busy: SimDuration) -> f64 {
        let base = self.idle_watts + self.display_watts;
        if window.is_zero() {
            return base;
        }
        let duty = (busy.as_micros() as f64 / window.as_micros() as f64).min(1.0);
        base + self.busy_watts * duty
    }

    /// The value a human reads off the meter (quantised to its
    /// resolution).
    pub fn meter_reading(&self, window: SimDuration, busy: SimDuration) -> f64 {
        let p = self.mean_power(window, busy);
        (p / self.meter_resolution_watts).round() * self.meter_resolution_watts
    }

    /// Energy in joules consumed over `window` with `busy` total busy
    /// time.
    pub fn energy_joules(&self, window: SimDuration, busy: SimDuration) -> f64 {
        self.mean_power(window, busy) * window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_reading_is_4_03_watts() {
        let m = EnergyModel::rk3399();
        let r = m.meter_reading(SimDuration::from_secs(60), SimDuration::ZERO);
        assert!((r - 4.03).abs() < 1e-9);
    }

    #[test]
    fn handling_bursts_do_not_move_the_meter() {
        let m = EnergyModel::rk3399();
        // Six 150 ms bursts per minute — the Fig. 11 workload.
        let busy = SimDuration::from_millis(900);
        let r = m.meter_reading(SimDuration::from_secs(60), busy);
        assert!((r - 4.06).abs() < 0.03, "≤ a few hundredths of a watt: {r}");
    }

    #[test]
    fn sustained_load_does_move_the_meter() {
        let m = EnergyModel::rk3399();
        let r = m.mean_power(SimDuration::from_secs(10), SimDuration::from_secs(10));
        assert!(r > 6.0, "a pegged core is visible: {r}");
    }

    #[test]
    fn energy_integrates_power() {
        let m = EnergyModel::rk3399();
        let j = m.energy_joules(SimDuration::from_secs(10), SimDuration::ZERO);
        assert!((j - 40.3).abs() < 0.01);
    }
}
