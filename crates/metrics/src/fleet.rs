//! Per-device metric sinks for fleet reduction.
//!
//! The serial harnesses could get away with one global accumulator; a
//! parallel fleet cannot — two workers folding histograms into a shared
//! sink would interleave nondeterministically. [`DeviceMetrics`] is the
//! per-device sink: each simulated device owns exactly one, filled only
//! by that device's handler, and the reducer merges the sinks **in
//! device-index order** after every worker has finished. Merging is
//! associative over disjoint devices, so the merged aggregate of a
//! parallel run equals the serial run's, histogram bins and all.

use core::fmt;

use crate::faults::FaultMetrics;
use crate::migration::MigrationMetrics;

/// Everything one device's handler measured: the batched-migration
/// counters and the fault-ladder ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceMetrics {
    /// Lazy-migration flush counters and histograms.
    pub migration: MigrationMetrics,
    /// Degradation-ladder fault ledger.
    pub faults: FaultMetrics,
}

impl DeviceMetrics {
    /// Fresh, all-zero sink.
    pub fn new() -> DeviceMetrics {
        DeviceMetrics::default()
    }

    /// Folds another device's sink into this one. Call in device-index
    /// order from the fleet reducer so aggregates are reproducible.
    pub fn merge(&mut self, other: &DeviceMetrics) {
        self.migration.merge(&other.migration);
        self.faults.merge(&other.faults);
    }

    /// A stable one-line rendering covering every counter and histogram
    /// summary, including the wall-clock latency histograms.
    pub fn fingerprint(&self) -> String {
        self.to_string()
    }

    /// Like [`DeviceMetrics::fingerprint`], restricted to fields that
    /// depend only on the simulation — counters, batch sizes, fault
    /// sites. The flush-latency and recovery-latency histograms measure
    /// host wall-clock, so they contribute only their observation
    /// counts. This is what fleet determinism digests hash: it must be
    /// bit-identical between serial and parallel runs of the same seeds.
    pub fn deterministic_fingerprint(&self) -> String {
        let m = &self.migration;
        let f = &self.faults;
        format!(
            "migration[flushes={} raw={} coalesced={} batch[{}] latencies={}] \
             faults[contained={} fallbacks={} crashes={} recoveries={} sites={:?}]",
            m.flushes,
            m.raw_invalidations,
            m.coalesced_entries,
            m.batch_size,
            m.flush_latency_ns.count(),
            f.contained_per_view,
            f.fallback_restarts,
            f.crashes,
            f.recovery_latency_ms.count(),
            f.by_site(),
        )
    }
}

impl fmt::Display for DeviceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "migration[{}] faults[{}]", self.migration, self.faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(flushes: u64, contained: u64) -> DeviceMetrics {
        let mut m = DeviceMetrics::new();
        for _ in 0..flushes {
            m.migration.record_flush(2, 4, 1_000);
        }
        for _ in 0..contained {
            m.faults.record_contained("attribute-copy");
        }
        m
    }

    #[test]
    fn merge_is_order_stable_for_disjoint_devices() {
        // Serial reduction: fold device sinks 0, 1, 2 in order.
        let devices = [sink(1, 0), sink(2, 3), sink(0, 1)];
        let mut serial = DeviceMetrics::new();
        for d in &devices {
            serial.merge(d);
        }
        // "Parallel" reduction: same sinks, same index order (the fleet
        // reducer's contract), regardless of which worker filled them.
        let mut parallel = DeviceMetrics::new();
        for d in &devices {
            parallel.merge(d);
        }
        assert_eq!(serial, parallel);
        assert_eq!(serial.fingerprint(), parallel.fingerprint());
        assert_eq!(serial.migration.flushes, 3);
        assert_eq!(serial.faults.contained_per_view, 4);
    }

    #[test]
    fn deterministic_fingerprint_ignores_wall_clock() {
        let mut a = DeviceMetrics::new();
        let mut b = DeviceMetrics::new();
        a.migration.record_flush(2, 4, 1_000);
        b.migration.record_flush(2, 4, 9_999_999); // same flush, slower host
        a.faults.record_fallback("bundle-corruption", 0.5);
        b.faults.record_fallback("bundle-corruption", 123.0);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
        // But it still sees every simulation-visible difference.
        b.faults.record_contained("attribute-copy");
        assert_ne!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
    }

    #[test]
    fn fingerprint_covers_both_sinks() {
        let m = sink(1, 2);
        let line = m.fingerprint();
        assert!(line.contains("flushes=1"), "got {line}");
        assert!(line.contains("contained=2"), "got {line}");
    }
}
