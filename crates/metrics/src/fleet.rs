//! Per-device metric sinks for fleet reduction.
//!
//! The serial harnesses could get away with one global accumulator; a
//! parallel fleet cannot — two workers folding histograms into a shared
//! sink would interleave nondeterministically. [`DeviceMetrics`] is the
//! per-device sink: each simulated device owns exactly one, filled only
//! by that device's handler, and the reducer merges the sinks **in
//! device-index order** after every worker has finished. Merging is
//! associative over disjoint devices, so the merged aggregate of a
//! parallel run equals the serial run's, histogram bins and all.

use core::fmt;

use crate::faults::FaultMetrics;
use crate::migration::MigrationMetrics;
use crate::stats::Histogram;

/// Everything one device's handler measured: the batched-migration
/// counters and the fault-ladder ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceMetrics {
    /// Lazy-migration flush counters and histograms.
    pub migration: MigrationMetrics,
    /// Degradation-ladder fault ledger.
    pub faults: FaultMetrics,
}

impl DeviceMetrics {
    /// Fresh, all-zero sink.
    pub fn new() -> DeviceMetrics {
        DeviceMetrics::default()
    }

    /// Folds another device's sink into this one. Call in device-index
    /// order from the fleet reducer so aggregates are reproducible.
    pub fn merge(&mut self, other: &DeviceMetrics) {
        self.migration.merge(&other.migration);
        self.faults.merge(&other.faults);
    }

    /// A stable one-line rendering covering every counter and histogram
    /// summary, including the wall-clock latency histograms.
    pub fn fingerprint(&self) -> String {
        self.to_string()
    }

    /// Like [`DeviceMetrics::fingerprint`], restricted to fields that
    /// depend only on the simulation — counters, batch sizes, fault
    /// sites. The flush-latency and recovery-latency histograms measure
    /// host wall-clock, so they contribute only their observation
    /// counts. This is what fleet determinism digests hash: it must be
    /// bit-identical between serial and parallel runs of the same seeds.
    pub fn deterministic_fingerprint(&self) -> String {
        let m = &self.migration;
        let f = &self.faults;
        format!(
            "migration[flushes={} raw={} coalesced={} batch[{}] latencies={}] \
             faults[contained={} fallbacks={} crashes={} recoveries={} sites={:?}]",
            m.flushes,
            m.raw_invalidations,
            m.coalesced_entries,
            m.batch_size,
            m.flush_latency_ns.count(),
            f.contained_per_view,
            f.fallback_restarts,
            f.crashes,
            f.recovery_latency_ms.count(),
            f.by_site(),
        )
    }
}

impl fmt::Display for DeviceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "migration[{}] faults[{}]", self.migration, self.faults)
    }
}

/// The fleet driver's outcome ledger: how every task of a run ended,
/// how often tasks were retried, and how long attempts took.
///
/// One ledger describes one `run_fleet_supervised` invocation; the
/// driver fills it from the per-slot outcomes **in task-index order**
/// after every worker has finished, so the counters are reproducible
/// for any worker count. The attempt-latency histogram measures host
/// wall-clock and therefore follows the same fingerprint rule as the
/// other latency histograms: it is excluded from
/// [`FleetLedger::deterministic_fingerprint`] entirely (not even its
/// count — a watchdog retry that a faster host avoids would change it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetLedger {
    /// Tasks that produced a result (possibly after retries).
    pub ok: u64,
    /// Tasks quarantined after their final attempt panicked.
    pub panicked: u64,
    /// Tasks quarantined after their final attempt overran the watchdog
    /// budget.
    pub timed_out: u64,
    /// Tasks skipped because a resume journal already had their result.
    pub skipped: u64,
    /// Tasks never attempted (or abandoned between attempts) because
    /// the run's cooperative cancel token was set.
    pub cancelled: u64,
    /// Extra attempts beyond each task's first (retries actually run).
    pub retries: u64,
    /// Attempts that ended in an (injected or organic) panic.
    pub panicked_attempts: u64,
    /// Attempts the stall watchdog timed out.
    pub timed_out_attempts: u64,
    /// Injected `fleet-task` faults that actually struck.
    pub injected_faults: u64,
    /// Allocation events (see `droidsim_kernel::alloc_track`) observed
    /// across the whole run — the allocations-per-sim diet metric.
    /// Scratch-buffer reuse depends on scheduling, so this follows the
    /// wall-clock rule: excluded from the deterministic fingerprint.
    pub alloc_events: u64,
    /// Host wall-clock latency of every finished attempt (ms).
    pub attempt_latency_ms: Histogram,
}

impl FleetLedger {
    /// Fresh, all-zero ledger.
    pub fn new() -> FleetLedger {
        FleetLedger::default()
    }

    /// Total tasks the ledger accounts for.
    pub fn tasks(&self) -> u64 {
        self.ok + self.panicked + self.timed_out + self.skipped + self.cancelled
    }

    /// Tasks that exhausted their retries (the quarantine list length).
    pub fn quarantined(&self) -> u64 {
        self.panicked + self.timed_out
    }

    /// Folds another run's ledger into this one (e.g. a resumed run's
    /// ledger onto the interrupted run's).
    pub fn merge(&mut self, other: &FleetLedger) {
        self.ok += other.ok;
        self.panicked += other.panicked;
        self.timed_out += other.timed_out;
        self.skipped += other.skipped;
        self.cancelled += other.cancelled;
        self.retries += other.retries;
        self.panicked_attempts += other.panicked_attempts;
        self.timed_out_attempts += other.timed_out_attempts;
        self.injected_faults += other.injected_faults;
        self.alloc_events += other.alloc_events;
        self.attempt_latency_ms.merge(&other.attempt_latency_ms);
    }

    /// Allocation events per accounted task, rounded down. Zero when the
    /// ledger has no tasks.
    pub fn allocs_per_task(&self) -> u64 {
        self.alloc_events.checked_div(self.tasks()).unwrap_or(0)
    }

    /// The simulation-determined part of the ledger — everything except
    /// the wall-clock attempt-latency histogram. Identical between
    /// serial and parallel runs of the same seeds as long as no
    /// *organic* (host-speed-dependent) timeout fired.
    pub fn deterministic_fingerprint(&self) -> String {
        format!(
            "fleet[ok={} panicked={} timed_out={} skipped={} cancelled={} retries={} \
             panic_attempts={} timeout_attempts={} injected={}]",
            self.ok,
            self.panicked,
            self.timed_out,
            self.skipped,
            self.cancelled,
            self.retries,
            self.panicked_attempts,
            self.timed_out_attempts,
            self.injected_faults,
        )
    }
}

impl fmt::Display for FleetLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} allocs={} latency[{}]",
            self.deterministic_fingerprint(),
            self.alloc_events,
            self.attempt_latency_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(flushes: u64, contained: u64) -> DeviceMetrics {
        let mut m = DeviceMetrics::new();
        for _ in 0..flushes {
            m.migration.record_flush(2, 4, 1_000);
        }
        for _ in 0..contained {
            m.faults.record_contained("attribute-copy");
        }
        m
    }

    #[test]
    fn merge_is_order_stable_for_disjoint_devices() {
        // Serial reduction: fold device sinks 0, 1, 2 in order.
        let devices = [sink(1, 0), sink(2, 3), sink(0, 1)];
        let mut serial = DeviceMetrics::new();
        for d in &devices {
            serial.merge(d);
        }
        // "Parallel" reduction: same sinks, same index order (the fleet
        // reducer's contract), regardless of which worker filled them.
        let mut parallel = DeviceMetrics::new();
        for d in &devices {
            parallel.merge(d);
        }
        assert_eq!(serial, parallel);
        assert_eq!(serial.fingerprint(), parallel.fingerprint());
        assert_eq!(serial.migration.flushes, 3);
        assert_eq!(serial.faults.contained_per_view, 4);
    }

    #[test]
    fn deterministic_fingerprint_ignores_wall_clock() {
        let mut a = DeviceMetrics::new();
        let mut b = DeviceMetrics::new();
        a.migration.record_flush(2, 4, 1_000);
        b.migration.record_flush(2, 4, 9_999_999); // same flush, slower host
        a.faults.record_fallback("bundle-corruption", 0.5);
        b.faults.record_fallback("bundle-corruption", 123.0);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
        // But it still sees every simulation-visible difference.
        b.faults.record_contained("attribute-copy");
        assert_ne!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
    }

    #[test]
    fn fingerprint_covers_both_sinks() {
        let m = sink(1, 2);
        let line = m.fingerprint();
        assert!(line.contains("flushes=1"), "got {line}");
        assert!(line.contains("contained=2"), "got {line}");
    }

    #[test]
    fn ledger_fingerprint_ignores_attempt_latency() {
        let mut a = FleetLedger::new();
        let mut b = FleetLedger::new();
        a.ok = 7;
        a.retries = 2;
        a.attempt_latency_ms.record(1.0);
        b.ok = 7;
        b.retries = 2;
        b.attempt_latency_ms.record(900.0);
        b.attempt_latency_ms.record(900.0); // even the count is excluded
        b.alloc_events = 42; // scheduling-dependent, also excluded
        assert_eq!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
        b.panicked += 1;
        assert_ne!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
    }

    #[test]
    fn ledger_merge_adds_every_counter() {
        let mut a = FleetLedger {
            ok: 3,
            skipped: 2,
            retries: 1,
            ..FleetLedger::new()
        };
        let b = FleetLedger {
            ok: 4,
            panicked: 1,
            timed_out: 2,
            cancelled: 1,
            panicked_attempts: 3,
            timed_out_attempts: 2,
            injected_faults: 5,
            alloc_events: 24,
            ..FleetLedger::new()
        };
        a.merge(&b);
        assert_eq!(a.cancelled, 1);
        assert_eq!(a.tasks(), 13);
        assert_eq!(a.quarantined(), 3);
        assert_eq!(a.retries, 1);
        assert_eq!(a.injected_faults, 5);
        assert_eq!(a.alloc_events, 24);
        assert_eq!(a.allocs_per_task(), 1, "24 allocs over 13 tasks");
        let line = a.to_string();
        assert!(line.contains("ok=7"), "got {line}");
        assert!(line.contains("allocs=24"), "got {line}");
        assert!(line.contains("latency["), "got {line}");
    }
}
