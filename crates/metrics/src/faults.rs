//! Observability for the supervised migration subsystem.
//!
//! Robustness is only real if it is measurable: every fault the handler
//! sees — injected by a fault plan or organic — is attributed to a site
//! (keyed by the site's stable name, so this crate needs no dependency
//! on the fault-injection crate) and to the **degradation-ladder rung**
//! that absorbed it:
//!
//! 1. *contained per-view* — the faulty view was skipped and marked
//!    stale; the rest of the batch migrated,
//! 2. *fallback restart* — the change abandoned shadow/sunny handling
//!    and replayed the stock save → destroy → recreate path,
//! 3. *process crash* — nothing could absorb it; the process died (the
//!    same outcome stock Android has for every lifecycle fault).
//!
//! Fallback recoveries also record a wall-clock latency histogram, so
//! the cost of degrading lands in the perf trajectory next to the happy
//! path's flush latencies.

use core::fmt;
use std::collections::BTreeMap;

use crate::stats::Histogram;

/// Lifetime fault counters for one handler.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultMetrics {
    by_site: BTreeMap<String, u64>,
    /// Rung 1: faults contained by skipping a single view.
    pub contained_per_view: u64,
    /// Rung 2: changes degraded to the stock restart path.
    pub fallback_restarts: u64,
    /// Rung 3: faults that killed the process.
    pub crashes: u64,
    /// Wall-clock latency of each fallback recovery, in milliseconds.
    pub recovery_latency_ms: Histogram,
}

impl FaultMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> FaultMetrics {
        FaultMetrics::default()
    }

    /// Records a rung-1 containment at `site`.
    pub fn record_contained(&mut self, site: &str) {
        *self.by_site.entry(site.to_owned()).or_insert(0) += 1;
        self.contained_per_view += 1;
    }

    /// Records a rung-2 fallback restart at `site`, with the wall-clock
    /// time the recovery took.
    pub fn record_fallback(&mut self, site: &str, recovery_ms: f64) {
        *self.by_site.entry(site.to_owned()).or_insert(0) += 1;
        self.fallback_restarts += 1;
        self.recovery_latency_ms.record(recovery_ms);
    }

    /// Records a rung-3 process crash at `site`.
    pub fn record_crash(&mut self, site: &str) {
        *self.by_site.entry(site.to_owned()).or_insert(0) += 1;
        self.crashes += 1;
    }

    /// Faults recorded at `site` (any rung).
    pub fn site_count(&self, site: &str) -> u64 {
        self.by_site.get(site).copied().unwrap_or(0)
    }

    /// Fault counts by site name.
    pub fn by_site(&self) -> &BTreeMap<String, u64> {
        &self.by_site
    }

    /// Total faults recorded across every site and rung.
    pub fn total_faults(&self) -> u64 {
        self.contained_per_view + self.fallback_restarts + self.crashes
    }

    /// Folds another handler's metrics into this one.
    pub fn merge(&mut self, other: &FaultMetrics) {
        for (site, count) in &other.by_site {
            *self.by_site.entry(site.clone()).or_insert(0) += count;
        }
        self.contained_per_view += other.contained_per_view;
        self.fallback_restarts += other.fallback_restarts;
        self.crashes += other.crashes;
        self.recovery_latency_ms.merge(&other.recovery_latency_ms);
    }
}

impl fmt::Display for FaultMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults={} contained={} fallbacks={} crashes={} recovery_ms[{}]",
            self.total_faults(),
            self.contained_per_view,
            self.fallback_restarts,
            self.crashes,
            self.recovery_latency_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rungs_accumulate_independently() {
        let mut m = FaultMetrics::new();
        m.record_contained("attribute-copy");
        m.record_contained("attribute-copy");
        m.record_fallback("flush-deadline-overrun", 1.25);
        m.record_crash("app-logic");
        assert_eq!(m.contained_per_view, 2);
        assert_eq!(m.fallback_restarts, 1);
        assert_eq!(m.crashes, 1);
        assert_eq!(m.total_faults(), 4);
        assert_eq!(m.site_count("attribute-copy"), 2);
        assert_eq!(m.site_count("flush-deadline-overrun"), 1);
        assert_eq!(m.site_count("unknown"), 0);
        assert_eq!(m.recovery_latency_ms.count(), 1);
    }

    #[test]
    fn merge_aggregates_handlers() {
        let mut a = FaultMetrics::new();
        a.record_contained("essence-mapping-miss");
        let mut b = FaultMetrics::new();
        b.record_contained("essence-mapping-miss");
        b.record_fallback("bundle-corruption", 3.0);
        a.merge(&b);
        assert_eq!(a.site_count("essence-mapping-miss"), 2);
        assert_eq!(a.fallback_restarts, 1);
        assert_eq!(a.total_faults(), 3);
    }

    #[test]
    fn display_summarises_the_ladder() {
        let mut m = FaultMetrics::new();
        m.record_fallback("allocation-failure", 2.0);
        let line = m.to_string();
        assert!(line.contains("fallbacks=1"), "got {line}");
    }
}
