//! The latency cost model.
//!
//! Every constant is in milliseconds of virtual time and was calibrated
//! once against the paper's reported numbers (see the calibration tests at
//! the bottom of this file). Composite costs are sums of exactly the steps
//! each protocol executes:
//!
//! | Protocol | Steps |
//! |---|---|
//! | Android-10 relaunch | 2×IPC + destroy + create + inflate(n) + restore(n) + fresh resume(n) |
//! | RCHDroid first change (init) | 2×IPC + shadow enter(n) + create + inflate(n) + restore(n) + mapping(n) + coupling + fresh resume(n) |
//! | RCHDroid later change (flip) | 2×IPC + stack search + reorder + state swap + existing resume |
//! | Self-handled (`configChanges`) | 1×IPC + `onConfigurationChanged` + relayout(n) |
//! | RuntimeDroid | resource reload(n) + in-place reconstruction(n) + relayout (no restart, app level) |
//!
//! The flip path is O(1) in view count because the reused shadow instance
//! was built for the *previous* configuration — which, for A→B→A toggles,
//! is exactly the configuration being flipped back to.

use droidsim_kernel::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-app scaling of the cost model.
///
/// `complexity` multiplies the CPU-bound steps (class loading, layout,
/// first draw) — ≈1.0 for the paper's small TP-set apps, 2–3 for the
/// Google-Play top-100 apps. `view_count` drives the O(n) terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppCostProfile {
    /// CPU-cost multiplier for framework steps.
    pub complexity: f64,
    /// Views in the activity's tree.
    pub view_count: usize,
}

impl AppCostProfile {
    /// A profile with unit complexity — the benchmark app shape.
    pub fn benchmark(view_count: usize) -> Self {
        AppCostProfile {
            complexity: 1.0,
            view_count,
        }
    }
}

impl Default for AppCostProfile {
    fn default() -> Self {
        AppCostProfile {
            complexity: 1.0,
            view_count: 4,
        }
    }
}

/// The model's tunable constants (milliseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// One binder hop between activity thread and ATMS.
    pub ipc_one_way_ms: f64,
    /// Destroying an activity instance (views, window teardown).
    pub destroy_ms: f64,
    /// Creating an activity instance (class init, window setup).
    pub create_ms: f64,
    /// Layout parse fixed cost.
    pub inflate_base_ms: f64,
    /// Per-view instantiation cost.
    pub inflate_per_view_ms: f64,
    /// Instance-state restore fixed cost.
    pub restore_base_ms: f64,
    /// Per-view state restore cost.
    pub restore_per_view_ms: f64,
    /// First measure/layout/draw of a fresh instance.
    pub resume_fresh_ms: f64,
    /// Per-view share of the first layout pass.
    pub layout_per_view_ms: f64,
    /// Re-showing an already-built instance (flip path).
    pub resume_existing_ms: f64,
    /// Fraction of `resume_existing_ms` that is fixed compositor/window
    /// work independent of app complexity (the rest scales with it).
    /// Re-showing an existing tree skips class loading and inflation, so
    /// the flip's advantage *grows* with app size — the paper's 25.46 %
    /// (TP-27) vs 38.60 % (top-100) savings gap.
    pub resume_existing_fixed_share: f64,
    /// Pausing and snapshotting into the shadow bundle (fixed part).
    pub shadow_enter_ms: f64,
    /// Per-view share of the shadow snapshot.
    pub shadow_enter_per_view_ms: f64,
    /// Hash-table build fixed cost (essence-based mapping).
    pub mapping_base_ms: f64,
    /// Per-view hash insert + lookup.
    pub mapping_per_view_ms: f64,
    /// Per-view sunny-peer pointer store.
    pub peer_set_per_view_ms: f64,
    /// One-off cost of coupling two instances on the first change.
    pub init_coupling_ms: f64,
    /// Searching the task stack for a shadow record.
    pub stack_search_ms: f64,
    /// Reordering the found record to the top.
    pub reorder_ms: f64,
    /// Swapping shadow/sunny states between the two records.
    pub state_swap_ms: f64,
    /// Lazy migration fixed cost per async return.
    pub migrate_base_ms: f64,
    /// Lazy migration per migrated view (get attrs + set on peer).
    pub migrate_per_view_ms: f64,
    /// `onConfigurationChanged` dispatch for self-handling apps.
    pub on_config_changed_ms: f64,
    /// In-place relayout fixed cost for self-handling apps.
    pub relayout_base_ms: f64,
    /// In-place relayout per-view cost.
    pub relayout_per_view_ms: f64,
    /// RuntimeDroid: app-level resource reload fixed cost.
    pub rtd_reload_base_ms: f64,
    /// RuntimeDroid: per-view resource reload.
    pub rtd_reload_per_view_ms: f64,
    /// RuntimeDroid: in-place view reconstruction fixed cost.
    pub rtd_reconstruct_base_ms: f64,
    /// RuntimeDroid: per-view reconstruction.
    pub rtd_reconstruct_per_view_ms: f64,
    /// RuntimeDroid: final relayout.
    pub rtd_relayout_ms: f64,
    /// One shadow-GC pass (background).
    pub gc_run_ms: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        // Calibrated against §5.3/§5.4 of the paper; see the tests below.
        CostParams {
            ipc_one_way_ms: 2.0,
            destroy_ms: 20.0,
            create_ms: 58.0,
            inflate_base_ms: 11.0,
            inflate_per_view_ms: 0.15,
            restore_base_ms: 3.0,
            restore_per_view_ms: 0.06,
            resume_fresh_ms: 42.65,
            layout_per_view_ms: 0.24,
            resume_existing_ms: 78.2,
            resume_existing_fixed_share: 0.65,
            shadow_enter_ms: 5.0,
            shadow_enter_per_view_ms: 0.06,
            mapping_base_ms: 1.6,
            mapping_per_view_ms: 0.63,
            peer_set_per_view_ms: 0.57,
            init_coupling_ms: 22.5,
            stack_search_ms: 1.5,
            reorder_ms: 1.3,
            state_swap_ms: 4.2,
            migrate_base_ms: 7.83,
            migrate_per_view_ms: 0.77,
            on_config_changed_ms: 8.0,
            relayout_base_ms: 12.0,
            relayout_per_view_ms: 0.3,
            rtd_reload_base_ms: 9.0,
            rtd_reload_per_view_ms: 0.2,
            rtd_reconstruct_base_ms: 25.0,
            rtd_reconstruct_per_view_ms: 0.5,
            rtd_relayout_ms: 30.0,
            gc_run_ms: 0.4,
        }
    }
}

/// The latency cost model.
///
/// # Examples
///
/// ```
/// use droidsim_metrics::{AppCostProfile, CostModel};
///
/// let model = CostModel::calibrated();
/// let p = AppCostProfile::benchmark(4);
/// let stock = model.android10_relaunch(&p);
/// let flip = model.rchdroid_flip(&p);
/// assert!(flip < stock, "the coin flip beats a restart");
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostModel {
    params: CostParams,
}

impl CostModel {
    /// The model with paper-calibrated constants.
    pub fn calibrated() -> Self {
        CostModel {
            params: CostParams::default(),
        }
    }

    /// A model with custom constants (ablations).
    pub fn with_params(params: CostParams) -> Self {
        CostModel { params }
    }

    /// The constants in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    fn ms(value: f64) -> SimDuration {
        SimDuration::from_millis_f64(value)
    }

    // ---- individual steps ----

    /// One binder hop.
    pub fn ipc(&self) -> SimDuration {
        Self::ms(self.params.ipc_one_way_ms)
    }

    /// Destroying an instance.
    pub fn destroy(&self, p: &AppCostProfile) -> SimDuration {
        Self::ms(self.params.destroy_ms * p.complexity)
    }

    /// Creating an instance (constructor + window).
    pub fn create(&self, p: &AppCostProfile) -> SimDuration {
        Self::ms(self.params.create_ms * p.complexity)
    }

    /// Inflating the layout.
    pub fn inflate(&self, p: &AppCostProfile) -> SimDuration {
        Self::ms(
            (self.params.inflate_base_ms + self.params.inflate_per_view_ms * p.view_count as f64)
                * p.complexity,
        )
    }

    /// Restoring instance state into a fresh tree.
    pub fn restore(&self, p: &AppCostProfile) -> SimDuration {
        Self::ms(
            (self.params.restore_base_ms + self.params.restore_per_view_ms * p.view_count as f64)
                * p.complexity,
        )
    }

    /// First measure/layout/draw of a fresh instance.
    pub fn resume_fresh(&self, p: &AppCostProfile) -> SimDuration {
        Self::ms(
            (self.params.resume_fresh_ms + self.params.layout_per_view_ms * p.view_count as f64)
                * p.complexity,
        )
    }

    /// Re-showing an existing instance.
    pub fn resume_existing(&self, p: &AppCostProfile) -> SimDuration {
        let fixed = self.params.resume_existing_fixed_share;
        Self::ms(self.params.resume_existing_ms * (fixed + (1.0 - fixed) * p.complexity))
    }

    /// Entering the shadow state (pause + snapshot).
    pub fn shadow_enter(&self, p: &AppCostProfile) -> SimDuration {
        Self::ms(
            self.params.shadow_enter_ms
                + self.params.shadow_enter_per_view_ms * p.view_count as f64,
        )
    }

    /// Building the essence-based mapping (hash build + peer stores).
    pub fn mapping_build(&self, view_count: usize) -> SimDuration {
        Self::ms(
            self.params.mapping_base_ms
                + (self.params.mapping_per_view_ms + self.params.peer_set_per_view_ms)
                    * view_count as f64,
        )
    }

    /// Searching the task stack for a shadow record.
    pub fn stack_search(&self) -> SimDuration {
        Self::ms(self.params.stack_search_ms)
    }

    /// Reordering the record to the top.
    pub fn reorder(&self) -> SimDuration {
        Self::ms(self.params.reorder_ms)
    }

    /// Swapping shadow/sunny states.
    pub fn state_swap(&self) -> SimDuration {
        Self::ms(self.params.state_swap_ms)
    }

    /// One-off instance-coupling cost on the first change.
    pub fn init_coupling(&self) -> SimDuration {
        Self::ms(self.params.init_coupling_ms)
    }

    /// One background GC pass.
    pub fn gc_run(&self) -> SimDuration {
        Self::ms(self.params.gc_run_ms)
    }

    /// Lazy migration of `migrated_views` invalidated views.
    pub fn async_migration(&self, migrated_views: usize) -> SimDuration {
        Self::ms(
            self.params.migrate_base_ms + self.params.migrate_per_view_ms * migrated_views as f64,
        )
    }

    // ---- composite protocol costs ----

    /// Stock Android 10: destroy + recreate.
    pub fn android10_relaunch(&self, p: &AppCostProfile) -> SimDuration {
        self.ipc().saturating_mul(2)
            + self.destroy(p)
            + self.create(p)
            + self.inflate(p)
            + self.restore(p)
            + self.resume_fresh(p)
    }

    /// RCHDroid's first runtime change (no shadow exists yet): shadow the
    /// old instance, create the sunny one, build the mapping.
    pub fn rchdroid_init(&self, p: &AppCostProfile) -> SimDuration {
        self.ipc().saturating_mul(2)
            + self.shadow_enter(p)
            + self.create(p)
            + self.inflate(p)
            + self.restore(p)
            + self.mapping_build(p.view_count)
            + self.init_coupling()
            + self.resume_fresh(p)
    }

    /// RCHDroid's steady state: coin-flip the coupled shadow back.
    pub fn rchdroid_flip(&self, p: &AppCostProfile) -> SimDuration {
        self.ipc().saturating_mul(2)
            + self.stack_search()
            + self.reorder()
            + self.state_swap()
            + self.resume_existing(p)
    }

    /// An app that declared `android:configChanges`: one IPC delivers
    /// `onConfigurationChanged`, the app relayouts in place.
    pub fn handled_by_app(&self, p: &AppCostProfile) -> SimDuration {
        self.ipc()
            + Self::ms(
                (self.params.on_config_changed_ms
                    + self.params.relayout_base_ms
                    + self.params.relayout_per_view_ms * p.view_count as f64)
                    * p.complexity,
            )
    }

    /// The RuntimeDroid baseline: app-level restart masking with dynamic
    /// migration (no new instance, no system IPC round trip).
    pub fn runtimedroid(&self, p: &AppCostProfile) -> SimDuration {
        Self::ms(
            (self.params.rtd_reload_base_ms
                + self.params.rtd_reload_per_view_ms * p.view_count as f64
                + self.params.rtd_reconstruct_base_ms
                + self.params.rtd_reconstruct_per_view_ms * p.view_count as f64
                + self.params.rtd_relayout_ms)
                * p.complexity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::calibrated()
    }

    fn ms(d: SimDuration) -> f64 {
        d.as_millis_f64()
    }

    #[test]
    fn calibration_android10_near_141_8() {
        // §5.4: Android-10 handles the 4-ImageView benchmark app in
        // ≈141.8 ms. Its tree has 4 images + decor + root + button = 7
        // views.
        let t = ms(model().android10_relaunch(&AppCostProfile::benchmark(7)));
        assert!((t - 141.8).abs() < 1.0, "got {t}");
    }

    #[test]
    fn calibration_flip_is_89_2_and_flat() {
        let m = model();
        for n in [1, 2, 4, 8, 16] {
            let t = ms(m.rchdroid_flip(&AppCostProfile::benchmark(n)));
            assert!((t - 89.2).abs() < 0.01, "flip({n}) = {t}");
        }
    }

    #[test]
    fn calibration_init_range_matches_fig10a() {
        let m = model();
        // Benchmark trees: 1 image → 4 views; 16 images → 19 views.
        let t1 = ms(m.rchdroid_init(&AppCostProfile::benchmark(4)));
        let t16 = ms(m.rchdroid_init(&AppCostProfile::benchmark(19)));
        // Paper: 154.6 ms → 180.2 ms.
        assert!((t1 - 154.6).abs() < 1.5, "init(1 image) = {t1}");
        assert!((t16 - 180.2).abs() < 1.5, "init(16 images) = {t16}");
    }

    #[test]
    fn calibration_async_migration_matches_fig10b() {
        let m = model();
        let t1 = ms(m.async_migration(1));
        let t16 = ms(m.async_migration(16));
        // Paper: 8.6 ms → 20.2 ms, linear.
        assert!((t1 - 8.6).abs() < 0.1, "migrate(1) = {t1}");
        assert!((t16 - 20.2).abs() < 0.2, "migrate(16) = {t16}");
        let t8 = ms(m.async_migration(8));
        let linear = t1 + (t16 - t1) * (7.0 / 15.0);
        assert!((t8 - linear).abs() < 0.01, "linearity");
    }

    #[test]
    fn ordering_flip_lt_stock_lt_init() {
        let m = model();
        let p = AppCostProfile::benchmark(4);
        assert!(m.rchdroid_flip(&p) < m.android10_relaunch(&p));
        assert!(m.android10_relaunch(&p) < m.rchdroid_init(&p));
    }

    #[test]
    fn runtimedroid_beats_rchdroid_flip() {
        // §5.7: "Compared with RCHDroid, RuntimeDroid is more efficient."
        let m = model();
        let p = AppCostProfile::benchmark(4);
        assert!(m.runtimedroid(&p) < m.rchdroid_flip(&p));
    }

    #[test]
    fn self_handling_is_cheapest() {
        let m = model();
        let p = AppCostProfile::benchmark(4);
        assert!(m.handled_by_app(&p) < m.runtimedroid(&p));
    }

    #[test]
    fn complexity_scales_cpu_steps() {
        let m = model();
        let small = AppCostProfile {
            complexity: 1.0,
            view_count: 50,
        };
        let big = AppCostProfile {
            complexity: 2.0,
            view_count: 50,
        };
        let ratio = ms(m.android10_relaunch(&big)) / ms(m.android10_relaunch(&small));
        assert!(
            ratio > 1.9 && ratio < 2.0,
            "IPC is the only unscaled term: {ratio}"
        );
    }

    #[test]
    fn saving_grows_with_app_size() {
        // The flip avoids create+inflate, which scale with complexity —
        // so bigger apps save a larger fraction (25 % for TP-27 vs 38 %
        // for the top-100 in the paper).
        let m = model();
        let small = AppCostProfile {
            complexity: 1.0,
            view_count: 30,
        };
        let big = AppCostProfile {
            complexity: 2.2,
            view_count: 150,
        };
        let saving = |p: &AppCostProfile| {
            let a10 = ms(m.android10_relaunch(p));
            let avg = (ms(m.rchdroid_init(p)) + 3.0 * ms(m.rchdroid_flip(p))) / 4.0;
            (a10 - avg) / a10
        };
        assert!(saving(&big) > saving(&small));
    }

    #[test]
    fn composites_are_step_sums() {
        let m = model();
        let p = AppCostProfile::benchmark(7);
        let manual = m.ipc().saturating_mul(2)
            + m.destroy(&p)
            + m.create(&p)
            + m.inflate(&p)
            + m.restore(&p)
            + m.resume_fresh(&p);
        assert_eq!(manual, m.android10_relaunch(&p));
    }
}
