//! Aggregate ledger for one static-analysis (rchlint) run.
//!
//! The analysis fleet partitions the corpus across workers; each worker
//! produces per-app diagnostics and verdicts, and the driver folds them
//! into one [`AnalysisLedger`] **in task-index order**, so the ledger —
//! like [`crate::FleetLedger`] — is reproducible for any worker count.
//! The ledger deliberately keys lint codes as plain strings: metrics
//! stays a leaf crate and must not depend on the analyzer's typed
//! `LintCode` enum.

use std::collections::BTreeMap;
use std::fmt;

/// Totals for one analyzer run over one corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisLedger {
    /// Apps analyzed.
    pub apps: u64,
    /// Apps with no diagnostics at all (after suppression).
    pub clean_apps: u64,
    /// Diagnostics with error severity.
    pub errors: u64,
    /// Diagnostics with warning severity.
    pub warnings: u64,
    /// Diagnostics dropped by `--allow` suppression rules.
    pub suppressed: u64,
    /// Diagnostic count per lint code (e.g. `"RCH004"`), sorted by code.
    pub by_code: BTreeMap<String, u64>,
    /// Apps the verdict pass predicts to have an issue under stock
    /// (Android 10) handling.
    pub predicted_stock_issues: u64,
    /// Apps the verdict pass predicts to still have an issue under
    /// RCHDroid.
    pub predicted_rchdroid_issues: u64,
    /// Apps the verdict pass predicts to still have an issue under
    /// RuntimeDroid's in-place hot reload.
    pub predicted_runtimedroid_issues: u64,
    /// Apps carrying a data-loss scenario descriptor.
    pub dataloss_apps: u64,
    /// Apps flagged lossy in at least one mode, per data-loss class
    /// label (e.g. `"stop-restart"`), sorted by label.
    pub dataloss_by_class: BTreeMap<String, u64>,
}

impl AnalysisLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        AnalysisLedger::default()
    }

    /// Folds another ledger (e.g. one app's contribution) into this one.
    pub fn merge(&mut self, other: &AnalysisLedger) {
        self.apps += other.apps;
        self.clean_apps += other.clean_apps;
        self.errors += other.errors;
        self.warnings += other.warnings;
        self.suppressed += other.suppressed;
        for (code, n) in &other.by_code {
            *self.by_code.entry(code.clone()).or_insert(0) += n;
        }
        self.predicted_stock_issues += other.predicted_stock_issues;
        self.predicted_rchdroid_issues += other.predicted_rchdroid_issues;
        self.predicted_runtimedroid_issues += other.predicted_runtimedroid_issues;
        self.dataloss_apps += other.dataloss_apps;
        for (class, n) in &other.dataloss_by_class {
            *self.dataloss_by_class.entry(class.clone()).or_insert(0) += n;
        }
    }

    /// A single stable line summarising the run. Every field is derived
    /// from the corpus descriptors alone (no wall-clock, no worker
    /// count), so the fingerprint must be bit-identical between serial
    /// and parallel runs — the analysis analogue of
    /// [`crate::DeviceMetrics::deterministic_fingerprint`].
    pub fn deterministic_fingerprint(&self) -> String {
        format!(
            "analysis[apps={} clean={} errors={} warnings={} suppressed={} \
             by_code={:?} predicted[stock={} rchdroid={} runtimedroid={}] \
             dataloss[apps={} by_class={:?}]]",
            self.apps,
            self.clean_apps,
            self.errors,
            self.warnings,
            self.suppressed,
            self.by_code,
            self.predicted_stock_issues,
            self.predicted_rchdroid_issues,
            self.predicted_runtimedroid_issues,
            self.dataloss_apps,
            self.dataloss_by_class,
        )
    }
}

impl fmt::Display for AnalysisLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} app(s): {} clean, {} error(s), {} warning(s), {} suppressed",
            self.apps, self.clean_apps, self.errors, self.warnings, self.suppressed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_app(code: &str, warnings: u64) -> AnalysisLedger {
        let mut l = AnalysisLedger::new();
        l.apps = 1;
        l.warnings = warnings;
        l.clean_apps = u64::from(warnings == 0);
        if warnings > 0 {
            l.by_code.insert(code.to_owned(), warnings);
        }
        l
    }

    #[test]
    fn merge_is_order_insensitive_over_commutative_fields() {
        let parts = [one_app("RCH004", 2), one_app("RCH001", 1), one_app("x", 0)];
        let mut fwd = AnalysisLedger::new();
        let mut rev = AnalysisLedger::new();
        for p in &parts {
            fwd.merge(p);
        }
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.apps, 3);
        assert_eq!(fwd.clean_apps, 1);
        assert_eq!(fwd.warnings, 3);
        assert_eq!(fwd.by_code["RCH004"], 2);
    }

    #[test]
    fn fingerprint_is_stable_and_counts_everything() {
        let mut l = one_app("RCH006", 1);
        l.predicted_stock_issues = 1;
        let fp = l.deterministic_fingerprint();
        assert_eq!(fp, l.clone().deterministic_fingerprint());
        assert!(fp.contains("RCH006"));
        assert!(fp.contains("predicted[stock=1 rchdroid=0 runtimedroid=0]"));
        assert!(fp.contains("dataloss[apps=0 by_class={}]"));
    }

    #[test]
    fn dataloss_fields_merge_like_the_rest() {
        let mut a = AnalysisLedger::new();
        a.dataloss_apps = 2;
        a.predicted_runtimedroid_issues = 1;
        a.dataloss_by_class.insert("stop-restart".into(), 1);
        let mut b = AnalysisLedger::new();
        b.dataloss_apps = 1;
        b.dataloss_by_class.insert("stop-restart".into(), 1);
        b.dataloss_by_class.insert("async-race".into(), 1);
        a.merge(&b);
        assert_eq!(a.dataloss_apps, 3);
        assert_eq!(a.predicted_runtimedroid_issues, 1);
        assert_eq!(a.dataloss_by_class["stop-restart"], 2);
        assert_eq!(a.dataloss_by_class["async-race"], 1);
    }
}
