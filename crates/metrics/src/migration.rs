//! Instrumentation for the batched lazy-migration path.
//!
//! The eager path (the paper's baseline) copies class essence on *every*
//! `invalidate()` delivered while an activity is shadowed. The batched
//! path queues invalidations and drains them in bursts, so two questions
//! decide whether batching is worth it:
//!
//! * **coalesce ratio** — raw invalidations per coalesced queue entry.
//!   A ratio of 4 means four `invalidate()` calls collapsed into one
//!   essence copy; 1.0 means batching bought nothing.
//! * **flush behaviour** — how big batches get and how long a flush
//!   takes, captured as [`Histogram`]s of per-batch entry counts and
//!   wall-clock flush latency.
//!
//! [`MigrationMetrics`] accumulates all of these over an engine's
//! lifetime; the fig10-style benchmarks and the handler tests read them
//! back to verify the fast path actually coalesces.

use core::fmt;

use crate::stats::Histogram;

/// Lifetime counters and distributions for one migration engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationMetrics {
    /// Number of flushes performed (eager single-view drains count too).
    pub flushes: u64,
    /// Raw `invalidate()` deliveries observed before coalescing.
    pub raw_invalidations: u64,
    /// Coalesced queue entries actually migrated (≤ raw).
    pub coalesced_entries: u64,
    /// Per-flush batch size in coalesced entries.
    pub batch_size: Histogram,
    /// Per-flush wall-clock latency in nanoseconds.
    pub flush_latency_ns: Histogram,
}

impl MigrationMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> MigrationMetrics {
        MigrationMetrics::default()
    }

    /// Records one flush: `raw` invalidations collapsed into `batch`
    /// coalesced entries, drained in `latency_ns` nanoseconds.
    pub fn record_flush(&mut self, batch: usize, raw: usize, latency_ns: u64) {
        debug_assert!(
            batch <= raw,
            "cannot coalesce {raw} raw into {batch} entries"
        );
        self.flushes += 1;
        self.raw_invalidations += raw as u64;
        self.coalesced_entries += batch as u64;
        self.batch_size.record(batch as f64);
        self.flush_latency_ns.record(latency_ns as f64);
    }

    /// Raw invalidations per coalesced entry (≥ 1 once anything was
    /// flushed; 1.0 when batching saved nothing; 0 when idle).
    pub fn coalesce_ratio(&self) -> f64 {
        if self.coalesced_entries == 0 {
            0.0
        } else {
            self.raw_invalidations as f64 / self.coalesced_entries as f64
        }
    }

    /// Mean coalesced entries per flush (0 when idle).
    pub fn mean_batch_size(&self) -> f64 {
        self.batch_size.mean()
    }

    /// Folds another engine's metrics into this one (e.g. to aggregate
    /// across apps in an experiment harness).
    pub fn merge(&mut self, other: &MigrationMetrics) {
        self.flushes += other.flushes;
        self.raw_invalidations += other.raw_invalidations;
        self.coalesced_entries += other.coalesced_entries;
        self.batch_size.merge(&other.batch_size);
        self.flush_latency_ns.merge(&other.flush_latency_ns);
    }
}

impl fmt::Display for MigrationMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flushes={} raw={} coalesced={} ratio={:.2} batch[{}] latency_ns[{}]",
            self.flushes,
            self.raw_invalidations,
            self.coalesced_entries,
            self.coalesce_ratio(),
            self.batch_size,
            self.flush_latency_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_ratio_tracks_raw_over_entries() {
        let mut m = MigrationMetrics::new();
        assert_eq!(m.coalesce_ratio(), 0.0);
        m.record_flush(3, 12, 1_000);
        assert!((m.coalesce_ratio() - 4.0).abs() < 1e-12);
        m.record_flush(1, 1, 500);
        assert!((m.coalesce_ratio() - 13.0 / 4.0).abs() < 1e-12);
        assert_eq!(m.flushes, 2);
        assert!((m.mean_batch_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eager_equivalent_usage_has_unit_ratio() {
        let mut m = MigrationMetrics::new();
        for _ in 0..5 {
            m.record_flush(1, 1, 100);
        }
        assert!((m.coalesce_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(m.batch_size.max(), 1.0);
    }

    #[test]
    fn merge_aggregates_engines() {
        let mut a = MigrationMetrics::new();
        a.record_flush(2, 4, 100);
        let mut b = MigrationMetrics::new();
        b.record_flush(3, 9, 200);
        a.merge(&b);
        assert_eq!(a.flushes, 2);
        assert_eq!(a.raw_invalidations, 13);
        assert_eq!(a.coalesced_entries, 5);
        assert_eq!(a.flush_latency_ns.count(), 2);
    }

    #[test]
    fn display_is_human_readable() {
        let mut m = MigrationMetrics::new();
        m.record_flush(2, 6, 1_500);
        let line = m.to_string();
        assert!(line.contains("ratio=3.00"), "got {line}");
    }
}
