//! CPU and memory time series (the Android Studio profiler's view).
//!
//! Fig. 9 of the paper shows app CPU utilisation and memory over time
//! around two runtime changes and an async-task return. The [`Tracer`]
//! reproduces that instrument: framework code reports *busy intervals*
//! (CPU work) and *memory readings*; the tracer samples both on a fixed
//! grid, averaging busy time per sampling window into a utilisation
//! percentage.

use droidsim_kernel::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One sample of the profiler output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Sample timestamp.
    pub at: SimTime,
    /// CPU utilisation in percent over the preceding window.
    pub cpu_percent: f64,
    /// Memory footprint in MiB at the sample instant.
    pub memory_mib: f64,
}

#[derive(Debug, Clone, Copy)]
struct BusyInterval {
    start: SimTime,
    end: SimTime,
    utilisation: f64,
}

/// Records busy intervals and memory readings; samples them on a grid.
///
/// # Examples
///
/// ```
/// use droidsim_kernel::{SimDuration, SimTime};
/// use droidsim_metrics::Tracer;
///
/// let mut tracer = Tracer::new(SimDuration::from_millis(10));
/// tracer.record_busy(SimTime::ZERO, SimDuration::from_millis(5), 1.0);
/// tracer.record_memory(SimTime::ZERO, 47.5);
/// let points = tracer.sample(SimTime::from_millis(20));
/// assert_eq!(points.len(), 2);
/// assert!((points[0].cpu_percent - 50.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    window: SimDuration,
    busy: Vec<BusyInterval>,
    memory: Vec<(SimTime, f64)>,
}

impl Tracer {
    /// Creates a tracer with the given sampling window.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "sampling window must be positive");
        Tracer {
            window,
            busy: Vec::new(),
            memory: Vec::new(),
        }
    }

    /// Reports CPU work: the app was busy from `start` for `duration` at
    /// the given utilisation fraction (1.0 = one core fully busy).
    pub fn record_busy(&mut self, start: SimTime, duration: SimDuration, utilisation: f64) {
        if duration.is_zero() || utilisation <= 0.0 {
            return;
        }
        self.busy.push(BusyInterval {
            start,
            end: start + duration,
            utilisation: utilisation.min(1.0),
        });
    }

    /// Reports a memory reading (MiB). Readings are step-interpolated.
    pub fn record_memory(&mut self, at: SimTime, mib: f64) {
        self.memory.push((at, mib));
    }

    /// Samples utilisation and memory on the grid `[0, until]`.
    pub fn sample(&self, until: SimTime) -> Vec<TracePoint> {
        let mut memory = self.memory.clone();
        memory.sort_by_key(|&(t, _)| t);
        let window_us = self.window.as_micros();
        let mut points = Vec::new();
        let mut t = SimTime::ZERO;
        while t < until {
            let window_start = t;
            let window_end = t + self.window;
            let mut busy_us = 0.0;
            for interval in &self.busy {
                let overlap_start = interval.start.max(window_start);
                let overlap_end =
                    SimTime::from_micros(interval.end.as_micros().min(window_end.as_micros()));
                if overlap_end > overlap_start {
                    busy_us +=
                        (overlap_end - overlap_start).as_micros() as f64 * interval.utilisation;
                }
            }
            let cpu_percent = (busy_us / window_us as f64 * 100.0).min(100.0);
            let memory_mib = memory
                .iter()
                .take_while(|&&(at, _)| at <= window_end)
                .last()
                .map_or(0.0, |&(_, m)| m);
            points.push(TracePoint {
                at: window_end,
                cpu_percent,
                memory_mib,
            });
            t = window_end;
        }
        points
    }

    /// The sampling window.
    pub fn window(&self) -> SimDuration {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn idle_trace_is_flat_zero() {
        let tracer = Tracer::new(SimDuration::from_millis(10));
        let points = tracer.sample(ms(50));
        assert_eq!(points.len(), 5);
        assert!(points.iter().all(|p| p.cpu_percent == 0.0));
    }

    #[test]
    fn busy_burst_shows_in_its_window_only() {
        let mut tracer = Tracer::new(SimDuration::from_millis(10));
        // 3 ms of full-core work starting at t=12 ms → 30 % in window 2.
        tracer.record_busy(ms(12), SimDuration::from_millis(3), 1.0);
        let points = tracer.sample(ms(30));
        assert_eq!(points[0].cpu_percent, 0.0);
        assert!((points[1].cpu_percent - 30.0).abs() < 1e-9);
        assert_eq!(points[2].cpu_percent, 0.0);
    }

    #[test]
    fn burst_spanning_windows_splits() {
        let mut tracer = Tracer::new(SimDuration::from_millis(10));
        tracer.record_busy(ms(5), SimDuration::from_millis(10), 1.0);
        let points = tracer.sample(ms(20));
        assert!((points[0].cpu_percent - 50.0).abs() < 1e-9);
        assert!((points[1].cpu_percent - 50.0).abs() < 1e-9);
    }

    #[test]
    fn utilisation_fraction_scales() {
        let mut tracer = Tracer::new(SimDuration::from_millis(10));
        tracer.record_busy(ms(0), SimDuration::from_millis(10), 0.15);
        let points = tracer.sample(ms(10));
        assert!((points[0].cpu_percent - 15.0).abs() < 1e-9);
    }

    #[test]
    fn memory_is_step_interpolated() {
        let mut tracer = Tracer::new(SimDuration::from_millis(10));
        tracer.record_memory(ms(0), 47.0);
        tracer.record_memory(ms(25), 53.0);
        let points = tracer.sample(ms(40));
        assert_eq!(points[0].memory_mib, 47.0);
        assert_eq!(points[1].memory_mib, 47.0);
        assert_eq!(
            points[2].memory_mib, 53.0,
            "reading at 25ms lands in window 3"
        );
        assert_eq!(points[3].memory_mib, 53.0);
    }

    #[test]
    fn memory_drop_to_zero_models_a_crash() {
        let mut tracer = Tracer::new(SimDuration::from_millis(10));
        tracer.record_memory(ms(0), 48.0);
        tracer.record_memory(ms(117), 0.0); // the Fig. 9 crash
        let points = tracer.sample(ms(120));
        assert_eq!(points.last().unwrap().memory_mib, 0.0);
    }

    #[test]
    #[should_panic(expected = "sampling window must be positive")]
    fn zero_window_panics() {
        Tracer::new(SimDuration::ZERO);
    }
}
