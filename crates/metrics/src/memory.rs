//! The memory (PSS) model.
//!
//! The paper measures per-app memory with `dumpsys meminfo` (Total PSS).
//! The model decomposes PSS as: a per-app *base* (code, ART heap, shared
//! libraries — untouched by runtime changes) plus the heap of each alive
//! activity instance (views + drawables + bundles). RCHDroid's overhead is
//! therefore exactly one extra (shadow) instance while it remains alive —
//! which is what produces the paper's 1.12× (small apps, Fig. 8) and
//! +7.13 % (large apps, Fig. 14b).

use serde::{Deserialize, Serialize};

/// Bytes in one mebibyte.
pub const MIB: u64 = 1024 * 1024;

/// A point-in-time memory reading for one app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemorySnapshot {
    /// App base footprint (bytes).
    pub base_bytes: u64,
    /// Sum of alive activity heaps (bytes).
    pub activities_bytes: u64,
}

impl MemorySnapshot {
    /// Total PSS in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.base_bytes + self.activities_bytes
    }

    /// Total PSS in MiB.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / MIB as f64
    }
}

/// The per-app memory model.
///
/// # Examples
///
/// ```
/// use droidsim_metrics::MemoryModel;
///
/// let model = MemoryModel::new(40 * 1024 * 1024);
/// let snap = model.snapshot([6 * 1024 * 1024u64, 6 * 1024 * 1024]);
/// assert!((snap.total_mib() - 52.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryModel {
    base_bytes: u64,
}

impl MemoryModel {
    /// Creates a model with the app's base footprint.
    pub fn new(base_bytes: u64) -> Self {
        MemoryModel { base_bytes }
    }

    /// The app's base footprint in bytes.
    pub fn base_bytes(&self) -> u64 {
        self.base_bytes
    }

    /// Takes a snapshot given the heap sizes of the alive activities.
    pub fn snapshot(&self, activity_heaps: impl IntoIterator<Item = u64>) -> MemorySnapshot {
        MemorySnapshot {
            base_bytes: self.base_bytes,
            activities_bytes: activity_heaps.into_iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let m = MemoryModel::new(10 * MIB);
        let s = m.snapshot([MIB, 2 * MIB]);
        assert_eq!(s.total_bytes(), 13 * MIB);
        assert!((s.total_mib() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn shadow_instance_is_the_overhead() {
        // One activity vs the same app keeping a shadow instance too.
        let m = MemoryModel::new(41 * MIB);
        let stock = m.snapshot([6 * MIB]);
        let rchdroid = m.snapshot([6 * MIB, 6 * MIB]);
        let ratio = rchdroid.total_mib() / stock.total_mib();
        // ≈ the paper's 1.12× for small apps.
        assert!(ratio > 1.10 && ratio < 1.15, "ratio = {ratio}");
    }

    #[test]
    fn large_apps_have_smaller_relative_overhead() {
        let m = MemoryModel::new(150 * MIB);
        let stock = m.snapshot([12 * MIB]);
        let rchdroid = m.snapshot([12 * MIB, 12 * MIB]);
        let overhead = rchdroid.total_mib() / stock.total_mib() - 1.0;
        // ≈ the paper's +7.13 % for the top-100 set.
        assert!(overhead > 0.05 && overhead < 0.09, "overhead = {overhead}");
    }

    #[test]
    fn empty_app_is_just_base() {
        let m = MemoryModel::new(5 * MIB);
        assert_eq!(m.snapshot([]).total_bytes(), 5 * MIB);
    }
}
