//! Coarse allocation-event accounting for the simulation hot path.
//!
//! The fleet's scaling work put the per-sim path on an allocation diet:
//! traversal stacks, drain buffers, flush batches, and logcat line
//! buffers are reused instead of re-allocated. This module is how that
//! diet stays *measurable* — the known allocation sites that remain (or
//! that a fallback path re-introduces) bump a process-wide counter, and
//! the fleet ledger records the delta per run as `alloc_events`.
//!
//! The counter is intentionally a single relaxed atomic, not a
//! thread-local: supervised attempts may run on a watchdog-spawned
//! thread, and the ledger wants the whole run's total regardless of
//! which thread allocated. Events are coarse (one per buffer
//! materialised, not per byte), so the atomic is nowhere near any hot
//! loop. Like wall-clock latency, the value is **diagnostic**: it never
//! participates in deterministic fingerprints, because scratch-buffer
//! reuse depends on scheduling.
//!
//! # Examples
//!
//! ```
//! use droidsim_kernel::alloc_track;
//!
//! let before = alloc_track::current();
//! alloc_track::note(2);
//! assert!(alloc_track::current() >= before + 2);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Records `n` allocation events at an instrumented site.
pub fn note(n: u64) {
    EVENTS.fetch_add(n, Ordering::Relaxed);
}

/// The monotone process-wide event count. Snapshot before and after a
/// region and subtract; concurrent regions overlap (the counter is a
/// diagnostic, not a per-task meter).
pub fn current() -> u64 {
    EVENTS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone() {
        let a = current();
        note(1);
        note(3);
        let b = current();
        assert!(b >= a + 4, "other threads only ever add");
    }
}
