//! Monotone id allocation.
//!
//! Tokens, view ids, activity-record ids and task ids are all allocated from
//! per-domain [`IdGen`]s so that ids are dense, deterministic and never
//! reused within a simulation run.

use serde::{Deserialize, Serialize};

/// A monotone id allocator.
///
/// # Examples
///
/// ```
/// use droidsim_kernel::IdGen;
///
/// let mut gen = IdGen::new();
/// assert_eq!(gen.next(), 0);
/// assert_eq!(gen.next(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// Creates an allocator starting at 0.
    pub const fn new() -> Self {
        IdGen { next: 0 }
    }

    /// Creates an allocator starting at `first`.
    pub const fn starting_at(first: u64) -> Self {
        IdGen { next: first }
    }

    /// Allocates the next id.
    #[allow(clippy::should_implement_trait)] // deliberate: IdGen is not an iterator
    pub fn next(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// The id that the next call to [`IdGen::next`] will return.
    pub const fn peek(&self) -> u64 {
        self.next
    }

    /// Number of ids allocated so far (when starting at 0).
    pub const fn allocated(&self) -> u64 {
        self.next
    }
}

/// Declares a newtype id with `Display`, `From<u64>` and an inherent
/// constructor — the standard shape for every id in the simulator.
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* $vis:vis struct $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            serde::Serialize, serde::Deserialize,
        )]
        $vis struct $name(pub u64);

        impl $name {
            /// Creates the id from a raw value.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw id value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!(stringify!($name), "#{}"), self.0)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    define_id! {
        /// A test id.
        pub struct TestId
    }

    #[test]
    fn ids_are_dense_and_monotone() {
        let mut gen = IdGen::new();
        let ids: Vec<u64> = (0..10).map(|_| gen.next()).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert_eq!(gen.allocated(), 10);
    }

    #[test]
    fn starting_at_offsets() {
        let mut gen = IdGen::starting_at(100);
        assert_eq!(gen.next(), 100);
        assert_eq!(gen.peek(), 101);
    }

    #[test]
    fn define_id_macro_produces_usable_type() {
        let id = TestId::new(7);
        assert_eq!(id.raw(), 7);
        assert_eq!(TestId::from(7), id);
        assert_eq!(id.to_string(), "TestId#7");
    }
}
