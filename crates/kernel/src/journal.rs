//! Line-oriented `key=value` serialization for append-only journals.
//!
//! The fleet driver checkpoints completed tasks as one journal line per
//! task so an interrupted study can resume without recomputing finished
//! work. The format has to survive exactly what a crash leaves behind —
//! a possibly-truncated final line — so it is deliberately primitive:
//! one record per line, space-separated `key=value` fields, values
//! percent-escaped so keys, separators and newlines can never be forged
//! by a value (a panic payload, an app name with spaces, …).
//!
//! # Examples
//!
//! ```
//! use droidsim_kernel::journal;
//!
//! let line = journal::encode_line(&[("index", "3"), ("payload", "boom at x=1")]);
//! let fields = journal::decode_line(&line).unwrap();
//! assert_eq!(journal::field(&fields, "index"), Some("3"));
//! assert_eq!(journal::field(&fields, "payload"), Some("boom at x=1"));
//! ```

/// Escapes a value so it contains no spaces, `=`, `%` or line breaks.
pub fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '=' => out.push_str("%3d"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`]. Unknown or truncated `%` sequences are kept
/// verbatim rather than rejected — a journal line is either parseable
/// or discarded wholesale, never a hard error.
pub fn unescape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let bytes = value.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() && value.is_char_boundary(i + 3) {
            match &value[i + 1..i + 3] {
                "25" => out.push('%'),
                "20" => out.push(' '),
                "3d" => out.push('='),
                "0a" => out.push('\n'),
                "0d" => out.push('\r'),
                _ => {
                    out.push('%');
                    i += 1;
                    continue;
                }
            }
            i += 3;
        } else {
            // Multi-byte UTF-8 sequences pass through untouched.
            let c = value[i..].chars().next().unwrap();
            out.push(c);
            i += c.len_utf8();
        }
    }
    out
}

/// Encodes one record as a `key=value key=value` line (no trailing
/// newline). Keys must be plain identifiers; values are escaped.
pub fn encode_line(fields: &[(&str, &str)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{k}={}", escape(v)))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Decodes one line back into `(key, value)` pairs. Returns `None` for
/// a malformed line (no fields, or a field without `=`) — the caller
/// treats it as a truncated tail and stops reading.
pub fn decode_line(line: &str) -> Option<Vec<(String, String)>> {
    let line = line.trim_end_matches(['\n', '\r']);
    if line.is_empty() {
        return None;
    }
    let mut fields = Vec::new();
    for part in line.split(' ') {
        let (k, v) = part.split_once('=')?;
        if k.is_empty() {
            return None;
        }
        fields.push((k.to_owned(), unescape(v)));
    }
    Some(fields)
}

/// Looks up the first occurrence of `key` in decoded fields.
pub fn field<'a>(fields: &'a [(String, String)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_hostile_values() {
        for v in [
            "plain",
            "two words",
            "a=b=c",
            "100%",
            "line\nbreak",
            "cr\rlf\n",
            "%20 literal",
            "",
            "naïve 视图",
        ] {
            assert_eq!(unescape(&escape(v)), v, "value {v:?}");
            let line = encode_line(&[("k", v)]);
            assert!(!line.contains('\n'), "escaped line must be single-line");
            let fields = decode_line(&line).unwrap();
            assert_eq!(field(&fields, "k"), Some(v));
        }
    }

    #[test]
    fn multi_field_lines_keep_order_and_values() {
        let line = encode_line(&[
            ("kind", "task"),
            ("index", "7"),
            ("why", "it broke = badly"),
        ]);
        let fields = decode_line(&line).unwrap();
        assert_eq!(fields.len(), 3);
        assert_eq!(field(&fields, "kind"), Some("task"));
        assert_eq!(field(&fields, "index"), Some("7"));
        assert_eq!(field(&fields, "why"), Some("it broke = badly"));
        assert_eq!(field(&fields, "missing"), None);
    }

    #[test]
    fn malformed_lines_decode_to_none() {
        assert_eq!(decode_line(""), None);
        assert_eq!(decode_line("\n"), None);
        assert_eq!(decode_line("no-equals-sign"), None);
        assert_eq!(decode_line("ok=1 truncated"), None);
        assert_eq!(decode_line("=value"), None);
    }

    #[test]
    fn unknown_escapes_pass_through() {
        assert_eq!(unescape("%zz"), "%zz");
        assert_eq!(unescape("tail%"), "tail%");
        assert_eq!(unescape("%2"), "%2");
    }
}
