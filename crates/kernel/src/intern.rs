//! Global interning of `android:id` names.
//!
//! Essence mapping keys views by their `android:id` *name*. Carrying those
//! names as owned `String`s means every coupling pass and every
//! hierarchy-state save clones and hashes variable-length text on the hot
//! path. This module interns each distinct name once, for the lifetime of
//! the process, and hands out a [`Symbol`] — a `Copy` `u32` that compares
//! and hashes in one instruction and resolves back to its text in O(1).
//!
//! Two properties matter for the simulator:
//!
//! * **Stability** — a symbol, once issued, resolves to the same string for
//!   the rest of the process. Interned text is leaked (id names are a small
//!   closed set per app; the table is bounded in practice).
//! * **Determinism** — the *numeric value* of a symbol depends on interning
//!   order, which may differ between serial and parallel fleet runs. No
//!   observable output may therefore depend on symbol values; everything
//!   user-visible goes through [`Symbol::as_str`]. The view-tree index and
//!   peer maps only use symbols as opaque hash keys, which is safe.
//!
//! # Examples
//!
//! ```
//! use droidsim_kernel::Symbol;
//!
//! let a = Symbol::intern("btnSend");
//! let b = Symbol::intern("btnSend");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "btnSend");
//! assert_eq!(a.hierarchy_key(), "view:btnSend");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned `android:id` name: a `Copy` handle into the process-wide
/// symbol table.
///
/// Equality, ordering, and hashing all operate on the `u32` index, so a
/// `Symbol` key is as cheap as an integer. Use [`Symbol::as_str`] to get
/// the text back and [`Symbol::hierarchy_key`] for the precomputed
/// `view:{name}` bundle key used by hierarchy-state save/restore.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

/// The process-wide table. Names are leaked to `&'static str` so resolving
/// a symbol never copies; the table itself only grows.
struct Table {
    by_name: HashMap<&'static str, u32>,
    /// Indexed by symbol value.
    names: Vec<&'static str>,
    /// `view:{name}`, precomputed at interning time so hierarchy-state
    /// save/restore never formats keys on the hot path.
    hierarchy_keys: Vec<&'static str>,
}

fn table() -> &'static RwLock<Table> {
    static TABLE: OnceLock<RwLock<Table>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Table {
            by_name: HashMap::new(),
            names: Vec::new(),
            hierarchy_keys: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning the existing symbol if the name was seen
    /// before.
    pub fn intern(name: &str) -> Symbol {
        if let Some(sym) = Symbol::lookup(name) {
            return sym;
        }
        let mut t = table().write().unwrap();
        // Double-checked: another thread may have interned between our
        // read probe and taking the write lock.
        if let Some(&idx) = t.by_name.get(name) {
            return Symbol(idx);
        }
        let idx = u32::try_from(t.names.len()).expect("symbol table overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let key: &'static str = Box::leak(format!("view:{name}").into_boxed_str());
        t.by_name.insert(leaked, idx);
        t.names.push(leaked);
        t.hierarchy_keys.push(key);
        Symbol(idx)
    }

    /// Returns the symbol for `name` if it has already been interned,
    /// without growing the table. Useful for probe-style lookups
    /// (`find_by_id_name`) where an unknown name simply means "no match".
    pub fn lookup(name: &str) -> Option<Symbol> {
        table()
            .read()
            .unwrap()
            .by_name
            .get(name)
            .copied()
            .map(Symbol)
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        table().read().unwrap().names[self.0 as usize]
    }

    /// The precomputed `view:{name}` key used for hierarchy-state bundles.
    pub fn hierarchy_key(self) -> &'static str {
        table().read().unwrap().hierarchy_keys[self.0 as usize]
    }

    /// The raw table index. Only for diagnostics — the value depends on
    /// interning order and must never reach deterministic output.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("idempotent-check");
        let b = Symbol::intern("idempotent-check");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn round_trips_text() {
        let s = Symbol::intern("btnConfirm");
        assert_eq!(s.as_str(), "btnConfirm");
        assert_eq!(s.to_string(), "btnConfirm");
    }

    #[test]
    fn hierarchy_key_is_prefixed() {
        let s = Symbol::intern("listMessages");
        assert_eq!(s.hierarchy_key(), "view:listMessages");
    }

    #[test]
    fn lookup_does_not_grow_the_table() {
        assert_eq!(Symbol::lookup("never-interned-name-xyzzy"), None);
        assert_eq!(Symbol::lookup("never-interned-name-xyzzy"), None);
        let s = Symbol::intern("never-interned-name-xyzzy");
        assert_eq!(Symbol::lookup("never-interned-name-xyzzy"), Some(s));
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("alpha"), Symbol::intern("beta"));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let syms: Vec<Symbol> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| scope.spawn(|| Symbol::intern("racy-name")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(syms[0].as_str(), "racy-name");
    }
}
