//! Global interning of `android:id` names.
//!
//! Essence mapping keys views by their `android:id` *name*. Carrying those
//! names as owned `String`s means every coupling pass and every
//! hierarchy-state save clones and hashes variable-length text on the hot
//! path. This module interns each distinct name once, for the lifetime of
//! the process, and hands out a [`Symbol`] — a `Copy` `u32` that compares
//! and hashes in one instruction and resolves back to its text in O(1).
//!
//! # Sharded, read-mostly layout
//!
//! The table used to be a single `RwLock<Table>`; with 8 fleet workers all
//! resolving symbols on every hierarchy-state save, even the uncontended
//! read lock showed up as cross-core cache-line traffic. The current
//! design splits the *name → index* direction into [`SHARD_COUNT`] shards
//! keyed by an FNV-1a hash of the name, each behind its own `RwLock`, so
//! two workers interning or probing different names almost never touch the
//! same lock. The *index → text* direction ([`Symbol::as_str`],
//! [`Symbol::hierarchy_key`]) takes **no lock at all**: resolved entries
//! live in an append-only chunked arena of `OnceLock` slots, published
//! before the owning index escapes the interner, so a resolve is two
//! atomic loads and an index computation.
//!
//! Two properties matter for the simulator:
//!
//! * **Stability** — a symbol, once issued, resolves to the same string for
//!   the rest of the process. Interned text is leaked (id names are a small
//!   closed set per app; the table is bounded in practice).
//! * **Determinism** — the *numeric value* of a symbol depends on interning
//!   order, which may differ between serial and parallel fleet runs. No
//!   observable output may therefore depend on symbol values; everything
//!   user-visible goes through [`Symbol::as_str`]. The view-tree index and
//!   peer maps only use symbols as opaque hash keys, which is safe.
//!
//! # Examples
//!
//! ```
//! use droidsim_kernel::Symbol;
//!
//! let a = Symbol::intern("btnSend");
//! let b = Symbol::intern("btnSend");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "btnSend");
//! assert_eq!(a.hierarchy_key(), "view:btnSend");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned `android:id` name: a `Copy` handle into the process-wide
/// symbol table.
///
/// Equality, ordering, and hashing all operate on the `u32` index, so a
/// `Symbol` key is as cheap as an integer. Use [`Symbol::as_str`] to get
/// the text back and [`Symbol::hierarchy_key`] for the precomputed
/// `view:{name}` bundle key used by hierarchy-state save/restore.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

/// Number of name→index shards. A power of two so shard selection is a
/// mask; 16 is comfortably above any worker count the fleet driver runs.
const SHARD_COUNT: usize = 16;

/// Number of geometric arena chunks. Chunk `c` holds `FIRST_CHUNK << c`
/// slots, so 22 chunks cover `64 · (2²² − 1)` ≈ 268M symbols — far beyond
/// the bounded id-name population of any app corpus.
const CHUNK_COUNT: usize = 22;

/// Capacity of the first arena chunk.
const FIRST_CHUNK: usize = 64;

/// One resolved symbol: the leaked name plus its precomputed
/// `view:{name}` hierarchy-state key, stored together so a resolve never
/// formats or copies.
struct Slot {
    name: &'static str,
    hierarchy_key: &'static str,
}

/// The process-wide interner: sharded name→index maps plus the lock-free
/// index→slot arena. Names are leaked to `&'static str` so resolving a
/// symbol never copies; the table only grows.
struct Interner {
    /// Name → index, split by FNV-1a hash of the name.
    shards: [RwLock<HashMap<&'static str, u32>>; SHARD_COUNT],
    /// Next unissued symbol index, claimed under a shard write lock.
    next: AtomicU32,
    /// Append-only chunked slot storage; each chunk materialises on first
    /// use and each slot is written exactly once, before its index
    /// escapes [`Symbol::intern`].
    chunks: [OnceLock<Box<[OnceLock<Slot>]>>; CHUNK_COUNT],
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        next: AtomicU32::new(0),
        chunks: std::array::from_fn(|_| OnceLock::new()),
    })
}

/// FNV-1a over the name bytes, reduced to a shard number. Uses the same
/// constants as the fleet digest so the distribution is already proven on
/// this corpus.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (SHARD_COUNT - 1)
}

/// Maps a symbol index to its `(chunk, offset)` coordinates in the
/// geometric arena. Chunk `c` starts at index `FIRST_CHUNK · (2ᶜ − 1)`.
fn locate(index: u32) -> (usize, usize) {
    let q = index as usize / FIRST_CHUNK;
    let chunk = (usize::BITS - (q + 1).leading_zeros() - 1) as usize;
    assert!(chunk < CHUNK_COUNT, "symbol table overflow");
    let base = FIRST_CHUNK * ((1usize << chunk) - 1);
    (chunk, index as usize - base)
}

impl Interner {
    /// Publishes `slot` at `index`. Called while holding the owning
    /// shard's write lock, before the index is inserted into the map, so
    /// every index observable through `intern`/`lookup` is resolvable.
    fn publish(&self, index: u32, slot: Slot) {
        let (c, off) = locate(index);
        let chunk = self.chunks[c].get_or_init(|| {
            (0..FIRST_CHUNK << c)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        assert!(
            chunk[off].set(slot).is_ok(),
            "symbol slot {index} published twice"
        );
    }

    /// Lock-free resolve: two atomic loads (chunk pointer, slot) plus the
    /// coordinate computation.
    fn resolve(&self, index: u32) -> &Slot {
        let (c, off) = locate(index);
        self.chunks[c]
            .get()
            .and_then(|chunk| chunk[off].get())
            .expect("symbol index was never issued")
    }
}

impl Symbol {
    /// Interns `name`, returning the existing symbol if the name was seen
    /// before. Only the shard owning `name`'s hash is locked; interning
    /// distinct names on distinct workers proceeds without contention.
    pub fn intern(name: &str) -> Symbol {
        let it = interner();
        let shard = &it.shards[shard_of(name)];
        if let Some(&idx) = shard.read().unwrap().get(name) {
            return Symbol(idx);
        }
        let mut map = shard.write().unwrap();
        // Double-checked: another thread may have interned between our
        // read probe and taking the write lock.
        if let Some(&idx) = map.get(name) {
            return Symbol(idx);
        }
        let idx = it.next.fetch_add(1, Ordering::Relaxed);
        assert!(idx != u32::MAX, "symbol table overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let key: &'static str = Box::leak(format!("view:{name}").into_boxed_str());
        it.publish(
            idx,
            Slot {
                name: leaked,
                hierarchy_key: key,
            },
        );
        map.insert(leaked, idx);
        Symbol(idx)
    }

    /// Returns the symbol for `name` if it has already been interned,
    /// without growing the table. Useful for probe-style lookups
    /// (`find_by_id_name`) where an unknown name simply means "no match".
    pub fn lookup(name: &str) -> Option<Symbol> {
        interner().shards[shard_of(name)]
            .read()
            .unwrap()
            .get(name)
            .copied()
            .map(Symbol)
    }

    /// The interned text. Lock-free: resolves through the append-only
    /// slot arena without touching any shard lock.
    pub fn as_str(self) -> &'static str {
        interner().resolve(self.0).name
    }

    /// The precomputed `view:{name}` key used for hierarchy-state
    /// bundles. Lock-free, like [`Symbol::as_str`].
    pub fn hierarchy_key(self) -> &'static str {
        interner().resolve(self.0).hierarchy_key
    }

    /// The raw table index. Only for diagnostics — the value depends on
    /// interning order and must never reach deterministic output.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("idempotent-check");
        let b = Symbol::intern("idempotent-check");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn round_trips_text() {
        let s = Symbol::intern("btnConfirm");
        assert_eq!(s.as_str(), "btnConfirm");
        assert_eq!(s.to_string(), "btnConfirm");
    }

    #[test]
    fn hierarchy_key_is_prefixed() {
        let s = Symbol::intern("listMessages");
        assert_eq!(s.hierarchy_key(), "view:listMessages");
    }

    #[test]
    fn lookup_does_not_grow_the_table() {
        assert_eq!(Symbol::lookup("never-interned-name-xyzzy"), None);
        assert_eq!(Symbol::lookup("never-interned-name-xyzzy"), None);
        let s = Symbol::intern("never-interned-name-xyzzy");
        assert_eq!(Symbol::lookup("never-interned-name-xyzzy"), Some(s));
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("alpha"), Symbol::intern("beta"));
    }

    #[test]
    fn locate_covers_chunk_boundaries() {
        // Chunk 0 holds [0, 64), chunk 1 holds [64, 192), chunk 2 holds
        // [192, 448), … each twice the size of the last.
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(63), (0, 63));
        assert_eq!(locate(64), (1, 0));
        assert_eq!(locate(191), (1, 127));
        assert_eq!(locate(192), (2, 0));
        assert_eq!(locate(447), (2, 255));
        assert_eq!(locate(448), (3, 0));
        // Every index maps inside its chunk's capacity.
        for i in (0..100_000).step_by(7) {
            let (c, off) = locate(i);
            assert!(off < FIRST_CHUNK << c, "index {i} escaped chunk {c}");
        }
    }

    #[test]
    fn concurrent_interning_agrees() {
        let syms: Vec<Symbol> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| scope.spawn(|| Symbol::intern("racy-name")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(syms[0].as_str(), "racy-name");
    }

    #[test]
    fn concurrent_interning_across_shards_round_trips() {
        // Eight workers interning disjoint name sets that land in many
        // different shards; every symbol must resolve to its own text and
        // hierarchy key without any cross-talk between shards.
        let all: Vec<(String, Symbol)> = std::thread::scope(|scope| {
            (0..8u32)
                .map(|w| {
                    scope.spawn(move || {
                        (0..64u32)
                            .map(|i| {
                                let name = format!("shard-storm-{w}-{i}");
                                let sym = Symbol::intern(&name);
                                (name, sym)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        for (name, sym) in &all {
            assert_eq!(sym.as_str(), name);
            assert_eq!(sym.hierarchy_key(), format!("view:{name}"));
            assert_eq!(Symbol::lookup(name), Some(*sym));
        }
        // 512 distinct names → 512 distinct symbols.
        let mut indices: Vec<u32> = all.iter().map(|(_, s)| s.index()).collect();
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices.len(), 512);
    }
}
