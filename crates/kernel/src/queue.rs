//! Timestamped event queue with deterministic FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: a payload due at a virtual instant.
#[derive(Debug, Clone)]
pub struct Event<P> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number; breaks ties between events scheduled for
    /// the same instant (earlier-scheduled fires first).
    pub seq: u64,
    /// The event payload.
    pub payload: P,
}

#[derive(Debug, Clone)]
struct HeapEntry<P>(Event<P>);

impl<P> PartialEq for HeapEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}

impl<P> Eq for HeapEntry<P> {}

impl<P> PartialOrd for HeapEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for HeapEntry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A monotone priority queue of timestamped events.
///
/// Events pop in `(time, insertion order)` order, which makes simulations
/// built on it fully deterministic.
///
/// # Examples
///
/// ```
/// use droidsim_kernel::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(3), 'b');
/// q.schedule(SimTime::from_millis(3), 'c');
/// q.schedule(SimTime::from_millis(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<P> {
    heap: BinaryHeap<HeapEntry<P>>,
    next_seq: u64,
}

impl<P> EventQueue<P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns the event's sequence
    /// number (useful for cancellation bookkeeping by the caller).
    pub fn schedule(&mut self, at: SimTime, payload: P) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { at, seq, payload }));
        seq
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<Event<P>> {
        self.heap.pop().map(|e| e.0)
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<P> std::iter::Extend<(SimTime, P)> for EventQueue<P> {
    fn extend<T: IntoIterator<Item = (SimTime, P)>>(&mut self, iter: T) {
        for (at, payload) in iter {
            self.schedule(at, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), 5);
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(3), 3);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 5);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(2);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn interleaved_schedule_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "late");
        q.schedule(SimTime::from_millis(1), "early");
        assert_eq!(q.pop().unwrap().payload, "early");
        q.schedule(SimTime::from_millis(5), "mid");
        assert_eq!(q.pop().unwrap().payload, "mid");
        assert_eq!(q.pop().unwrap().payload, "late");
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(7), ());
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
    }

    #[test]
    fn extend_schedules_all() {
        let mut q = EventQueue::new();
        q.extend((0..4u64).map(|i| (SimTime::ZERO + SimDuration::from_millis(i), i)));
        assert_eq!(q.len(), 4);
        q.clear();
        assert!(q.is_empty());
    }
}
