//! Content-addressed memoization of hot deterministic derivations.
//!
//! The fleet replays a small set of app shapes (corpus apps × configs ×
//! seeds) thousands of times per study, and the three hottest derivations
//! on the handling path — qualifier resolution, layout inflation and the
//! essence-mapping plan — are *pure functions of their inputs*. This
//! module provides the shared warm-path cache they memoize through:
//! a shard-per-key concurrent map modeled on the [`intern`](crate::intern)
//! layout (fixed shard count, per-shard `RwLock`, `Arc`-shared immutable
//! entries) with generation-tagged invalidation, LRU-ish bounded capacity
//! and a process-wide kill switch.
//!
//! # Content addressing
//!
//! Keys are digests of the *inputs* (table fingerprint, template digest,
//! configuration hash, tree shape), never identities, so two tasks — or
//! two daemon jobs hours apart — that derive from equal content share one
//! entry, and any mutation changes the key rather than stalely hitting.
//! Values are immutable once published and shared via `Arc`; a consumer
//! that needs to mutate (an activity instantiating a cached template)
//! clones the Arc'd value, which is cheaper than re-deriving it.
//!
//! # Determinism contract
//!
//! A cache hit must be bit-identical to the cold derivation — that is the
//! `memo ≡ cold` invariant the fleet determinism suite asserts (per-device
//! logcat and metrics digests equal with the cache on and off, at any job
//! count). Hit/miss/eviction counts, by contrast, depend on scheduling and
//! are telemetry: they surface through [`snapshot_all`] into the
//! fingerprint-*excluded* part of the metrics ledgers, like wall-clock
//! histograms and allocation events.
//!
//! # Admission (touch-counted)
//!
//! Caching a value costs one deep clone (the cache keeps an immutable
//! copy). On workloads where every shape is unique that clone would be
//! pure overhead, so a key is only *admitted* once it has missed
//! [`admission_touches`](MemoCache::with_admission_touches) times
//! (default two): earlier sightings record a tombstone and the caller
//! runs the cold path; the admitting miss builds and publishes the
//! value. Unique-shape workloads therefore pay only the key digest,
//! never the clone. Callers whose probe pattern arrives in bursts tune
//! the threshold to the burst size — the inflater uses three, because
//! one activity creation inflates the same template twice (shadow and
//! sunny instance) and a single creation is not evidence of reuse.
//!
//! # Kill switch
//!
//! [`set_enabled`]`(false)` (the `--no-memo` flag on every harness) or the
//! `DROIDSIM_NO_MEMO` environment variable bypasses every cache: probes
//! return [`Admission::Skip`] without touching a shard. Because hits are
//! bit-identical to cold derivations, flipping the switch concurrently
//! with running fleets is safe — it only changes *where* results come
//! from, never what they are.
//!
//! # Examples
//!
//! ```
//! use droidsim_kernel::memo::{Admission, MemoCache};
//! use std::sync::Arc;
//!
//! static CACHE: std::sync::OnceLock<MemoCache<u64, String>> = std::sync::OnceLock::new();
//! let cache = CACHE.get_or_init(|| MemoCache::new("doc", 64, |s: &String| s.len() as u64));
//!
//! let derive = || "expensive".to_string();
//! // First sighting: cold path, tombstone recorded.
//! assert!(matches!(cache.probe(7), Admission::Skip));
//! // Second miss: caller builds and publishes.
//! assert!(matches!(cache.probe(7), Admission::Build));
//! cache.publish(7, derive());
//! // Warm from here on.
//! match cache.probe(7) {
//!     Admission::Hit(v) => assert_eq!(*v, "expensive"),
//!     _ => unreachable!("published entries hit"),
//! }
//! ```

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// FNV-1a offset basis — the same constants as the fleet digest and the
/// interner's shard selector, so distribution is already proven on this
/// corpus.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Number of shards per cache. A power of two so shard selection is a
/// mask; 16 is comfortably above any worker count the fleet driver runs.
const SHARD_COUNT: usize = 16;

/// An FNV-1a [`Hasher`] for content digests of `Hash` types (e.g. a
/// `Configuration`, whose fields are all integral). Process-deterministic
/// and allocation-free; used to build content-addressed cache keys.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl FnvHasher {
    /// A hasher seeded with the FNV offset basis.
    pub fn new() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher::new()
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fold 8 bytes per multiply instead of the textbook 1: key
        // digests sit on the warm path of every memoized call, and the
        // byte-at-a-time loop was nearly half the cost of a cache hit
        // on a 145-node template. Only in-process stability matters, so
        // the wider folds are free to diverge from canonical FNV-1a.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.0 ^= u64::from_le_bytes(chunk.try_into().unwrap());
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        for &b in chunks.remainder() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// FNV-1a digest of any `Hash` value. Stable within a process (which is
/// all a memo key needs); not a cross-process fingerprint.
pub fn stable_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FnvHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Folds one `u64` word into an FNV-1a accumulator. Convenience for
/// hand-rolled digest walks (tree shapes, template content).
pub fn fold_u64(acc: u64, word: u64) -> u64 {
    let mut h = acc;
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn enabled_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| AtomicBool::new(std::env::var_os("DROIDSIM_NO_MEMO").is_none()))
}

/// Whether the warm-path caches are live. Defaults to `true` unless the
/// `DROIDSIM_NO_MEMO` environment variable is set.
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Turns every memo cache on or off process-wide (the `--no-memo` kill
/// switch). Safe to flip at any time: hits are bit-identical to cold
/// derivations, so concurrent fleets observe no behavioural difference.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// One cache's counters at a point in time. Telemetry only: every field
/// is scheduling-dependent and must stay out of deterministic
/// fingerprints, like wall-clock histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoSnapshot {
    /// Cache name (stable, e.g. `resolve` / `inflate` / `mapping`).
    pub name: &'static str,
    /// Probes answered from a published entry.
    pub hits: u64,
    /// Probes that fell through to the cold path (tombstone or absent).
    pub misses: u64,
    /// Entries dropped by capacity pressure, reclaim passes or
    /// generation purges.
    pub evictions: u64,
    /// Published (value-bearing) entries currently resident.
    pub entries: u64,
    /// Approximate bytes held by resident published entries.
    pub bytes: u64,
}

/// What a [`MemoCache::probe`] tells the caller to do.
pub enum Admission<V> {
    /// Warm: use this shared value (clone out of the `Arc` if ownership
    /// is needed).
    Hit(Arc<V>),
    /// The key earned admission (second miss): run the cold path, then
    /// [`MemoCache::publish`] the result for future hits.
    Build,
    /// Cold and not (yet) worth caching: run the cold path and move on.
    Skip,
}

/// One shard entry: a tombstone (key seen, not yet admitted) or a
/// published value.
enum Entry<V> {
    /// Sighting marker for touch-counted admission: `seen` counts the
    /// misses recorded so far (mutated under the shard write lock).
    Seen {
        generation: u64,
        touched: AtomicU64,
        seen: u64,
    },
    /// A published, immutable, shared value.
    Full {
        value: Arc<V>,
        generation: u64,
        touched: AtomicU64,
        bytes: u64,
    },
}

impl<V> Entry<V> {
    fn generation(&self) -> u64 {
        match self {
            Entry::Seen { generation, .. } | Entry::Full { generation, .. } => *generation,
        }
    }

    fn touched(&self) -> &AtomicU64 {
        match self {
            Entry::Seen { touched, .. } | Entry::Full { touched, .. } => touched,
        }
    }

    fn is_full(&self) -> bool {
        matches!(self, Entry::Full { .. })
    }
}

/// A shard-per-key concurrent memo table: fixed shard count, per-shard
/// `RwLock`, `Arc`-shared immutable values, generation-tagged
/// invalidation, touch-counted admission and LRU-ish bounded capacity.
///
/// See the [module docs](self) for the design and the determinism
/// contract.
pub struct MemoCache<K, V> {
    name: &'static str,
    shards: [RwLock<HashMap<K, Entry<V>>>; SHARD_COUNT],
    /// Maximum entries per shard (tombstones included).
    shard_capacity: usize,
    /// Misses a key must accumulate before a probe answers `Build`.
    admission_touches: u64,
    /// Approximate byte weight of one value, charged at publish time.
    weigh: fn(&V) -> u64,
    /// Current generation; entries tagged with an older generation are
    /// invisible and purged lazily.
    generation: AtomicU64,
    /// Monotone stamp source for LRU-ish eviction.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V> MemoCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (rounded up to
    /// a multiple of the shard count, minimum one per shard), weighing
    /// published values with `weigh` for the byte gauge.
    pub fn new(name: &'static str, capacity: usize, weigh: fn(&V) -> u64) -> Self {
        MemoCache {
            name,
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            shard_capacity: capacity.div_ceil(SHARD_COUNT).max(1),
            admission_touches: 2,
            weigh,
            generation: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Sets how many misses a key must accumulate before a probe answers
    /// [`Admission::Build`] (default 2). Callers whose workload probes
    /// every key in fixed-size bursts set this to one more than the
    /// burst size, so a single burst is never mistaken for reuse.
    #[must_use]
    pub fn with_admission_touches(mut self, touches: u64) -> Self {
        self.admission_touches = touches.max(1);
        self
    }

    /// The cache's stable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn shard_of(&self, key: &K) -> usize {
        (stable_hash(key) as usize) & (SHARD_COUNT - 1)
    }

    fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Probes the cache. Returns [`Admission::Hit`] with the shared value,
    /// [`Admission::Build`] when the caller should derive and
    /// [`MemoCache::publish`], or [`Admission::Skip`] when the cold path
    /// should run without caching (first sighting, or caches disabled).
    pub fn probe(&self, key: K) -> Admission<V> {
        if !enabled() {
            return Admission::Skip;
        }
        let generation = self.generation.load(Ordering::Relaxed);
        let shard = &self.shards[self.shard_of(&key)];
        if let Some(entry) = shard.read().unwrap().get(&key) {
            if entry.generation() == generation {
                if let Entry::Full { value, touched, .. } = entry {
                    touched.store(self.stamp(), Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Admission::Hit(Arc::clone(value));
                }
                // Tombstone: fall through to the write path to admit.
            }
        }
        let mut map = shard.write().unwrap();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let stamp = self.stamp();
        match map.get_mut(&key) {
            // Double-checked: another worker may have published between
            // our read probe and taking the write lock.
            Some(Entry::Full {
                value,
                generation: g,
                touched,
                ..
            }) if *g == generation => {
                touched.store(stamp, Ordering::Relaxed);
                // Recorded as a miss above: this probe did not avoid the
                // race, and hit-counts are telemetry, not semantics.
                return Admission::Hit(Arc::clone(value));
            }
            Some(Entry::Seen {
                generation: g,
                touched,
                seen,
            }) if *g == generation => {
                touched.store(stamp, Ordering::Relaxed);
                *seen += 1;
                return if *seen >= self.admission_touches {
                    Admission::Build
                } else {
                    Admission::Skip
                };
            }
            // A stale-generation entry: overwrite in place — the key
            // already owns a slot, so no room needs to be made.
            Some(entry) => {
                *entry = Entry::Seen {
                    generation,
                    touched: AtomicU64::new(stamp),
                    seen: 1,
                };
                return if self.admission_touches <= 1 {
                    Admission::Build
                } else {
                    Admission::Skip
                };
            }
            None => {}
        }
        Self::make_room(&mut map, self.shard_capacity, generation, &self.evictions);
        map.insert(
            key,
            Entry::Seen {
                generation,
                touched: AtomicU64::new(stamp),
                seen: 1,
            },
        );
        if self.admission_touches <= 1 {
            Admission::Build
        } else {
            Admission::Skip
        }
    }

    /// Publishes a derived value for `key`. Normally follows an
    /// [`Admission::Build`]; publishing without one is allowed (tests,
    /// pre-warming) and admits the key immediately.
    pub fn publish(&self, key: K, value: V) {
        if !enabled() {
            return;
        }
        let generation = self.generation.load(Ordering::Relaxed);
        let bytes = (self.weigh)(&value);
        let mut map = self.shards[self.shard_of(&key)].write().unwrap();
        // The usual publish follows an admitting probe, so the key
        // already owns a slot (its tombstone) — only a publish for a
        // brand-new key has to make room.
        if !map.contains_key(&key) {
            Self::make_room(&mut map, self.shard_capacity, generation, &self.evictions);
        }
        map.insert(
            key,
            Entry::Full {
                value: Arc::new(value),
                generation,
                touched: AtomicU64::new(self.stamp()),
                bytes,
            },
        );
    }

    /// Drops stale-generation entries, then — if the shard is still at
    /// capacity — the least-recently-touched entry. Called under the
    /// shard write lock before any insert.
    fn make_room(
        map: &mut HashMap<K, Entry<V>>,
        capacity: usize,
        generation: u64,
        evictions: &AtomicU64,
    ) {
        if map.len() < capacity {
            return;
        }
        let before = map.len();
        map.retain(|_, e| e.generation() == generation);
        evictions.fetch_add((before - map.len()) as u64, Ordering::Relaxed);
        while map.len() >= capacity {
            let Some(oldest) = map
                .iter()
                .min_by_key(|(_, e)| e.touched().load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            map.remove(&oldest);
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Bumps the generation: every resident entry becomes invisible at
    /// once and is purged lazily as inserts and reclaims touch its shard.
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// One reclaim pass: drops stale-generation entries everywhere plus
    /// the least-recently-touched half of each shard's survivors.
    /// Returns how many entries were dropped. Results are never affected
    /// — only warmth is.
    pub fn reclaim(&self) -> u64 {
        let generation = self.generation.load(Ordering::Relaxed);
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut map = shard.write().unwrap();
            let before = map.len();
            map.retain(|_, e| e.generation() == generation);
            if !map.is_empty() {
                let mut stamps: Vec<u64> = map
                    .values()
                    .map(|e| e.touched().load(Ordering::Relaxed))
                    .collect();
                stamps.sort_unstable();
                let cutoff = stamps[stamps.len() / 2];
                map.retain(|_, e| e.touched().load(Ordering::Relaxed) > cutoff);
            }
            dropped += (before - map.len()) as u64;
        }
        self.evictions.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Drops every entry and resets nothing else (counters keep
    /// accumulating).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap().clear();
        }
    }

    /// Resident published (value-bearing) entries.
    pub fn len(&self) -> usize {
        let generation = self.generation.load(Ordering::Relaxed);
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap()
                    .values()
                    .filter(|e| e.is_full() && e.generation() == generation)
                    .count()
            })
            .sum()
    }

    /// Whether no published entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters (telemetry; fingerprint-excluded).
    pub fn snapshot(&self) -> MemoSnapshot {
        let generation = self.generation.load(Ordering::Relaxed);
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            for entry in shard.read().unwrap().values() {
                if let Entry::Full { bytes: b, .. } = entry {
                    if entry.generation() == generation {
                        entries += 1;
                        bytes += *b;
                    }
                }
            }
        }
        MemoSnapshot {
            name: self.name,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

/// Control surface a registered cache exposes to the process-wide
/// registry, type-erased over key/value.
pub trait MemoControl: Send + Sync {
    /// Point-in-time counters.
    fn control_snapshot(&self) -> MemoSnapshot;
    /// One reclaim pass; returns entries dropped.
    fn control_reclaim(&self) -> u64;
    /// Generation bump.
    fn control_invalidate(&self);
}

impl<K: Hash + Eq + Clone + Send + Sync, V: Send + Sync> MemoControl for MemoCache<K, V> {
    fn control_snapshot(&self) -> MemoSnapshot {
        self.snapshot()
    }

    fn control_reclaim(&self) -> u64 {
        self.reclaim()
    }

    fn control_invalidate(&self) {
        self.invalidate();
    }
}

fn registry() -> &'static Mutex<Vec<&'static dyn MemoControl>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static dyn MemoControl>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a process-lifetime cache with the global registry so
/// [`snapshot_all`] / [`reclaim_all`] / [`invalidate_all`] reach it.
/// Idempotent per pointer.
pub fn register(cache: &'static dyn MemoControl) {
    let mut list = registry().lock().unwrap();
    if !list
        .iter()
        .any(|c| std::ptr::eq(*c as *const _ as *const (), cache as *const _ as *const ()))
    {
        list.push(cache);
    }
}

/// Counters for every registered cache, sorted by name for stable
/// rendering. Telemetry only — fingerprint-excluded.
pub fn snapshot_all() -> Vec<MemoSnapshot> {
    let mut out: Vec<MemoSnapshot> = registry()
        .lock()
        .unwrap()
        .iter()
        .map(|c| c.control_snapshot())
        .collect();
    out.sort_by_key(|s| s.name);
    out
}

/// One reclaim pass over every registered cache (the daemon's
/// memory-pressure hook). Returns total entries dropped. Never changes
/// results — a post-reclaim probe just misses and re-derives.
pub fn reclaim_all() -> u64 {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|c| c.control_reclaim())
        .sum()
}

/// Bumps every registered cache's generation, making all resident
/// entries invisible at once (purged lazily).
pub fn invalidate_all() {
    for c in registry().lock().unwrap().iter() {
        c.control_invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `&String`, not `&str`: the signature must match the cache's
    // `fn(&V) -> u64` weigher type with `V = String`.
    #[allow(clippy::ptr_arg)]
    fn weigh(s: &String) -> u64 {
        s.len() as u64
    }

    #[test]
    fn two_touch_admission_then_hits() {
        let c: MemoCache<u64, String> = MemoCache::new("t-admit", 64, weigh);
        assert!(matches!(c.probe(1), Admission::Skip), "first sighting");
        assert!(matches!(c.probe(1), Admission::Build), "second miss admits");
        c.publish(1, "value".to_owned());
        match c.probe(1) {
            Admission::Hit(v) => assert_eq!(*v, "value"),
            _ => panic!("published entry must hit"),
        }
        let snap = c.snapshot();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.entries, 1);
        assert_eq!(snap.bytes, 5);
    }

    #[test]
    fn generation_bump_invalidates_everything() {
        let c: MemoCache<u64, String> = MemoCache::new("t-gen", 64, weigh);
        c.probe(9);
        c.publish(9, "old".to_owned());
        assert!(matches!(c.probe(9), Admission::Hit(_)));
        c.invalidate();
        assert!(
            matches!(c.probe(9), Admission::Skip),
            "stale generation is a first sighting again"
        );
        assert_eq!(c.len(), 0, "stale entries are not counted as resident");
    }

    #[test]
    fn capacity_evicts_least_recently_touched() {
        // Capacity 16 → one entry per shard: any second key landing in a
        // used shard evicts the older one.
        let c: MemoCache<u64, String> = MemoCache::new("t-cap", 16, weigh);
        for k in 0..64u64 {
            c.probe(k);
            c.publish(k, format!("v{k}"));
        }
        assert!(c.len() <= 16, "bounded by capacity");
        assert!(c.snapshot().evictions > 0, "evictions happened");
    }

    #[test]
    fn reclaim_halves_and_never_breaks_probes() {
        let c: MemoCache<u64, String> = MemoCache::new("t-reclaim", 256, weigh);
        for k in 0..32u64 {
            c.probe(k);
            c.publish(k, format!("v{k}"));
        }
        let before = c.len();
        let dropped = c.reclaim();
        assert!(dropped > 0);
        assert!(c.len() < before);
        // A dropped key simply re-enters through admission.
        for k in 0..32u64 {
            match c.probe(k) {
                Admission::Hit(v) => assert_eq!(*v, format!("v{k}")),
                Admission::Build => c.publish(k, format!("v{k}")),
                Admission::Skip => {}
            }
        }
    }

    #[test]
    fn disabled_cache_skips_everything() {
        let c: MemoCache<u64, String> = MemoCache::new("t-off", 64, weigh);
        // The global flag is shared; restore it no matter what.
        let was = enabled();
        set_enabled(false);
        assert!(matches!(c.probe(5), Admission::Skip));
        c.publish(5, "ignored".to_owned());
        assert!(matches!(c.probe(5), Admission::Skip));
        set_enabled(true);
        assert!(matches!(c.probe(5), Admission::Skip), "nothing was stored");
        set_enabled(was);
    }

    #[test]
    fn concurrent_probes_agree() {
        let c: std::sync::Arc<MemoCache<u64, String>> =
            std::sync::Arc::new(MemoCache::new("t-race", 64, weigh));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..100 {
                        match c.probe(42) {
                            Admission::Hit(v) => assert_eq!(*v, "shared"),
                            Admission::Build => c.publish(42, "shared".to_owned()),
                            Admission::Skip => {}
                        }
                    }
                });
            }
        });
        match c.probe(42) {
            Admission::Hit(v) => assert_eq!(*v, "shared"),
            _ => panic!("someone must have published"),
        }
    }

    #[test]
    fn stable_hash_is_deterministic_and_input_sensitive() {
        assert_eq!(stable_hash(&(1u64, 2u64)), stable_hash(&(1u64, 2u64)));
        assert_ne!(stable_hash(&(1u64, 2u64)), stable_hash(&(2u64, 1u64)));
        assert_ne!(stable_hash("a"), stable_hash("b"));
    }

    #[test]
    fn fold_u64_mixes() {
        let a = fold_u64(FNV_OFFSET, 1);
        let b = fold_u64(FNV_OFFSET, 2);
        assert_ne!(a, b);
        assert_eq!(fold_u64(a, 7), fold_u64(a, 7));
        assert_ne!(fold_u64(a, 7), fold_u64(b, 7));
    }
}
