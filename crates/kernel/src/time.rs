//! Virtual time: microsecond-resolution instants and durations.
//!
//! `SimTime` is an absolute instant on the simulation clock; `SimDuration` is
//! the difference between two instants. Both are thin wrappers around `u64`
//! microseconds, so arithmetic is exact and hashable; saturating semantics
//! are used on subtraction so cost-model code never panics on underflow.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An absolute instant on the virtual simulation clock, in microseconds
/// since simulation start.
///
/// # Examples
///
/// ```
/// use droidsim_kernel::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(89);
/// assert_eq!(t.as_micros(), 89_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
///
/// # Examples
///
/// ```
/// use droidsim_kernel::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// assert_eq!(d.as_millis_f64(), 2.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant at `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant at `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant at `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// This instant as microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as (possibly fractional) milliseconds since start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant as (possibly fractional) seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        if millis <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((millis * 1_000.0).round() as u64)
    }

    /// This span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This span in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the span by a float factor, rounding to the nearest
    /// microsecond and clamping negative results to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_millis_f64(self.as_millis_f64() * factor)
    }

    /// Checked subtraction; `None` if `other` is larger.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(10) + SimDuration::from_micros(250);
        assert_eq!(t.as_micros(), 10_250);
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_micros(250));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis(1) - SimDuration::from_millis(5),
            SimDuration::ZERO
        );
    }

    #[test]
    fn fractional_millis_round() {
        assert_eq!(SimDuration::from_millis_f64(2.5).as_micros(), 2_500);
        assert_eq!(SimDuration::from_millis_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(0.0004).as_micros(), 0);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimTime::from_millis(89).to_string(), "89.000ms");
        assert_eq!(SimDuration::from_micros(8_600).to_string(), "8.600ms");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10).mul_f64(1.5);
        assert_eq!(d.as_micros(), 15_000);
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(-2.0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn sum_accumulates() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn ordering_follows_micros() {
        assert!(SimTime::from_micros(1) < SimTime::from_millis(1));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }
}
