//! Deterministic discrete-event simulation kernel.
//!
//! The whole RCHDroid reproduction runs on a *virtual* clock: there are no OS
//! threads, no wall-clock reads, and every run is reproducible from a seed.
//! This crate provides the three primitives everything else builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time,
//! * [`EventQueue`] — a monotone priority queue of timestamped events with
//!   FIFO tie-breaking (two events scheduled for the same instant fire in the
//!   order they were scheduled),
//! * [`SplitMix64`] / [`Xoshiro256`] — small, dependency-free deterministic
//!   PRNGs used for workload generation and jitter injection,
//! * [`IdGen`] — monotonically increasing id allocation for tokens, views,
//!   records, …
//! * [`journal`] — `key=value` line serialization for the fleet's
//!   append-only checkpoint journals.
//! * [`alloc_track`] — coarse allocation-event accounting so the fleet
//!   ledger can report allocations-per-sim.
//! * [`memo`] — shard-per-key, content-addressed memoization for the
//!   warm-path caches (resolution, inflation, mapping plans).
//!
//! # Examples
//!
//! ```
//! use droidsim_kernel::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "second");
//! q.schedule(SimTime::ZERO, "first");
//! assert_eq!(q.pop().map(|e| e.payload), Some("first"));
//! assert_eq!(q.pop().map(|e| e.payload), Some("second"));
//! ```

pub mod alloc_track;
pub mod id;
pub mod intern;
pub mod journal;
pub mod memo;
pub mod queue;
pub mod rng;
pub mod time;

pub use id::IdGen;
pub use intern::Symbol;
pub use queue::{Event, EventQueue};
pub use rng::{SplitMix64, Xoshiro256};
pub use time::{SimDuration, SimTime};
