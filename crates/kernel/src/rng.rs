//! Small deterministic PRNGs.
//!
//! Workload generation and jitter injection must be reproducible from a
//! seed, so the simulator carries its own tiny generators instead of relying
//! on thread-local entropy. [`SplitMix64`] is used for seeding and cheap
//! hashing; [`Xoshiro256`] (xoshiro256**) is the workhorse generator.

/// The SplitMix64 generator — fast, tiny state, good for seeding.
///
/// # Examples
///
/// ```
/// use droidsim_kernel::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256** generator: the simulator's general-purpose PRNG.
///
/// # Examples
///
/// ```
/// use droidsim_kernel::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from(7);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed` via
    /// SplitMix64 (the construction recommended by the xoshiro authors).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Creates the `stream`-th independent generator derived from
    /// `root_seed`.
    ///
    /// The fleet driver gives every simulated device its own RNG stream so
    /// that the draws one device makes can never perturb another — a
    /// prerequisite for a parallel run being bit-identical to the serial
    /// one. The stream index is folded into the seed through two SplitMix64
    /// rounds, so neighbouring indices produce unrelated states and
    /// `stream(seed, 0)` differs from `seed_from(seed)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use droidsim_kernel::Xoshiro256;
    ///
    /// let mut a = Xoshiro256::stream(42, 3);
    /// let mut b = Xoshiro256::stream(42, 3);
    /// let mut c = Xoshiro256::stream(42, 4);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// assert_ne!(a.next_u64(), c.next_u64());
    /// ```
    pub fn stream(root_seed: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(root_seed);
        let lane = sm
            .next_u64()
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self::seed_from(SplitMix64::new(lane).next_u64())
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → exactly representable uniform double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection-free multiply-shift (Lemire) would need u128; with the
        // small bounds used here modulo bias is negligible, but we use the
        // widening multiply to stay exact anyway.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// A uniform float in `[lo, hi)`.
    pub fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        for i in (1..n).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Xoshiro256::seed_from(4);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            let v = rng.next_range(10, 12);
            assert!((10..=12).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all range values should appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from(6);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }

    #[test]
    fn bool_probability_is_roughly_right() {
        let mut rng = Xoshiro256::seed_from(7);
        let hits = (0..10_000).filter(|_| rng.next_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        Xoshiro256::seed_from(8).next_below(0);
    }

    #[test]
    fn streams_are_deterministic_and_independent() {
        let mut a = Xoshiro256::stream(9, 0);
        let mut b = Xoshiro256::stream(9, 0);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut lanes: Vec<u64> = (0..16)
            .map(|i| Xoshiro256::stream(9, i).next_u64())
            .collect();
        lanes.push(Xoshiro256::seed_from(9).next_u64());
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), 17, "stream lanes must not collide");
    }
}
