//! The RuntimeDroid baseline (Farooq & Zhao, MobiSys'18).
//!
//! RuntimeDroid is the state-of-the-art *Static-Analysis-way* comparator
//! in the paper's §5.7: an automatic patch tool that rewrites each app so
//! a runtime change no longer restarts the activity — the patched app
//! reloads resources and reconstructs its view tree *in place*, on the
//! same instance (hot resource reloading + dynamic view migration).
//!
//! Consequences the model reproduces:
//!
//! * **Faster than RCHDroid** — no second instance is created and no
//!   system-level IPC round trip is paid (Fig. 12),
//! * **Member state survives for free** — the instance is never destroyed,
//! * **But it needs per-app patches** — 760–2077 modified LoC per app
//!   (Table 4), and its static view reconstruction cannot rebuild views
//!   that are not declared in the layout resource (dynamically created
//!   views are dropped — the limitation §2.2 describes),
//! * **Per-app deployment cost** — patching takes 12.9–161.6 s per app
//!   versus one 92.87 s system image deployment for RCHDroid.

use droidsim_app::{ActivityInstanceId, ActivityThread, AppModel, ThreadError};
use droidsim_atms::{ActivityRecordId, Atms, AtmsError, ConfigDecision};
use droidsim_view::inflate;
use serde::{Deserialize, Serialize};

/// The outcome of RuntimeDroid's in-place handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtdOutcome {
    /// The (single, preserved) activity instance.
    pub instance: ActivityInstanceId,
    /// Views in the reconstructed tree.
    pub view_count: usize,
    /// Views present before reconstruction but not re-creatable from the
    /// layout resource (the static tool's blind spot).
    pub dropped_dynamic_views: usize,
}

/// Baseline errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RtdError {
    /// Nothing in the foreground.
    NoForegroundActivity,
    /// Activity-thread failure.
    Thread(ThreadError),
    /// ATMS failure.
    Atms(AtmsError),
}

impl core::fmt::Display for RtdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RtdError::NoForegroundActivity => write!(f, "no foreground activity"),
            RtdError::Thread(e) => write!(f, "{e}"),
            RtdError::Atms(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RtdError {}

impl From<ThreadError> for RtdError {
    fn from(e: ThreadError) -> Self {
        RtdError::Thread(e)
    }
}

impl From<AtmsError> for RtdError {
    fn from(e: AtmsError) -> Self {
        RtdError::Atms(e)
    }
}

/// The RuntimeDroid handler: in-place resource reload + view-tree
/// reconstruction on the surviving instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeDroid;

impl RuntimeDroid {
    /// Creates the handler.
    pub fn new() -> Self {
        RuntimeDroid
    }

    /// Handles a runtime change for the foreground activity: saves the
    /// hierarchy state, re-inflates the layout for the new configuration
    /// *into the same instance*, and restores the state. Dynamic views
    /// (added by code, absent from the layout resource) are lost.
    ///
    /// # Errors
    ///
    /// [`RtdError::NoForegroundActivity`] without a foreground activity;
    /// propagated thread/ATMS errors otherwise.
    pub fn handle_configuration_change(
        &self,
        thread: &mut ActivityThread,
        atms: &mut Atms,
        model: &dyn AppModel,
    ) -> Result<RtdOutcome, RtdError> {
        let record: ActivityRecordId = atms
            .foreground_record()
            .ok_or(RtdError::NoForegroundActivity)?;
        let instance = thread
            .instance_for_token(record)
            .ok_or(RtdError::NoForegroundActivity)?;
        // The patched app masks the relaunch (equivalent to RCHDroid's
        // prevent flag at the record level).
        let decision = atms.ensure_activity_configuration(record, true)?;
        if decision == ConfigDecision::NoChange {
            let a = thread.instance(instance)?;
            return Ok(RtdOutcome {
                instance,
                view_count: a.tree.view_count(),
                dropped_dynamic_views: 0,
            });
        }

        let config = atms.global_config().clone();
        let activity = thread.instance_mut(instance)?;
        let old_count = activity.tree.view_count();
        let hierarchy = activity.tree.save_hierarchy_state();

        // Hot reload: re-inflate the layout resource for the new config.
        let template = model
            .resources()
            .resolve_layout(model.main_layout(), &config)
            .cloned()
            .unwrap_or_else(|_| {
                droidsim_resources::LayoutTemplate::new(
                    "empty",
                    droidsim_resources::LayoutNode::new("FrameLayout").with_id("content"),
                )
            });
        let (mut tree, _) = inflate(&template, model.resources(), &config);
        tree.restore_hierarchy_state(&hierarchy);
        // Dynamic migration: RuntimeDroid's patch copies live view values
        // object-to-object, so state survives even for views that do not
        // implement onSaveInstanceState — as long as the view is declared
        // in the layout resource and can be matched by id.
        for id in tree.iter_ids() {
            let Some(name) = tree.view(id).ok().and_then(|v| v.id_name) else {
                continue;
            };
            if let Some(old_id) = activity.tree.id_name_index().get(&name).copied() {
                if let Ok(old) = activity.tree.view(old_id) {
                    // Direct object access: user values migrate even when
                    // the view skips the save/restore protocol, while the
                    // freshly-loaded resources (drawables, strings) of the
                    // new configuration are kept.
                    let mut user_state = old.attrs.save_user_state();
                    if !old.freezes_text {
                        // Label text is content (possibly localized for
                        // the old configuration), not user state.
                        user_state.remove("text");
                    }
                    if let Ok(new) = tree.view_mut(id) {
                        new.attrs.restore_user_state(&user_state);
                    }
                }
            }
        }
        let new_count = tree.view_count();
        activity.tree = tree;
        // Member state survives untouched: same instance, no restart.

        Ok(RtdOutcome {
            instance,
            view_count: new_count,
            dropped_dynamic_views: old_count.saturating_sub(new_count),
        })
    }
}

/// One row of Table 4: the per-app patching cost of RuntimeDroid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatchInfo {
    /// App name.
    pub app: &'static str,
    /// App LoC on stock Android 10.
    pub loc_android10: u32,
    /// App LoC after RuntimeDroid patching.
    pub loc_runtimedroid: u32,
}

impl PatchInfo {
    /// Modified LoC (Table 4's last column).
    pub fn modification_loc(&self) -> u32 {
        self.loc_runtimedroid - self.loc_android10
    }
}

/// Table 4's eight evaluation apps.
pub fn table4_apps() -> Vec<PatchInfo> {
    vec![
        PatchInfo {
            app: "Mdapp",
            loc_android10: 26_342,
            loc_runtimedroid: 28_419,
        },
        PatchInfo {
            app: "Remindly",
            loc_android10: 6_966,
            loc_runtimedroid: 7_820,
        },
        PatchInfo {
            app: "AlarmKlock",
            loc_android10: 2_838,
            loc_runtimedroid: 3_610,
        },
        PatchInfo {
            app: "Weather",
            loc_android10: 10_949,
            loc_runtimedroid: 12_208,
        },
        PatchInfo {
            app: "PDFCreator",
            loc_android10: 19_624,
            loc_runtimedroid: 20_895,
        },
        PatchInfo {
            app: "Sieben",
            loc_android10: 20_518,
            loc_runtimedroid: 22_123,
        },
        PatchInfo {
            app: "AndroPTPB",
            loc_android10: 3_405,
            loc_runtimedroid: 5_127,
        },
        PatchInfo {
            app: "VlilleChecker",
            loc_android10: 12_083,
            loc_runtimedroid: 12_843,
        },
    ]
}

/// Deployment-cost constants (§5.7): RCHDroid deploys one system image;
/// RuntimeDroid patches every app.
pub mod deployment {
    /// RCHDroid's one-off system deployment time (ms).
    pub const RCHDROID_SYSTEM_DEPLOY_MS: u64 = 92_870;
    /// RuntimeDroid's per-app patch time range (ms).
    pub const RUNTIMEDROID_PATCH_MS: (u64, u64) = (12_867, 161_598);
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidsim_app::SimpleApp;
    use droidsim_atms::Intent;
    use droidsim_config::Configuration;
    use droidsim_view::{ViewKind, ViewOp};

    fn boot() -> (SimpleApp, Atms, ActivityThread, ActivityInstanceId) {
        let model = SimpleApp::with_views(3);
        let mut atms = Atms::new(Configuration::phone_portrait());
        let mut thread = ActivityThread::new();
        let start = atms.start_activity(&Intent::new(model.component_name()));
        let instance = thread.perform_launch_activity(
            &model,
            start.record,
            Configuration::phone_portrait(),
            None,
        );
        thread.resume_sequence(instance, false).unwrap();
        (model, atms, thread, instance)
    }

    #[test]
    fn in_place_handling_keeps_the_instance() {
        let (model, mut atms, mut thread, instance) = boot();
        atms.update_global_config(Configuration::phone_landscape());
        let outcome = RuntimeDroid::new()
            .handle_configuration_change(&mut thread, &mut atms, &model)
            .unwrap();
        assert_eq!(outcome.instance, instance);
        assert_eq!(thread.alive_instances().len(), 1, "no second instance ever");
    }

    #[test]
    fn member_state_survives_for_free() {
        let (model, mut atms, mut thread, instance) = boot();
        thread
            .instance_mut(instance)
            .unwrap()
            .member_state
            .put_i32("field", 9);
        atms.update_global_config(Configuration::phone_landscape());
        RuntimeDroid::new()
            .handle_configuration_change(&mut thread, &mut atms, &model)
            .unwrap();
        assert_eq!(
            thread.instance(instance).unwrap().member_state.i32("field"),
            Some(9)
        );
    }

    #[test]
    fn view_state_restores_through_hierarchy() {
        let (model, mut atms, mut thread, instance) = boot();
        {
            let a = thread.instance_mut(instance).unwrap();
            let root = a.tree.find_by_id_name("root").unwrap();
            a.tree.apply(root, ViewOp::ScrollTo(480)).unwrap();
        }
        atms.update_global_config(Configuration::phone_landscape());
        RuntimeDroid::new()
            .handle_configuration_change(&mut thread, &mut atms, &model)
            .unwrap();
        let a = thread.instance(instance).unwrap();
        let root = a.tree.find_by_id_name("root").unwrap();
        assert_eq!(a.tree.view(root).unwrap().attrs.scroll_y, 480);
    }

    #[test]
    fn dynamic_views_are_dropped() {
        // §2.2: RuntimeDroid's static reconstruction cannot rebuild views
        // created by code.
        let (model, mut atms, mut thread, instance) = boot();
        {
            let a = thread.instance_mut(instance).unwrap();
            let root = a.tree.find_by_id_name("root").unwrap();
            a.tree
                .add_view(root, ViewKind::TextView, Some("dynamic_banner"))
                .unwrap();
        }
        atms.update_global_config(Configuration::phone_landscape());
        let outcome = RuntimeDroid::new()
            .handle_configuration_change(&mut thread, &mut atms, &model)
            .unwrap();
        assert_eq!(outcome.dropped_dynamic_views, 1);
        let a = thread.instance(instance).unwrap();
        assert!(a.tree.find_by_id_name("dynamic_banner").is_none());
    }

    #[test]
    fn async_task_cannot_crash_the_surviving_instance() {
        let (model, mut atms, mut thread, instance) = boot();
        thread
            .start_async(
                instance,
                model.button_task(),
                droidsim_kernel::SimTime::ZERO,
            )
            .unwrap();
        atms.update_global_config(Configuration::phone_landscape());
        RuntimeDroid::new()
            .handle_configuration_change(&mut thread, &mut atms, &model)
            .unwrap();
        thread.pump_async(droidsim_kernel::SimTime::from_secs(5));
        let messages = thread.drain_ui(droidsim_kernel::SimTime::from_secs(5));
        let droidsim_app::UiMessage::AsyncResult(work) = &messages[0];
        thread.deliver_async(&model, work).unwrap();
    }

    #[test]
    fn table4_matches_the_paper() {
        let apps = table4_apps();
        assert_eq!(apps.len(), 8);
        let mods: Vec<u32> = apps.iter().map(PatchInfo::modification_loc).collect();
        assert_eq!(mods, vec![2077, 854, 772, 1259, 1271, 1605, 1722, 760]);
        let (lo, hi) = (mods.iter().min().unwrap(), mods.iter().max().unwrap());
        assert_eq!((*lo, *hi), (760, 2077), "the 760–2077 LoC range of §5.7");
    }

    #[test]
    fn no_change_is_a_cheap_no_op() {
        let (model, mut atms, mut thread, instance) = boot();
        let same = atms.global_config().clone();
        atms.update_global_config(same);
        let outcome = RuntimeDroid::new()
            .handle_configuration_change(&mut thread, &mut atms, &model)
            .unwrap();
        assert_eq!(outcome.instance, instance);
        assert_eq!(outcome.dropped_dynamic_views, 0);
    }
}
