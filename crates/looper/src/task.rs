//! Asynchronous background tasks.

use droidsim_kernel::{SimDuration, SimTime};
use std::collections::BTreeMap;

droidsim_kernel::define_id! {
    /// Identifies one in-flight asynchronous task.
    pub struct AsyncTaskId
}

/// A finished task: id, completion time and its payload, ready to be
/// posted to the UI thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskCompletion<P> {
    /// The task.
    pub id: AsyncTaskId,
    /// When it finished.
    pub finished_at: SimTime,
    /// The payload handed back to the UI-thread callback.
    pub payload: P,
}

#[derive(Debug, Clone)]
struct InFlight<P> {
    deadline: SimTime,
    payload: P,
}

/// The set of in-flight background tasks of one app process.
///
/// Models `AsyncTask`/worker threads: work takes a fixed virtual duration
/// and, on completion, the payload must be handed to the UI thread.
/// Cancellation mirrors `AsyncTask.cancel` — the paper's point is that
/// 92.4 % of developers *don't* cancel on configuration change.
///
/// # Examples
///
/// ```
/// use droidsim_kernel::{SimDuration, SimTime};
/// use droidsim_looper::AsyncTaskPool;
///
/// let mut pool = AsyncTaskPool::new();
/// let id = pool.spawn(SimTime::ZERO, SimDuration::from_secs(5), "work");
/// assert!(pool.cancel(id));
/// assert!(pool.completions_until(SimTime::from_secs(10)).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct AsyncTaskPool<P> {
    next_id: u64,
    in_flight: BTreeMap<AsyncTaskId, InFlight<P>>,
}

impl<P> AsyncTaskPool<P> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        AsyncTaskPool {
            next_id: 0,
            in_flight: BTreeMap::new(),
        }
    }

    /// Starts a task at `now` that will complete after `duration`,
    /// delivering `payload`.
    pub fn spawn(&mut self, now: SimTime, duration: SimDuration, payload: P) -> AsyncTaskId {
        let id = AsyncTaskId::new(self.next_id);
        self.next_id += 1;
        self.in_flight.insert(
            id,
            InFlight {
                deadline: now + duration,
                payload,
            },
        );
        id
    }

    /// Cancels an in-flight task. Returns `false` if it already completed
    /// (or never existed) — matching `AsyncTask.cancel`'s best-effort
    /// contract.
    pub fn cancel(&mut self, id: AsyncTaskId) -> bool {
        self.in_flight.remove(&id).is_some()
    }

    /// Cancels every in-flight task (what a diligent `onDestroy` does).
    pub fn cancel_all(&mut self) -> usize {
        let n = self.in_flight.len();
        self.in_flight.clear();
        n
    }

    /// Removes and returns every task whose deadline is at or before
    /// `now`, ordered by completion time then spawn order.
    pub fn completions_until(&mut self, now: SimTime) -> Vec<TaskCompletion<P>> {
        let done: Vec<AsyncTaskId> = self
            .in_flight
            .iter()
            .filter(|(_, t)| t.deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        let mut completions: Vec<TaskCompletion<P>> = done
            .into_iter()
            .map(|id| {
                let t = self.in_flight.remove(&id).expect("collected above");
                TaskCompletion {
                    id,
                    finished_at: t.deadline,
                    payload: t.payload,
                }
            })
            .collect();
        completions.sort_by_key(|c| (c.finished_at, c.id));
        completions
    }

    /// The earliest pending deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.in_flight.values().map(|t| t.deadline).min()
    }

    /// Number of in-flight tasks.
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether no tasks are in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }
}

impl<P> Default for AsyncTaskPool<P> {
    fn default() -> Self {
        AsyncTaskPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_complete_at_their_deadline() {
        let mut pool = AsyncTaskPool::new();
        pool.spawn(SimTime::ZERO, SimDuration::from_secs(5), "a");
        pool.spawn(SimTime::ZERO, SimDuration::from_secs(2), "b");
        assert_eq!(pool.next_deadline(), Some(SimTime::from_secs(2)));

        let first = pool.completions_until(SimTime::from_secs(3));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].payload, "b");

        let second = pool.completions_until(SimTime::from_secs(5));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].payload, "a");
        assert!(pool.is_empty());
    }

    #[test]
    fn completions_sort_by_time_then_spawn_order() {
        let mut pool = AsyncTaskPool::new();
        let t1 = pool.spawn(SimTime::ZERO, SimDuration::from_secs(3), 1);
        let t2 = pool.spawn(SimTime::ZERO, SimDuration::from_secs(3), 2);
        let t3 = pool.spawn(SimTime::ZERO, SimDuration::from_secs(1), 3);
        let done = pool.completions_until(SimTime::from_secs(10));
        let order: Vec<AsyncTaskId> = done.iter().map(|c| c.id).collect();
        assert_eq!(order, vec![t3, t1, t2]);
    }

    #[test]
    fn cancel_prevents_completion() {
        let mut pool = AsyncTaskPool::new();
        let id = pool.spawn(SimTime::ZERO, SimDuration::from_secs(1), ());
        assert!(pool.cancel(id));
        assert!(!pool.cancel(id), "second cancel is a no-op");
        assert!(pool.completions_until(SimTime::from_secs(2)).is_empty());
    }

    #[test]
    fn cancel_all_reports_count() {
        let mut pool = AsyncTaskPool::new();
        pool.spawn(SimTime::ZERO, SimDuration::from_secs(1), ());
        pool.spawn(SimTime::ZERO, SimDuration::from_secs(2), ());
        assert_eq!(pool.cancel_all(), 2);
        assert!(pool.is_empty());
    }

    #[test]
    fn completed_task_cannot_be_cancelled() {
        let mut pool = AsyncTaskPool::new();
        let id = pool.spawn(SimTime::ZERO, SimDuration::from_secs(1), ());
        let done = pool.completions_until(SimTime::from_secs(1));
        assert_eq!(done.len(), 1);
        assert!(!pool.cancel(id));
    }
}
