//! Per-thread message queues.

use droidsim_kernel::{EventQueue, SimTime};

/// A message delivered to a thread's looper at a virtual instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message<M> {
    /// Delivery time.
    pub when: SimTime,
    /// Payload.
    pub what: M,
}

/// A thread's message queue (Android `MessageQueue` + `Looper` combined:
/// the simulator's scheduler plays the role of `Looper.loop()`).
///
/// # Examples
///
/// ```
/// use droidsim_kernel::SimTime;
/// use droidsim_looper::MessageQueue;
///
/// let mut q = MessageQueue::new();
/// q.post(SimTime::from_millis(10), "later");
/// q.post(SimTime::from_millis(1), "sooner");
/// let due = q.drain_until(SimTime::from_millis(5));
/// assert_eq!(due.len(), 1);
/// assert_eq!(due[0].what, "sooner");
/// ```
#[derive(Debug)]
pub struct MessageQueue<M> {
    queue: EventQueue<M>,
}

impl<M> MessageQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        MessageQueue {
            queue: EventQueue::new(),
        }
    }

    /// Posts a message for delivery at `when`.
    pub fn post(&mut self, when: SimTime, what: M) {
        self.queue.schedule(when, what);
    }

    /// Removes and returns every message due at or before `now`, in
    /// delivery order.
    pub fn drain_until(&mut self, now: SimTime) -> Vec<Message<M>> {
        let mut due = Vec::new();
        while let Some(t) = self.queue.peek_time() {
            if t > now {
                break;
            }
            let event = self.queue.pop().expect("peeked event exists");
            due.push(Message {
                when: event.at,
                what: event.payload,
            });
        }
        due
    }

    /// The delivery time of the next pending message.
    pub fn next_due(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drops all pending messages (process death).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

impl<M> Default for MessageQueue<M> {
    fn default() -> Self {
        MessageQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_respects_deadline() {
        let mut q = MessageQueue::new();
        q.post(SimTime::from_millis(1), 1);
        q.post(SimTime::from_millis(2), 2);
        q.post(SimTime::from_millis(10), 10);
        let due = q.drain_until(SimTime::from_millis(2));
        assert_eq!(due.iter().map(|m| m.what).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_due(), Some(SimTime::from_millis(10)));
    }

    #[test]
    fn same_instant_messages_preserve_post_order() {
        let mut q = MessageQueue::new();
        let t = SimTime::from_millis(3);
        q.post(t, "a");
        q.post(t, "b");
        q.post(t, "c");
        let due: Vec<&str> = q.drain_until(t).into_iter().map(|m| m.what).collect();
        assert_eq!(due, vec!["a", "b", "c"]);
    }

    #[test]
    fn clear_empties() {
        let mut q = MessageQueue::new();
        q.post(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.drain_until(SimTime::from_secs(100)).is_empty());
    }
}
