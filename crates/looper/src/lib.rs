//! Message queues and asynchronous tasks on the virtual clock.
//!
//! Android's threading contract is central to the paper's problem
//! statement: only the activity (UI) thread may touch the view tree, so
//! worker threads finish by *posting a message* to the UI thread's queue;
//! the message runs a user-defined callback which updates views. If a
//! restart destroyed those views in the meantime, the callback crashes the
//! app (Fig. 1a). This crate models exactly that machinery:
//!
//! * [`MessageQueue`] — a per-thread queue of timestamped messages,
//! * [`AsyncTaskPool`] — in-flight background work; each task completes at
//!   a virtual deadline and delivers its payload to the UI queue,
//!   supporting cancellation (which well-written apps do and the TP-set
//!   apps famously do not).
//!
//! # Examples
//!
//! ```
//! use droidsim_kernel::{SimDuration, SimTime};
//! use droidsim_looper::AsyncTaskPool;
//!
//! let mut pool: AsyncTaskPool<&'static str> = AsyncTaskPool::new();
//! let start = SimTime::ZERO;
//! pool.spawn(start, SimDuration::from_secs(5), "update images");
//! assert!(pool.completions_until(start + SimDuration::from_secs(1)).is_empty());
//! let done = pool.completions_until(start + SimDuration::from_secs(5));
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].payload, "update images");
//! ```

pub mod message;
pub mod task;

pub use message::{Message, MessageQueue};
pub use task::{AsyncTaskId, AsyncTaskPool, TaskCompletion};
