//! Extracting the analyzable *shape* of an app from its model.
//!
//! The analyzer never runs the simulator's change protocol; it only
//! performs the same deterministic construction the framework would do
//! on launch — strict layout inflation plus `onCreate` (which is where
//! dynamically created views appear) — once per orientation. Everything
//! the six passes need is captured here: the per-configuration view
//! trees, the async specs, and the app's manifest-level flags.

use droidsim_app::{Activity, ActivityInstanceId, AppModel, AsyncSpec};
use droidsim_atms::ActivityRecordId;
use droidsim_config::{ConfigChanges, Configuration};
use droidsim_view::{try_inflate, ViewError, ViewId, ViewTree};
use rch_workloads::GenericAppSpec;

/// One inflated configuration of the app's main layout.
#[derive(Debug, Clone)]
pub struct ConfigTree {
    /// Qualifier label (`"portrait"` / `"landscape"`).
    pub label: &'static str,
    /// The tree after inflation **and** `onCreate` (dynamic views
    /// included), exactly what a fresh launch in this configuration
    /// shows.
    pub tree: ViewTree,
}

/// The statically visible shape of one app.
#[derive(Debug, Clone)]
pub struct AppShape {
    /// App name as the corpus lists it.
    pub app: String,
    /// The activity component.
    pub activity: String,
    /// Whether the app declares `android:configChanges` for orientation
    /// changes (self-handling).
    pub handles_changes: bool,
    /// Whether the app implements `onSaveInstanceState`.
    pub saves_instance_state: bool,
    /// Async work the test scenario has in flight across the change.
    pub async_specs: Vec<AsyncSpec>,
    /// The inflated tree per orientation.
    pub trees: Vec<ConfigTree>,
    /// Strict-inflation failures per orientation label: templates the
    /// lenient runtime inflater would silently truncate.
    pub inflate_errors: Vec<(&'static str, ViewError)>,
}

/// The two configurations the §6 oracle rotates between.
fn analyzed_configs() -> [(&'static str, Configuration); 2] {
    [
        ("portrait", Configuration::phone_portrait()),
        ("landscape", Configuration::phone_landscape()),
    ]
}

impl AppShape {
    /// Extracts the shape of a corpus descriptor.
    pub fn from_spec(spec: &GenericAppSpec) -> AppShape {
        let app = spec.build();
        let async_specs = if spec.uses_async_task {
            vec![spec.async_task()]
        } else {
            Vec::new()
        };
        AppShape::from_model(&spec.name, &app, async_specs)
    }

    /// Extracts the shape of any [`AppModel`] (e.g. `SimpleApp`).
    ///
    /// `async_specs` is passed in because the trait has no way to ask a
    /// model what background work its scenario starts.
    pub fn from_model(app: &str, model: &dyn AppModel, async_specs: Vec<AsyncSpec>) -> AppShape {
        let mut trees = Vec::new();
        let mut inflate_errors = Vec::new();
        for (label, config) in analyzed_configs() {
            // Strict pre-flight on the raw template: the runtime
            // inflater is lenient and would hide a truncated subtree.
            if let Ok(template) = model
                .resources()
                .resolve_layout(model.main_layout(), &config)
            {
                if let Err(e) = try_inflate(template, model.resources(), &config) {
                    inflate_errors.push((label, e));
                }
            }
            // A throwaway instance gives the post-`onCreate` tree —
            // including dynamically added views — without any device.
            let mut activity = Activity::new(
                ActivityInstanceId::new(0),
                ActivityRecordId::new(0),
                model.component_name(),
                config,
            );
            activity.perform_create(model, None);
            trees.push(ConfigTree {
                label,
                tree: activity.tree.clone(),
            });
        }
        AppShape {
            app: app.to_owned(),
            activity: model.component_name().to_owned(),
            handles_changes: model.handled_changes().contains(ConfigChanges::ORIENTATION),
            saves_instance_state: model.implements_save_instance_state(),
            async_specs,
            trees,
            inflate_errors,
        }
    }
}

/// The `decor>root>…` id path of a view, for [`crate::diag::Loc`]
/// locations. Anonymous views contribute their class name.
pub fn view_path(tree: &ViewTree, id: ViewId) -> String {
    let mut segments = Vec::new();
    let mut cursor = Some(id);
    while let Some(v) = cursor {
        let Ok(node) = tree.view(v) else { break };
        let segment = node
            .id_name_str()
            .map_or_else(|| node.kind.class_name().to_owned(), str::to_owned);
        segments.push(segment);
        cursor = node.parent;
    }
    segments.reverse();
    segments.join(">")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rch_workloads::{StateItem, StateMechanism};

    fn spec_with(item: StateItem) -> GenericAppSpec {
        let mut s = GenericAppSpec::sized("ShapeProbe", "1K+", false);
        s.state_items.push(item);
        s
    }

    #[test]
    fn shape_has_both_orientations_and_dynamic_views() {
        let spec = spec_with(StateItem::new(
            "dyn_state",
            StateMechanism::DynamicViewNoSave,
            "v",
        ));
        let shape = AppShape::from_spec(&spec);
        assert_eq!(shape.trees.len(), 2);
        for t in &shape.trees {
            assert!(
                t.tree.find_by_id_name("dyn_state").is_some(),
                "{}: dynamic views are part of the analyzable shape",
                t.label
            );
        }
        assert!(shape.inflate_errors.is_empty());
        assert!(!shape.handles_changes);
    }

    #[test]
    fn view_paths_walk_from_decor_down() {
        let spec = spec_with(StateItem::new(
            "issue_state",
            StateMechanism::CustomViewNoSave,
            "v",
        ));
        let shape = AppShape::from_spec(&spec);
        let tree = &shape.trees[0].tree;
        let id = tree.find_by_id_name("issue_state").unwrap();
        let path = view_path(tree, id);
        assert!(
            path.ends_with(">root>issue_state"),
            "path walks decor→root→view: {path}"
        );
    }
}
