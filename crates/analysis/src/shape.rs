//! Extracting the analyzable *shape* of an app from its model.
//!
//! The analyzer never runs the simulator's change protocol; it only
//! performs the same deterministic construction the framework would do
//! on launch — strict layout inflation plus `onCreate` (which is where
//! dynamically created views appear) — once per orientation. Everything
//! the passes need is captured here: the per-configuration view trees,
//! the async specs, the app's manifest-level flags, and (for data-loss
//! corpus apps) the per-field persistence descriptors.
//!
//! Extraction is memoized through [`kernel::memo`](droidsim_kernel::memo):
//! the throwaway `perform_create` per configuration re-inflates
//! identical templates, and corpus runs (lint, then the differential's
//! static side, then a bench pass) extract the same shapes repeatedly.
//! The cache key is the descriptor's content digest × the analyzed
//! configuration digests — the descriptor deterministically generates
//! the resource table, so keying on its content is the content-addressed
//! equivalent of template digest × config digest without paying for
//! resource construction on a hit. `tests/memo_parity.rs` holds the
//! memoized path byte-equal to the cold path.

use droidsim_app::{Activity, ActivityInstanceId, AppModel, AsyncSpec};
use droidsim_atms::ActivityRecordId;
use droidsim_config::{ConfigChanges, Configuration};
use droidsim_fleet::Digest;
use droidsim_kernel::memo::{self, Admission, MemoCache};
use droidsim_view::{try_inflate, ViewError, ViewId, ViewTree};
use rch_workloads::{DataLossScenario, FieldOwner, FieldPersistence, GenericAppSpec};
use std::sync::{Once, OnceLock};

/// One inflated configuration of the app's main layout.
#[derive(Debug, Clone)]
pub struct ConfigTree {
    /// Qualifier label (`"portrait"` / `"landscape"`).
    pub label: &'static str,
    /// The tree after inflation **and** `onCreate` (dynamic views
    /// included), exactly what a fresh launch in this configuration
    /// shows.
    pub tree: ViewTree,
}

/// The statically visible shape of one app.
#[derive(Debug, Clone)]
pub struct AppShape {
    /// App name as the corpus lists it.
    pub app: String,
    /// The activity component.
    pub activity: String,
    /// Whether the app declares `android:configChanges` for orientation
    /// changes (self-handling).
    pub handles_changes: bool,
    /// Whether the app implements `onSaveInstanceState`.
    pub saves_instance_state: bool,
    /// Async work the test scenario has in flight across the change.
    pub async_specs: Vec<AsyncSpec>,
    /// The inflated tree per orientation.
    pub trees: Vec<ConfigTree>,
    /// Strict-inflation failures per orientation label: templates the
    /// lenient runtime inflater would silently truncate.
    pub inflate_errors: Vec<(&'static str, ViewError)>,
    /// Per-field persistence descriptors, for data-loss corpus apps.
    pub dataloss: Option<DataLossScenario>,
}

/// The two configurations the §6 oracle rotates between.
fn analyzed_configs() -> [(&'static str, Configuration); 2] {
    [
        ("portrait", Configuration::phone_portrait()),
        ("landscape", Configuration::phone_landscape()),
    ]
}

/// Content digest of everything in the descriptor that shape extraction
/// can observe (the descriptor generates the resource table and the
/// model's `onCreate` behaviour, so this covers the template content),
/// crossed with the analyzed configuration digests.
fn shape_key(spec: &GenericAppSpec) -> u64 {
    let mut d = Digest::new();
    d.write_str(&spec.name);
    d.write_str(spec.downloads);
    d.write_str(spec.issue.as_deref().unwrap_or(""));
    d.write_u64(spec.view_count as u64);
    d.write_u64(spec.complexity.to_bits());
    d.write_u64(spec.base_memory_bytes);
    d.write_u64(spec.activity_heap_bytes);
    d.write_u64(u64::from(spec.handles_changes));
    d.write_u64(u64::from(spec.saves_instance_state));
    d.write_u64(u64::from(spec.uses_async_task));
    d.write_u64(spec.state_items.len() as u64);
    for item in &spec.state_items {
        d.write_str(&item.key);
        d.write_u64(memo::stable_hash(&item.mechanism));
        d.write_str(&item.test_value);
    }
    match &spec.dataloss {
        None => d.write_u64(0),
        Some(dl) => {
            d.write_u64(1 + memo::stable_hash(&dl.class));
            d.write_u64(dl.fields.len() as u64);
            for f in &dl.fields {
                d.write_str(&f.key);
                d.write_u64(memo::stable_hash(&f.owner));
                d.write_u64(memo::stable_hash(&f.persistence));
                d.write_str(&f.test_value);
            }
        }
    }
    for (label, config) in analyzed_configs() {
        d.write_str(label);
        d.write_u64(memo::stable_hash(&config));
    }
    d.finish()
}

/// The process-wide shape cache: a hit skips resource construction and
/// both per-orientation inflate + `perform_create` walks.
fn shape_cache() -> &'static MemoCache<u64, AppShape> {
    static CACHE: OnceLock<MemoCache<u64, AppShape>> = OnceLock::new();
    static REGISTER: Once = Once::new();
    let cache = CACHE.get_or_init(|| {
        MemoCache::new("shape", 256, |shape: &AppShape| {
            shape.trees.iter().map(|t| t.tree.heap_bytes()).sum()
        })
    });
    REGISTER.call_once(|| memo::register(cache));
    cache
}

impl AppShape {
    /// Extracts the shape of a corpus descriptor, memoized on the
    /// descriptor's content digest.
    pub fn from_spec(spec: &GenericAppSpec) -> AppShape {
        if memo::enabled() {
            let key = shape_key(spec);
            match shape_cache().probe(key) {
                Admission::Hit(cached) => return (*cached).clone(),
                Admission::Build => {
                    let built = AppShape::from_spec_cold(spec);
                    shape_cache().publish(key, built.clone());
                    return built;
                }
                Admission::Skip => {}
            }
        }
        AppShape::from_spec_cold(spec)
    }

    /// The uncached extraction walk.
    fn from_spec_cold(spec: &GenericAppSpec) -> AppShape {
        let app = spec.build();
        let mut async_specs = Vec::new();
        if spec.uses_async_task {
            async_specs.push(spec.async_task());
        }
        if let Some(task) = spec.dataloss_async_task() {
            async_specs.push(task);
        }
        let mut shape = AppShape::from_model(&spec.name, &app, async_specs);
        shape.dataloss = spec.dataloss.clone();
        shape
    }

    /// Extracts the shape of any [`AppModel`] (e.g. `SimpleApp`).
    ///
    /// `async_specs` is passed in because the trait has no way to ask a
    /// model what background work its scenario starts.
    pub fn from_model(app: &str, model: &dyn AppModel, async_specs: Vec<AsyncSpec>) -> AppShape {
        let mut trees = Vec::new();
        let mut inflate_errors = Vec::new();
        for (label, config) in analyzed_configs() {
            // Strict pre-flight on the raw template: the runtime
            // inflater is lenient and would hide a truncated subtree.
            if let Ok(template) = model
                .resources()
                .resolve_layout(model.main_layout(), &config)
            {
                if let Err(e) = try_inflate(template, model.resources(), &config) {
                    inflate_errors.push((label, e));
                }
            }
            // A throwaway instance gives the post-`onCreate` tree —
            // including dynamically added views — without any device.
            let mut activity = Activity::new(
                ActivityInstanceId::new(0),
                ActivityRecordId::new(0),
                model.component_name(),
                config,
            );
            activity.perform_create(model, None);
            trees.push(ConfigTree {
                label,
                tree: activity.tree.clone(),
            });
        }
        AppShape {
            app: app.to_owned(),
            activity: model.component_name().to_owned(),
            handles_changes: model.handled_changes().contains(ConfigChanges::ORIENTATION),
            saves_instance_state: model.implements_save_instance_state(),
            async_specs,
            trees,
            inflate_errors,
            dataloss: None,
        }
    }

    /// Where a data-loss field shows up in the extracted trees: the
    /// first tree containing a view named after the field, if any.
    /// Member fields and dialog views (created only when the dialog is
    /// shown, which `onCreate` alone never does) have no tree site.
    pub fn field_site(&self, field_key: &str, owner: FieldOwner) -> Option<(&ConfigTree, ViewId)> {
        match owner {
            FieldOwner::Member | FieldOwner::Dialog => None,
            FieldOwner::Fragment | FieldOwner::AsyncView | FieldOwner::InputView => self
                .trees
                .iter()
                .find_map(|ct| ct.tree.find_by_id_name(field_key).map(|id| (ct, id))),
        }
    }

    /// Which save site, if any, statically covers a field — the "write"
    /// half of the save/restore reachability pass.
    pub fn save_site(&self, persistence: FieldPersistence) -> Option<&'static str> {
        match persistence {
            FieldPersistence::Transient => None,
            FieldPersistence::BundleSaved => Some("onSaveInstanceState"),
            FieldPersistence::StorePersisted => Some("the persistent store"),
        }
    }
}

/// The `decor>root>…` id path of a view, for [`crate::diag::Loc`]
/// locations. Anonymous views contribute their class name.
pub fn view_path(tree: &ViewTree, id: ViewId) -> String {
    let mut segments = Vec::new();
    let mut cursor = Some(id);
    while let Some(v) = cursor {
        let Ok(node) = tree.view(v) else { break };
        let segment = node
            .id_name_str()
            .map_or_else(|| node.kind.class_name().to_owned(), str::to_owned);
        segments.push(segment);
        cursor = node.parent;
    }
    segments.reverse();
    segments.join(">")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rch_workloads::{
        DataLossClass, DataLossField, DataLossScenario, StateItem, StateMechanism,
    };

    fn spec_with(item: StateItem) -> GenericAppSpec {
        let mut s = GenericAppSpec::sized("ShapeProbe", "1K+", false);
        s.state_items.push(item);
        s
    }

    #[test]
    fn shape_has_both_orientations_and_dynamic_views() {
        let spec = spec_with(StateItem::new(
            "dyn_state",
            StateMechanism::DynamicViewNoSave,
            "v",
        ));
        let shape = AppShape::from_spec(&spec);
        assert_eq!(shape.trees.len(), 2);
        for t in &shape.trees {
            assert!(
                t.tree.find_by_id_name("dyn_state").is_some(),
                "{}: dynamic views are part of the analyzable shape",
                t.label
            );
        }
        assert!(shape.inflate_errors.is_empty());
        assert!(!shape.handles_changes);
    }

    #[test]
    fn view_paths_walk_from_decor_down() {
        let spec = spec_with(StateItem::new(
            "issue_state",
            StateMechanism::CustomViewNoSave,
            "v",
        ));
        let shape = AppShape::from_spec(&spec);
        let tree = &shape.trees[0].tree;
        let id = tree.find_by_id_name("issue_state").unwrap();
        let path = view_path(tree, id);
        assert!(
            path.ends_with(">root>issue_state"),
            "path walks decor→root→view: {path}"
        );
    }

    #[test]
    fn dataloss_fields_surface_in_the_shape() {
        let mut spec = GenericAppSpec::sized("ShapeDl", "1K+", false);
        spec.dataloss = Some(DataLossScenario::new(
            DataLossClass::SubStateOwner,
            vec![
                DataLossField::new(
                    "alpha_field",
                    FieldOwner::Fragment,
                    FieldPersistence::Transient,
                ),
                DataLossField::new(
                    "beta_field",
                    FieldOwner::Dialog,
                    FieldPersistence::Transient,
                ),
            ],
        ));
        let shape = AppShape::from_spec(&spec);
        let dl = shape.dataloss.as_ref().unwrap();
        assert_eq!(dl.fields.len(), 2);
        // The fragment view is attached in onCreate and thus visible;
        // the dialog view only exists once the dialog is shown.
        assert!(shape
            .field_site("alpha_field", FieldOwner::Fragment)
            .is_some());
        assert!(shape.field_site("beta_field", FieldOwner::Dialog).is_none());
    }

    #[test]
    fn distinct_descriptors_never_collide_in_the_cache() {
        // Same name, different dataloss descriptor: the memo key must
        // separate them or the second extraction would return the
        // first's trees.
        let mut a = GenericAppSpec::sized("ShapeTwin", "1K+", false);
        a.dataloss = Some(DataLossScenario::new(
            DataLossClass::AsyncRace,
            vec![DataLossField::new(
                "alpha_field",
                FieldOwner::AsyncView,
                FieldPersistence::Transient,
            )],
        ));
        let mut b = GenericAppSpec::sized("ShapeTwin", "1K+", false);
        b.dataloss = None;
        for _ in 0..3 {
            // past admission, into published-hit territory
            let sa = AppShape::from_spec(&a);
            let sb = AppShape::from_spec(&b);
            assert!(sa.trees[0].tree.find_by_id_name("alpha_field").is_some());
            assert!(sb.trees[0].tree.find_by_id_name("alpha_field").is_none());
        }
    }
}
