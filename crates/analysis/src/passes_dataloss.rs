//! The data-loss dataflow passes (`RCH007`–`RCH012`).
//!
//! A field-level save/restore reachability analysis over [`AppShape`]:
//! for every [`DataLossField`] the pass determines which save site
//! writes it (none, `onSaveInstanceState`, the persistent store), which
//! restore site reads it back (`onRestoreInstanceState`, the hierarchy
//! bundle, the `onCreate` store replay), and under which lifecycle
//! interleaving that save→restore edge is skipped — per handling
//! scheme. The lattice is the [`predict`] rules of
//! [`crate::verdict`]: a field diagnostic is emitted **iff** some mode
//! loses the field, which is exactly the dynamic oracle's hazard
//! predicate — `tests/prop_dataloss.rs` holds the two equal and the
//! differential gate re-checks it app by app.
//!
//! Field findings use the class-specific codes `RCH007`–`RCH011` (one
//! lint per lifecycle interleaving); `RCH012` then summarises the
//! per-mode verdict in the style of `RCH006` — warning where stock or
//! RuntimeDroid loses data, error where even RCHDroid cannot save it.

use crate::diag::{Diagnostic, LintCode, Loc, Severity};
use crate::shape::{view_path, AppShape};
use crate::verdict::{predict, AnalysisMode, StaticVerdict};
use rch_workloads::{DataLossClass, DataLossField, FieldOwner, GenericAppSpec};

/// Runs the data-loss passes over one app. A no-op for apps without a
/// [`rch_workloads::DataLossScenario`].
pub fn dataloss_passes(shape: &AppShape, spec: &GenericAppSpec, out: &mut Vec<Diagnostic>) {
    let Some(dl) = &spec.dataloss else { return };
    let verdicts = AnalysisMode::ALL.map(|m| (m, predict(spec, m)));
    for field in &dl.fields {
        field_reachability(shape, dl.class, field, &verdicts, out);
    }
    predicted_data_loss(shape, &verdicts, out);
}

/// Passes 7–11: one finding per field some handling scheme loses, with
/// the save/restore reachability chain spelled out.
fn field_reachability(
    shape: &AppShape,
    class: DataLossClass,
    field: &DataLossField,
    verdicts: &[(AnalysisMode, StaticVerdict); 3],
    out: &mut Vec<Diagnostic>,
) {
    let lost_under: Vec<String> = verdicts
        .iter()
        .filter_map(|(mode, v)| loss_annotation(mode, v, class, &field.key))
        .collect();
    if lost_under.is_empty() {
        return; // every mode's restore site is reached
    }
    let loc = match shape.field_site(&field.key, field.owner) {
        Some((ct, id)) => Loc::view(
            &shape.app,
            &shape.activity,
            format!("{}:{}", ct.label, view_path(&ct.tree, id)),
        ),
        None => Loc::app_level(&shape.app, &shape.activity),
    };
    let written_by = match shape.save_site(field.persistence) {
        Some(site) => format!("written by {site}"),
        None => "written by no save site".to_owned(),
    };
    out.push(Diagnostic::new(
        class_code(class),
        Severity::Warning,
        loc,
        format!(
            "{} field `{}` is {written_by}, so the {} interleaving skips its \
             restore under {}",
            owner_noun(field.owner),
            field.key,
            class.label(),
            lost_under.join(", "),
        ),
    ));
}

/// The lint code of one lifecycle interleaving.
fn class_code(class: DataLossClass) -> LintCode {
    match class {
        DataLossClass::StopRestart => LintCode::UnsavedFieldLoss,
        DataLossClass::SubStateOwner => LintCode::SubStateLoss,
        DataLossClass::AsyncRace => LintCode::AsyncFieldRace,
        DataLossClass::ProcessDeath => LintCode::ProcessDeathLoss,
        DataLossClass::InputInFlight => LintCode::InputInFlightLoss,
    }
}

fn owner_noun(owner: FieldOwner) -> &'static str {
    match owner {
        FieldOwner::Member => "member",
        FieldOwner::Dialog => "dialog sub-state",
        FieldOwner::Fragment => "fragment sub-state",
        FieldOwner::AsyncView => "async-written view",
        FieldOwner::InputView => "uncommitted input",
    }
}

/// How `mode` loses `key`, if it does: plain loss, loss the coin flip
/// masks after the double rotation, loss only a latent (shadow-side)
/// probe sees, or a crash that pre-empts the field entirely.
fn loss_annotation(
    mode: &AnalysisMode,
    v: &StaticVerdict,
    class: DataLossClass,
    key: &str,
) -> Option<String> {
    let label = mode.label();
    if v.crashed && class == DataLossClass::AsyncRace {
        return Some(format!("{label} (crash before the write lands)"));
    }
    let in_list = |list: &[String]| list.iter().any(|k| k == key);
    if in_list(&v.lost_after_two) {
        Some(label.to_owned())
    } else if in_list(&v.lost_after_one) && in_list(&v.latent_after_two) {
        Some(format!("{label} (masked by the flip, latent)"))
    } else if in_list(&v.latent_after_two) {
        Some(format!("{label} (latent)"))
    } else if in_list(&v.lost_after_one) {
        Some(format!("{label} (after one rotation)"))
    } else {
        None
    }
}

/// Pass 12 (`RCH012`): the data-loss verdict itself, per mode.
fn predicted_data_loss(
    shape: &AppShape,
    verdicts: &[(AnalysisMode, StaticVerdict); 3],
    out: &mut Vec<Diagnostic>,
) {
    for (mode, v) in verdicts {
        if !v.has_issue() {
            continue;
        }
        let severity = match mode {
            // RCHDroid is the scheme under evaluation: loss it cannot
            // fix is a defect, loss a baseline suffers is a warning.
            AnalysisMode::RchDroid => Severity::Error,
            AnalysisMode::Stock | AnalysisMode::RuntimeDroid => Severity::Warning,
        };
        let detail = if v.crashed {
            "the racing async write crashes the restarted activity".to_owned()
        } else {
            let mut keys: Vec<&str> = Vec::new();
            for list in [&v.lost_after_one, &v.lost_after_two, &v.latent_after_two] {
                for k in list {
                    if !keys.contains(&k.as_str()) {
                        keys.push(k);
                    }
                }
            }
            format!("fields lost: {}", keys.join(", "))
        };
        out.push(Diagnostic::new(
            LintCode::PredictedDataLoss,
            severity,
            Loc::app_level(&shape.app, &shape.activity),
            format!("predicted data loss under {}: {detail}", mode.label()),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::analyze_app;
    use rch_workloads::{DataLossField, DataLossScenario, FieldPersistence};

    fn dl_spec(
        class: DataLossClass,
        owner: FieldOwner,
        persistence: FieldPersistence,
    ) -> GenericAppSpec {
        let mut s = GenericAppSpec::sized("DlPassProbe", "1K+", false);
        s.saves_instance_state = persistence == FieldPersistence::BundleSaved;
        s.dataloss = Some(DataLossScenario::new(
            class,
            vec![DataLossField::new("alpha_field", owner, persistence)],
        ));
        s
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn transient_member_raises_rch007_plus_verdicts() {
        let spec = dl_spec(
            DataLossClass::StopRestart,
            FieldOwner::Member,
            FieldPersistence::Transient,
        );
        let shape = AppShape::from_spec(&spec);
        let diags = analyze_app(&shape, Some(&spec));
        // RCH007 for the field, RCH012 for stock and for rchdroid
        // (RuntimeDroid keeps the instance: no third verdict).
        assert_eq!(codes(&diags), ["RCH007", "RCH012", "RCH012"]);
        assert!(diags[0].message.contains("written by no save site"));
        assert!(diags[0].message.contains("stop-restart"));
        assert_eq!(diags[1].severity, Severity::Warning);
        assert_eq!(diags[2].severity, Severity::Error, "RCHDroid cannot fix it");
    }

    #[test]
    fn bundle_saved_member_is_clean() {
        let spec = dl_spec(
            DataLossClass::StopRestart,
            FieldOwner::Member,
            FieldPersistence::BundleSaved,
        );
        let shape = AppShape::from_spec(&spec);
        assert!(analyze_app(&shape, Some(&spec)).is_empty());
    }

    #[test]
    fn store_persisted_fragment_still_dies_under_runtimedroid() {
        let spec = dl_spec(
            DataLossClass::SubStateOwner,
            FieldOwner::Fragment,
            FieldPersistence::StorePersisted,
        );
        let shape = AppShape::from_spec(&spec);
        let diags = analyze_app(&shape, Some(&spec));
        assert_eq!(codes(&diags), ["RCH008", "RCH012"]);
        assert!(diags[0].message.contains("written by the persistent store"));
        assert!(diags[0].message.contains("runtimedroid"));
        assert!(
            diags[0].loc.view_path.contains("alpha_field"),
            "fragment views have a tree site: {}",
            diags[0].loc.view_path
        );
        assert!(diags[1].message.contains("under runtimedroid"));
        assert_eq!(diags[1].severity, Severity::Warning);
    }

    #[test]
    fn async_race_chains_stale_callback_and_race_findings() {
        let spec = dl_spec(
            DataLossClass::AsyncRace,
            FieldOwner::AsyncView,
            FieldPersistence::Transient,
        );
        let shape = AppShape::from_spec(&spec);
        let diags = analyze_app(&shape, Some(&spec));
        // RCH004 (the in-flight callback outlives the stock restart),
        // then RCH009 and the stock + rchdroid verdicts.
        assert_eq!(codes(&diags), ["RCH004", "RCH009", "RCH012", "RCH012"]);
        assert!(diags[1].message.contains("crash before the write lands"));
        assert!(diags[1].message.contains("rchdroid (latent)"));
        assert!(diags[2].message.contains("crashes the restarted activity"));
    }

    #[test]
    fn process_death_loss_is_mode_independent() {
        let spec = dl_spec(
            DataLossClass::ProcessDeath,
            FieldOwner::Member,
            FieldPersistence::Transient,
        );
        let shape = AppShape::from_spec(&spec);
        let diags = analyze_app(&shape, Some(&spec));
        assert_eq!(codes(&diags), ["RCH010", "RCH012", "RCH012", "RCH012"]);
        assert!(diags[0].message.contains("stock, rchdroid, runtimedroid"));
    }

    #[test]
    fn self_handling_still_loses_sub_state_under_runtimedroid() {
        let mut spec = dl_spec(
            DataLossClass::SubStateOwner,
            FieldOwner::Dialog,
            FieldPersistence::BundleSaved,
        );
        spec.handles_changes = true;
        let shape = AppShape::from_spec(&spec);
        let diags = analyze_app(&shape, Some(&spec));
        assert_eq!(codes(&diags), ["RCH008", "RCH012"]);
        assert!(diags[0].message.contains("runtimedroid"));
        assert!(!diags[0].message.contains("stock"), "{}", diags[0].message);
    }
}
