//! The structural and verdict analysis passes (`RCH001`–`RCH006`).
//!
//! Each pass maps an [`AppShape`] (plus the corpus descriptor, when one
//! exists) to zero or more [`Diagnostic`]s. Pass order and, within a
//! pass, pre-order tree walks keep the output deterministic — the JSON
//! renderer's byte-stability depends on it. The data-loss dataflow
//! passes (`RCH007`–`RCH012`) live in [`crate::passes_dataloss`] and
//! run last.

use crate::diag::{Diagnostic, LintCode, Loc, Severity};
use crate::passes_dataloss::dataloss_passes;
use crate::shape::{view_path, AppShape, ConfigTree};
use crate::verdict::{predict, AnalysisMode};
use rch_workloads::GenericAppSpec;
use std::collections::BTreeMap;

/// Runs every pass over one app. `spec` unlocks the descriptor-level
/// passes (4's aggravation note, 5, 6, and the data-loss family);
/// shape-only models (e.g. `SimpleApp`) still get the structural
/// passes.
pub fn analyze_app(shape: &AppShape, spec: Option<&GenericAppSpec>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    essence_key_collisions(shape, &mut out);
    unmapped_views(shape, &mut out);
    table1_coverage(shape, &mut out);
    stale_callbacks(shape, spec, &mut out);
    self_handling_conflicts(shape, spec, &mut out);
    predicted_issues(shape, spec, &mut out);
    if let Some(spec) = spec {
        dataloss_passes(shape, spec, &mut out);
    }
    out
}

/// Pass 1 (`RCH001`): duplicate `android:id` names in one layout.
///
/// `ViewTree::add_view` indexes names first-come-first-kept, so the
/// essence mapping and hierarchy restore both bind the *lowest-id* view
/// and every later duplicate is silently orphaned.
fn essence_key_collisions(shape: &AppShape, out: &mut Vec<Diagnostic>) {
    for ct in &shape.trees {
        let mut by_name: BTreeMap<String, Vec<droidsim_view::ViewId>> = BTreeMap::new();
        for id in ct.tree.iter_ids() {
            let Ok(node) = ct.tree.view(id) else { continue };
            if let Some(name) = node.id_name_str() {
                by_name.entry(name.to_owned()).or_default().push(id);
            }
        }
        for (name, ids) in by_name {
            if ids.len() < 2 {
                continue;
            }
            out.push(Diagnostic::new(
                LintCode::EssenceKeyCollision,
                Severity::Warning,
                loc_in(shape, ct, ids[0]),
                format!(
                    "id `{name}` is declared by {} views in the {} layout; the essence \
                     mapping and hierarchy restore bind the lowest view id and silently \
                     orphan the other {}",
                    ids.len(),
                    ct.label,
                    ids.len() - 1,
                ),
            ));
        }
    }
}

/// Pass 2 (`RCH002`): views invisible to the essence mapping.
///
/// Three shapes of the same defect: an editable view with no
/// `android:id` (unmappable, and its user input also misses the
/// hierarchy bundle), an async write whose target id resolves to no
/// view in some configuration, and a layout subtree the lenient runtime
/// inflater would silently drop.
fn unmapped_views(shape: &AppShape, out: &mut Vec<Diagnostic>) {
    for (label, err) in &shape.inflate_errors {
        out.push(Diagnostic::new(
            LintCode::UnmappedView,
            Severity::Error,
            Loc::app_level(&shape.app, &shape.activity),
            format!(
                "the {label} layout does not inflate strictly ({err}); the runtime \
                 inflater silently drops the offending subtree, so none of its views \
                 can be mapped or migrated"
            ),
        ));
    }
    for ct in &shape.trees {
        for id in ct.tree.iter_ids() {
            let Ok(node) = ct.tree.view(id) else { continue };
            if node.id_name.is_none() && node.kind.is_editable() {
                out.push(Diagnostic::new(
                    LintCode::UnmappedView,
                    Severity::Warning,
                    loc_in(shape, ct, id),
                    format!(
                        "editable `{}` in the {} layout has no android:id: the essence \
                         mapping cannot pair it across instances, so lazy migration \
                         (and the hierarchy bundle) drop its user input on a runtime \
                         change",
                        node.kind.class_name(),
                        ct.label,
                    ),
                ));
            }
        }
    }
    for spec in &shape.async_specs {
        for (target, op) in &spec.result.ops {
            for ct in &shape.trees {
                if ct.tree.find_by_id_name(target).is_none() {
                    out.push(Diagnostic::new(
                        LintCode::UnmappedView,
                        Severity::Warning,
                        Loc::app_level(&shape.app, &shape.activity),
                        format!(
                            "async `{}` targets id `{target}`, which no view in the {} \
                             layout declares: after a change to that configuration the \
                             write is dropped",
                            op.name(),
                            ct.label,
                        ),
                    ));
                }
            }
        }
    }
}

/// Pass 3 (`RCH003`): Table-1 coverage of async attribute writes.
///
/// Lazy migration carries exactly the attributes of the target's
/// migration class (paper Table 1). An async op outside that set raises
/// `InapplicableOp` at runtime — the write is lost under every scheme.
fn table1_coverage(shape: &AppShape, out: &mut Vec<Diagnostic>) {
    for spec in &shape.async_specs {
        for (target, op) in &spec.result.ops {
            for ct in &shape.trees {
                let Some(id) = ct.tree.find_by_id_name(target) else {
                    continue; // pass 2's finding
                };
                let Ok(node) = ct.tree.view(id) else { continue };
                let class = node.kind.migration_class();
                if !op.applies_to(class) {
                    out.push(Diagnostic::new(
                        LintCode::UncoveredAttribute,
                        Severity::Error,
                        loc_in(shape, ct, id),
                        format!(
                            "async `{}` targets `{target}` whose migration class {class} \
                             carries no such attribute (Table 1): the write raises \
                             InapplicableOp and is lost even under RCHDroid",
                            op.name(),
                        ),
                    ));
                }
            }
        }
    }
}

/// Pass 4 (`RCH004`): async deadlines that outlive a stock restart.
fn stale_callbacks(shape: &AppShape, spec: Option<&GenericAppSpec>, out: &mut Vec<Diagnostic>) {
    if shape.handles_changes {
        return; // no restart to go stale against
    }
    let member_unsaved = spec.is_some_and(|s| {
        s.state_items
            .iter()
            .any(|i| !i.mechanism.survives_stock_restart())
    });
    for a in &shape.async_specs {
        let aggravation = if member_unsaved {
            " — and the app holds state a restart already loses, so the crash also \
             discards the in-memory copy"
        } else {
            ""
        };
        out.push(Diagnostic::new(
            LintCode::StaleCallback,
            Severity::Warning,
            Loc::app_level(&shape.app, &shape.activity),
            format!(
                "a {:.0}-second async callback outlives the stock restart a runtime \
                 change triggers: it fires into the released view tree \
                 ({}){aggravation}",
                a.duration.as_secs_f64(),
                if a.result.shows_dialog {
                    "WindowLeaked"
                } else {
                    "NullPointerException"
                },
            ),
        ));
    }
}

/// Pass 5 (`RCH005`): `configChanges` self-handling masking unsaved
/// state.
fn self_handling_conflicts(
    shape: &AppShape,
    spec: Option<&GenericAppSpec>,
    out: &mut Vec<Diagnostic>,
) {
    if !shape.handles_changes {
        return;
    }
    let Some(spec) = spec else { return };
    for item in &spec.state_items {
        let saved = item.mechanism.survives_stock_restart()
            && (item.mechanism.is_view_held() || spec.saves_instance_state);
        if saved {
            continue;
        }
        out.push(Diagnostic::new(
            LintCode::SelfHandlingConflict,
            Severity::Warning,
            Loc::app_level(&shape.app, &shape.activity),
            format!(
                "android:configChanges masks unsaved state `{}` ({:?}): rotation keeps \
                 the instance alive, but death-and-recreation (low memory, background \
                 kill) still loses it",
                item.key, item.mechanism,
            ),
        ));
    }
}

/// Pass 6 (`RCH006`): the verdict prediction itself, as diagnostics.
fn predicted_issues(shape: &AppShape, spec: Option<&GenericAppSpec>, out: &mut Vec<Diagnostic>) {
    let Some(spec) = spec else { return };
    if spec.dataloss.is_some() {
        // The field-aware RCH012 summary in `passes_dataloss` owns the
        // data-loss corpus.
        return;
    }
    let stock = predict(spec, AnalysisMode::Stock);
    if stock.has_issue() {
        let detail = if stock.crashed {
            "the app crashes on the in-flight async callback".to_owned()
        } else {
            format!(
                "state lost after rotation: {}",
                stock.lost_after_one.join(", ")
            )
        };
        out.push(Diagnostic::new(
            LintCode::PredictedIssue,
            Severity::Warning,
            Loc::app_level(&shape.app, &shape.activity),
            format!("predicted runtime-change issue under stock handling: {detail}"),
        ));
    }
    let rch = predict(spec, AnalysisMode::RchDroid);
    if rch.has_issue() {
        out.push(Diagnostic::new(
            LintCode::PredictedIssue,
            Severity::Error,
            Loc::app_level(&shape.app, &shape.activity),
            format!(
                "predicted issue persists under RCHDroid: member state {} is never \
                 saved, so no migration scheme can restore it",
                rch.lost_after_one.join(", "),
            ),
        ));
    }
}

fn loc_in(shape: &AppShape, ct: &ConfigTree, id: droidsim_view::ViewId) -> Loc {
    Loc::view(
        &shape.app,
        &shape.activity,
        format!("{}:{}", ct.label, view_path(&ct.tree, id)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::AppShape;
    use droidsim_app::{AppModel, AsyncResult, AsyncSpec};
    use droidsim_kernel::SimDuration;
    use droidsim_view::ViewOp;
    use rch_workloads::{StateItem, StateMechanism};

    fn base_spec(name: &str) -> GenericAppSpec {
        GenericAppSpec::sized(name, "1K+", false)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn clean_app_produces_no_diagnostics() {
        let mut spec = base_spec("CleanApp");
        spec.saves_instance_state = true;
        spec.state_items.push(StateItem::new(
            "safe_state",
            StateMechanism::FrameworkView,
            "v",
        ));
        let shape = AppShape::from_spec(&spec);
        assert!(analyze_app(&shape, Some(&spec)).is_empty());
    }

    #[test]
    fn async_issue_app_gets_stale_callback_and_prediction() {
        let mut spec = base_spec("AsyncApp").with_async_task();
        spec.state_items.push(StateItem::new(
            "issue_state",
            StateMechanism::CustomViewNoSave,
            "v",
        ));
        let shape = AppShape::from_spec(&spec);
        let diags = analyze_app(&shape, Some(&spec));
        assert_eq!(codes(&diags), ["RCH004", "RCH006"]);
        assert!(diags[0].message.contains("5-second"));
        assert!(diags[0].message.contains("already loses"));
    }

    #[test]
    fn member_unsaved_app_escalates_to_an_error() {
        let mut spec = base_spec("ResidueApp");
        spec.state_items.push(StateItem::new(
            "issue_state",
            StateMechanism::MemberUnsaved,
            "v",
        ));
        let shape = AppShape::from_spec(&spec);
        let diags = analyze_app(&shape, Some(&spec));
        assert_eq!(codes(&diags), ["RCH006", "RCH006"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(diags[1].severity, Severity::Error);
        assert!(diags[1].message.contains("persists under RCHDroid"));
    }

    #[test]
    fn self_handling_with_unsaved_state_is_flagged() {
        let mut spec = base_spec("MaskedApp").self_handling();
        spec.state_items.push(StateItem::new(
            "masked_state",
            StateMechanism::MemberUnsaved,
            "v",
        ));
        let shape = AppShape::from_spec(&spec);
        let diags = analyze_app(&shape, Some(&spec));
        assert_eq!(codes(&diags), ["RCH005"], "no RCH006: rotation is clean");
        assert!(diags[0].message.contains("masked_state"));
    }

    #[test]
    fn async_target_checks_cover_missing_ids_and_table1() {
        let mut spec = base_spec("TargetApp").with_async_task();
        let app = spec.build();
        // A hand-built shape: async ops targeting a missing id and an
        // attribute outside the target's migration class.
        let mut shape = AppShape::from_model(
            &spec.name,
            &app,
            vec![
                AsyncSpec {
                    duration: SimDuration::from_secs(5),
                    result: AsyncResult {
                        ops: vec![("nonexistent".to_owned(), ViewOp::SetText("x".into()))],
                        shows_dialog: false,
                    },
                },
                AsyncSpec {
                    duration: SimDuration::from_secs(5),
                    result: AsyncResult {
                        // async_target is a TextView; setProgress is
                        // ProgressBar-only in Table 1.
                        ops: vec![("async_target".to_owned(), ViewOp::SetProgress(10))],
                        shows_dialog: false,
                    },
                },
            ],
        );
        shape.handles_changes = true; // silence RCH004 for focus
        spec.handles_changes = true;
        spec.uses_async_task = false;
        let diags = analyze_app(&shape, Some(&spec));
        assert_eq!(codes(&diags), ["RCH002", "RCH002", "RCH003", "RCH003"]);
        assert!(diags[0].message.contains("nonexistent"));
        assert!(diags[2].message.contains("TextView"));
    }

    #[test]
    fn duplicate_ids_collide_once_per_layout() {
        use droidsim_resources::{LayoutNode, LayoutTemplate};
        let spec = base_spec("DupApp");
        let app = spec.build();
        let mut shape = AppShape::from_model(&spec.name, &app, Vec::new());
        // Splice in a hand-built tree with a duplicate id.
        let t = LayoutTemplate::new(
            "dup",
            LayoutNode::new("LinearLayout")
                .with_id("root")
                .with_children([
                    LayoutNode::new("EditText").with_id("twin"),
                    LayoutNode::new("EditText").with_id("twin"),
                ]),
        );
        let (tree, _) = droidsim_view::inflate(
            &t,
            app.resources(),
            &droidsim_config::Configuration::phone_portrait(),
        );
        shape.trees[0].tree = tree;
        let diags = analyze_app(&shape, Some(&spec));
        assert_eq!(codes(&diags), ["RCH001"]);
        assert!(diags[0].message.contains("`twin`"));
        assert!(diags[0].loc.view_path.starts_with("portrait:"));
    }

    #[test]
    fn idless_editable_views_are_unmapped() {
        use droidsim_resources::{LayoutNode, LayoutTemplate};
        let spec = base_spec("NoIdApp");
        let app = spec.build();
        let mut shape = AppShape::from_model(&spec.name, &app, Vec::new());
        let t = LayoutTemplate::new(
            "noid",
            LayoutNode::new("LinearLayout")
                .with_id("root")
                .with_child(LayoutNode::new("EditText")),
        );
        let (tree, _) = droidsim_view::inflate(
            &t,
            app.resources(),
            &droidsim_config::Configuration::phone_portrait(),
        );
        shape.trees[1].tree = tree;
        let diags = analyze_app(&shape, Some(&spec));
        assert_eq!(codes(&diags), ["RCH002"]);
        assert!(diags[0].message.contains("no android:id"));
        assert!(diags[0].loc.view_path.starts_with("landscape:"));
    }

    #[test]
    fn every_tp27_issue_app_is_diagnosed_and_every_clean_top100_app_is_not() {
        for spec in rch_workloads::tp27_specs() {
            let shape = AppShape::from_spec(&spec);
            assert!(
                !analyze_app(&shape, Some(&spec)).is_empty(),
                "{}: issue app must be diagnosed",
                spec.name
            );
        }
        for spec in rch_workloads::top100_specs() {
            let shape = AppShape::from_spec(&spec);
            let diags = analyze_app(&shape, Some(&spec));
            assert_eq!(
                spec.has_issue(),
                !diags.is_empty(),
                "{}: diagnostics iff the paper reports an issue ({:?})",
                spec.name,
                codes(&diags),
            );
        }
    }
}
