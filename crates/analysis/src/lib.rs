//! Static migration-safety analysis — the `rchlint` engine.
//!
//! The §6 evaluation finds runtime-change issues *dynamically*: set the
//! app's state, rotate twice, diff what survived. But every property
//! that determines those verdicts is visible in the app model before
//! anything runs — how each state item is held, which views carry ids,
//! whether an async task is in flight, whether the app self-handles
//! changes, and whether Table 1 covers each async attribute write. In
//! the spirit of static data-loss detectors (Guo et al.; Riganelli et
//! al.'s Data Loss Detector), this crate turns those properties into:
//!
//! * **Diagnostics** ([`diag`]) — typed `RCH0xx` lints with severities,
//!   stable `app → activity → view path` locations, per-app
//!   suppression, and byte-stable human/JSON renderers;
//! * **Shapes** ([`shape`]) — the analyzable view of an app: strict
//!   per-orientation inflation plus `onCreate`, no simulation;
//! * **Passes** ([`passes`]) — the structural analyses (key collisions,
//!   unmapped views, Table-1 coverage, stale callbacks, self-handling
//!   conflicts, verdict prediction), plus the data-loss dataflow family
//!   ([`passes_dataloss`]): field-level save/restore reachability over
//!   persistence descriptors, `RCH007`–`RCH012`;
//! * **Verdicts** ([`verdict`]) — a field-exact static prediction of
//!   the dynamic oracle's `DetectionReport` under stock, RCHDroid and
//!   RuntimeDroid;
//! * **Reports** ([`report`]) — fleet-parallel corpus runs whose
//!   digest, ledger and renderings (human, JSON, SARIF) are identical
//!   for any worker count.
//!
//! The analyzer is deliberately *checkable*: `rchlint --differential`
//! replays every corpus app through the dynamic oracle and fails on any
//! disagreement, so the analyzer checks the simulator and the simulator
//! checks the analyzer.

pub mod diag;
pub mod passes;
pub mod passes_dataloss;
pub mod report;
pub mod shape;
pub mod verdict;

pub use diag::{Diagnostic, LintCode, Loc, Severity, Suppressions};
pub use passes::analyze_app;
pub use passes_dataloss::dataloss_passes;
pub use report::{analyze_specs, AnalysisReport, AppAnalysis};
pub use shape::{view_path, AppShape, ConfigTree};
pub use verdict::{predict, AnalysisMode, StaticVerdict};
