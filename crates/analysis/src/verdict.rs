//! Static verdict prediction: what the §6 dynamic oracle will find,
//! computed from the descriptor alone.
//!
//! The prediction mirrors the simulator's mechanics field by field, and
//! the differential gate (`rchlint --differential`) holds the two to
//! *exact* agreement — crash flag and every lost-item list — over both
//! corpora. The reasoning per mode:
//!
//! **Self-handling** (`android:configChanges`): the framework only
//! calls `onConfigurationChanged`; the instance, its views and its
//! members all survive, and an async callback lands on a live tree.
//! Clean under every scheme.
//!
//! **Stock (Android 10)**: a rotation destroys and recreates the
//! activity. An in-flight async task then fires at its captured —
//! now released — tree: NullPointer (or WindowLeaked), i.e. the app
//! *crashes* and the oracle probes nothing further. Otherwise an item
//! survives only if the save/restore pipeline carries it: framework
//! views via the hierarchy bundle, member fields via
//! `onSaveInstanceState` — which the app must actually implement.
//! The loss is identical after one and two rotations.
//!
//! **RCHDroid**: the sunny instance is launched *from the shadow
//! snapshot* (hierarchy bundle + app bundle), then essence migration
//! seeds every live view attribute the bundle missed — so view-held
//! state always survives and async results are re-routed, never
//! crashing. What RCHDroid cannot conjure is a member field the app
//! never saved: it is missing from the sunny instance (lost after one
//! rotation), *reappears* when the double rotation flips the original
//! instance back (`lost_after_two` is empty — the coin-flip mask), and
//! stays missing on the now-shadow replacement instance
//! (`latent_after_two`).

use droidsim_fleet::Digest;
use rch_workloads::{GenericAppSpec, StateItem, StateMechanism};

/// Which handling scheme the verdict is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisMode {
    /// Stock Android 10 restart-based handling.
    Stock,
    /// RCHDroid shadow/sunny migration.
    RchDroid,
}

impl AnalysisMode {
    /// Stable label used in reports and digests.
    pub fn label(self) -> &'static str {
        match self {
            AnalysisMode::Stock => "stock",
            AnalysisMode::RchDroid => "rchdroid",
        }
    }
}

/// The statically predicted mirror of `experiments::detector`'s
/// `DetectionReport`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticVerdict {
    /// App name.
    pub app: String,
    /// Predicted: the app crashes during the double-rotation check.
    pub crashed: bool,
    /// Predicted state items lost after a single rotation.
    pub lost_after_one: Vec<String>,
    /// Predicted items lost (on the foreground instance) after the
    /// double rotation.
    pub lost_after_two: Vec<String>,
    /// Predicted items missing from a live *non-foreground* (shadow)
    /// instance after the double rotation — loss the coin flip masks.
    pub latent_after_two: Vec<String>,
}

impl StaticVerdict {
    /// The predicted oracle verdict.
    pub fn has_issue(&self) -> bool {
        self.crashed
            || !self.lost_after_one.is_empty()
            || !self.lost_after_two.is_empty()
            || !self.latent_after_two.is_empty()
    }

    /// A clean verdict.
    fn clean(app: &str) -> StaticVerdict {
        StaticVerdict {
            app: app.to_owned(),
            crashed: false,
            lost_after_one: Vec::new(),
            lost_after_two: Vec::new(),
            latent_after_two: Vec::new(),
        }
    }

    /// Folds the verdict into a digest.
    pub fn digest_into(&self, d: &mut Digest) {
        d.write_str(&self.app);
        d.write_u64(u64::from(self.crashed));
        for list in [
            &self.lost_after_one,
            &self.lost_after_two,
            &self.latent_after_two,
        ] {
            d.write_u64(list.len() as u64);
            for k in list {
                d.write_str(k);
            }
        }
    }
}

/// Whether the save/restore pipeline carries this item across a
/// restart: framework views ride the hierarchy bundle unconditionally;
/// member fields ride `onSaveInstanceState` only if the app both *uses*
/// that mechanism for the item and *implements* the callback.
fn survives_restart(item: &StateItem, spec: &GenericAppSpec) -> bool {
    match item.mechanism {
        StateMechanism::FrameworkView => true,
        StateMechanism::MemberSaved => spec.saves_instance_state,
        StateMechanism::CustomViewNoSave
        | StateMechanism::DynamicViewNoSave
        | StateMechanism::MemberUnsaved => false,
    }
}

/// Whether the item is a member field the shadow snapshot cannot carry
/// to the sunny instance (RCHDroid's only residue).
fn member_not_snapshotted(item: &StateItem, spec: &GenericAppSpec) -> bool {
    match item.mechanism {
        StateMechanism::MemberUnsaved => true,
        StateMechanism::MemberSaved => !spec.saves_instance_state,
        StateMechanism::FrameworkView
        | StateMechanism::CustomViewNoSave
        | StateMechanism::DynamicViewNoSave => false,
    }
}

fn keys(spec: &GenericAppSpec, pred: impl Fn(&StateItem) -> bool) -> Vec<String> {
    spec.state_items
        .iter()
        .filter(|i| pred(i))
        .map(|i| i.key.clone())
        .collect()
}

/// Predicts the dynamic oracle's report for `spec` under `mode`.
pub fn predict(spec: &GenericAppSpec, mode: AnalysisMode) -> StaticVerdict {
    if spec.handles_changes {
        return StaticVerdict::clean(&spec.name);
    }
    match mode {
        AnalysisMode::Stock => {
            if spec.uses_async_task {
                // The 5 s callback fires into the released tree during
                // the oracle's 8 s settle; nothing is probed after a
                // crash.
                StaticVerdict {
                    crashed: true,
                    ..StaticVerdict::clean(&spec.name)
                }
            } else {
                let lost = keys(spec, |i| !survives_restart(i, spec));
                StaticVerdict {
                    lost_after_one: lost.clone(),
                    lost_after_two: lost,
                    ..StaticVerdict::clean(&spec.name)
                }
            }
        }
        AnalysisMode::RchDroid => {
            let member_lost = keys(spec, |i| member_not_snapshotted(i, spec));
            StaticVerdict {
                lost_after_one: member_lost.clone(),
                // The double rotation flips the original instance back:
                // its member fields reappear on the foreground…
                lost_after_two: Vec::new(),
                // …but stay missing on the shadow-state replacement.
                latent_after_two: member_lost,
                ..StaticVerdict::clean(&spec.name)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rch_workloads::{top100_specs, tp27_specs};

    #[test]
    fn tp27_predictions_match_the_tables() {
        let specs = tp27_specs();
        let stock_flagged: Vec<&str> = specs
            .iter()
            .filter(|s| predict(s, AnalysisMode::Stock).has_issue())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(stock_flagged.len(), 27, "Table 3: every TP-27 app");
        let rch_flagged: Vec<&str> = specs
            .iter()
            .filter(|s| predict(s, AnalysisMode::RchDroid).has_issue())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(rch_flagged, ["DiskDiggerPro", "Dock4Droid"]);
    }

    #[test]
    fn top100_predictions_match_table5() {
        let specs = top100_specs();
        let stock = specs
            .iter()
            .filter(|s| predict(s, AnalysisMode::Stock).has_issue())
            .count();
        assert_eq!(stock, 63);
        let rch: Vec<&str> = specs
            .iter()
            .filter(|s| predict(s, AnalysisMode::RchDroid).has_issue())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(
            rch,
            ["Filto", "HaircutPrank", "CastForChrome", "KingJamesBible"]
        );
    }

    #[test]
    fn coin_flip_mask_shows_up_as_latent_loss() {
        let spec = tp27_specs().swap_remove(8); // DiskDiggerPro (MemberUnsaved)
        let v = predict(&spec, AnalysisMode::RchDroid);
        assert!(!v.lost_after_one.is_empty());
        assert!(v.lost_after_two.is_empty(), "masked by the flip");
        assert_eq!(v.latent_after_two, v.lost_after_one);
        assert!(v.has_issue());
    }
}
