//! Static verdict prediction: what the §6 dynamic oracle will find,
//! computed from the descriptor alone.
//!
//! The prediction mirrors the simulator's mechanics field by field, and
//! the differential gate (`rchlint --differential`) holds the two to
//! *exact* agreement — crash flag and every lost-item list — over every
//! corpus. The reasoning per mode:
//!
//! **Self-handling** (`android:configChanges`): the framework only
//! calls `onConfigurationChanged`; the instance, its views and its
//! members all survive, and an async callback lands on a live tree.
//! Clean under stock and RCHDroid — but *not* under RuntimeDroid, whose
//! hot-reload patch intercepts the change before the manifest
//! declaration is consulted.
//!
//! **Stock (Android 10)**: a rotation destroys and recreates the
//! activity. An in-flight async task then fires at its captured —
//! now released — tree: NullPointer (or WindowLeaked), i.e. the app
//! *crashes* and the oracle probes nothing further. Otherwise an item
//! survives only if the save/restore pipeline carries it: framework
//! views via the hierarchy bundle, member fields via
//! `onSaveInstanceState` — which the app must actually implement.
//! The loss is identical after one and two rotations.
//!
//! **RCHDroid**: the sunny instance is launched *from the shadow
//! snapshot* (hierarchy bundle + app bundle), then essence migration
//! seeds every live view attribute the bundle missed — so view-held
//! state always survives and async results are re-routed, never
//! crashing. What RCHDroid cannot conjure is a member field the app
//! never saved: it is missing from the sunny instance (lost after one
//! rotation), *reappears* when the double rotation flips the original
//! instance back (`lost_after_two` is empty — the coin-flip mask), and
//! stays missing on the now-shadow replacement instance
//! (`latent_after_two`).
//!
//! **RuntimeDroid**: the instance survives (members intact, no crash),
//! but the patch re-inflates the *layout resource* and copies state
//! across by id — anything the layout cannot name is rebuilt empty:
//! views the app created in code, dialog subtrees, fragment subtrees.
//! The loss is in-place, so it is identical after one and two rotations
//! and never latent.
//!
//! Data-loss corpus apps carry a [`DataLossScenario`] instead of state
//! items; [`predict`] dispatches to the per-field save/restore
//! reachability rules (documented at [`predict_dataloss`] and in
//! DESIGN.md §15).

use droidsim_fleet::Digest;
use rch_workloads::{
    DataLossClass, DataLossField, DataLossScenario, FieldOwner, FieldPersistence, GenericAppSpec,
    StateItem, StateMechanism,
};

/// Which handling scheme the verdict is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisMode {
    /// Stock Android 10 restart-based handling.
    Stock,
    /// RCHDroid shadow/sunny migration.
    RchDroid,
    /// RuntimeDroid in-place hot reload.
    RuntimeDroid,
}

impl AnalysisMode {
    /// Every mode, in report order.
    pub const ALL: [AnalysisMode; 3] = [
        AnalysisMode::Stock,
        AnalysisMode::RchDroid,
        AnalysisMode::RuntimeDroid,
    ];

    /// Stable label used in reports and digests.
    pub fn label(self) -> &'static str {
        match self {
            AnalysisMode::Stock => "stock",
            AnalysisMode::RchDroid => "rchdroid",
            AnalysisMode::RuntimeDroid => "runtimedroid",
        }
    }
}

/// The statically predicted mirror of `experiments::detector`'s
/// `DetectionReport`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticVerdict {
    /// App name.
    pub app: String,
    /// Predicted: the app crashes during the double-rotation check.
    pub crashed: bool,
    /// Predicted state items lost after a single rotation.
    pub lost_after_one: Vec<String>,
    /// Predicted items lost (on the foreground instance) after the
    /// double rotation.
    pub lost_after_two: Vec<String>,
    /// Predicted items missing from a live *non-foreground* (shadow)
    /// instance after the double rotation — loss the coin flip masks.
    pub latent_after_two: Vec<String>,
}

impl StaticVerdict {
    /// The predicted oracle verdict.
    pub fn has_issue(&self) -> bool {
        self.crashed
            || !self.lost_after_one.is_empty()
            || !self.lost_after_two.is_empty()
            || !self.latent_after_two.is_empty()
    }

    /// Whether `key` appears in any loss list.
    pub fn loses(&self, key: &str) -> bool {
        self.lost_after_one.iter().any(|k| k == key)
            || self.lost_after_two.iter().any(|k| k == key)
            || self.latent_after_two.iter().any(|k| k == key)
    }

    /// A clean verdict.
    fn clean(app: &str) -> StaticVerdict {
        StaticVerdict {
            app: app.to_owned(),
            crashed: false,
            lost_after_one: Vec::new(),
            lost_after_two: Vec::new(),
            latent_after_two: Vec::new(),
        }
    }

    /// Folds the verdict into a digest.
    pub fn digest_into(&self, d: &mut Digest) {
        d.write_str(&self.app);
        d.write_u64(u64::from(self.crashed));
        for list in [
            &self.lost_after_one,
            &self.lost_after_two,
            &self.latent_after_two,
        ] {
            d.write_u64(list.len() as u64);
            for k in list {
                d.write_str(k);
            }
        }
    }
}

/// Whether the save/restore pipeline carries this item across a
/// restart: framework views ride the hierarchy bundle unconditionally;
/// member fields ride `onSaveInstanceState` only if the app both *uses*
/// that mechanism for the item and *implements* the callback.
fn survives_restart(item: &StateItem, spec: &GenericAppSpec) -> bool {
    match item.mechanism {
        StateMechanism::FrameworkView => true,
        StateMechanism::MemberSaved => spec.saves_instance_state,
        StateMechanism::CustomViewNoSave
        | StateMechanism::DynamicViewNoSave
        | StateMechanism::MemberUnsaved => false,
    }
}

/// Whether the item is a member field the shadow snapshot cannot carry
/// to the sunny instance (RCHDroid's only residue).
fn member_not_snapshotted(item: &StateItem, spec: &GenericAppSpec) -> bool {
    match item.mechanism {
        StateMechanism::MemberUnsaved => true,
        StateMechanism::MemberSaved => !spec.saves_instance_state,
        StateMechanism::FrameworkView
        | StateMechanism::CustomViewNoSave
        | StateMechanism::DynamicViewNoSave => false,
    }
}

fn keys(spec: &GenericAppSpec, pred: impl Fn(&StateItem) -> bool) -> Vec<String> {
    spec.state_items
        .iter()
        .filter(|i| pred(i))
        .map(|i| i.key.clone())
        .collect()
}

/// Predicts the dynamic oracle's report for `spec` under `mode`.
pub fn predict(spec: &GenericAppSpec, mode: AnalysisMode) -> StaticVerdict {
    if let Some(dl) = &spec.dataloss {
        return predict_dataloss(spec, dl, mode);
    }
    // RuntimeDroid's patch hooks the change before `configChanges` is
    // consulted, so self-handling only short-circuits the other two.
    if spec.handles_changes && mode != AnalysisMode::RuntimeDroid {
        return StaticVerdict::clean(&spec.name);
    }
    match mode {
        AnalysisMode::Stock => {
            if spec.uses_async_task {
                // The 5 s callback fires into the released tree during
                // the oracle's 8 s settle; nothing is probed after a
                // crash.
                StaticVerdict {
                    crashed: true,
                    ..StaticVerdict::clean(&spec.name)
                }
            } else {
                let lost = keys(spec, |i| !survives_restart(i, spec));
                StaticVerdict {
                    lost_after_one: lost.clone(),
                    lost_after_two: lost,
                    ..StaticVerdict::clean(&spec.name)
                }
            }
        }
        AnalysisMode::RchDroid => {
            let member_lost = keys(spec, |i| member_not_snapshotted(i, spec));
            StaticVerdict {
                lost_after_one: member_lost.clone(),
                // The double rotation flips the original instance back:
                // its member fields reappear on the foreground…
                lost_after_two: Vec::new(),
                // …but stay missing on the shadow-state replacement.
                latent_after_two: member_lost,
                ..StaticVerdict::clean(&spec.name)
            }
        }
        AnalysisMode::RuntimeDroid => {
            // Hot reload keeps the instance (members, async delivery)
            // but rebuilds the tree from the layout resource: a view
            // the app created in code is never rebuilt, since
            // `onCreate` does not re-run.
            let lost = keys(spec, |i| !i.mechanism.fixed_by_runtimedroid());
            StaticVerdict {
                lost_after_one: lost.clone(),
                lost_after_two: lost,
                ..StaticVerdict::clean(&spec.name)
            }
        }
    }
}

fn field_keys(dl: &DataLossScenario, pred: impl Fn(&DataLossField) -> bool) -> Vec<String> {
    dl.fields
        .iter()
        .filter(|f| pred(f))
        .map(|f| f.key.clone())
        .collect()
}

/// The per-field save/restore reachability verdict — the static mirror
/// of the detector's `check_dataloss` oracle, scenario by scenario:
///
/// * **Stop/restart** — only a save site carries a field across the
///   restart; a `Transient` member is lost under stock, masked-then-
///   latent under RCHDroid (the snapshot cannot hold it), and untouched
///   under RuntimeDroid (same instance). `configChanges` skips the
///   restart under stock/RCHDroid; RuntimeDroid never restarts anyway.
/// * **Sub-state owners** — stock drops transient dialog/fragment state
///   with the instance. RCHDroid's sunny `onCreate` re-attaches
///   fragments (seeded from the live shadow) but cannot re-open a
///   dialog no save site recorded: transient dialog state is masked
///   loss. RuntimeDroid re-inflates the *layout resource* only, so
///   every dialog and fragment subtree is dropped — whatever the save
///   site says, and even for self-handling apps.
/// * **Async race** — the write lands after the double rotation: stock
///   has already crashed on the released tree; RCHDroid delivers to the
///   foreground but the replacement shadow never hears of it (latent);
///   RuntimeDroid delivers in place, cleanly.
/// * **Process death** — mode-independent: the ATMS retains the save
///   bundle and the store survives by definition, so exactly the
///   `Transient` fields die with the process.
/// * **Input in flight** — uncommitted text is only in the view: the
///   stock restart drops it; RCHDroid migrates live attributes and
///   RuntimeDroid copies them by id.
fn predict_dataloss(
    spec: &GenericAppSpec,
    dl: &DataLossScenario,
    mode: AnalysisMode,
) -> StaticVerdict {
    let clean = StaticVerdict::clean(&spec.name);
    let transient = |f: &DataLossField| f.persistence == FieldPersistence::Transient;
    match dl.class {
        DataLossClass::ProcessDeath => {
            let lost = field_keys(dl, transient);
            StaticVerdict {
                lost_after_one: lost.clone(),
                lost_after_two: lost,
                ..clean
            }
        }
        DataLossClass::StopRestart => match mode {
            _ if spec.handles_changes => clean,
            AnalysisMode::Stock => {
                let lost = field_keys(dl, transient);
                StaticVerdict {
                    lost_after_one: lost.clone(),
                    lost_after_two: lost,
                    ..clean
                }
            }
            AnalysisMode::RchDroid => {
                let lost = field_keys(dl, transient);
                StaticVerdict {
                    lost_after_one: lost.clone(),
                    latent_after_two: lost,
                    ..clean
                }
            }
            AnalysisMode::RuntimeDroid => clean,
        },
        DataLossClass::SubStateOwner => match mode {
            AnalysisMode::Stock => {
                if spec.handles_changes {
                    clean
                } else {
                    let lost = field_keys(dl, transient);
                    StaticVerdict {
                        lost_after_one: lost.clone(),
                        lost_after_two: lost,
                        ..clean
                    }
                }
            }
            AnalysisMode::RchDroid => {
                if spec.handles_changes {
                    clean
                } else {
                    // Fragments re-attach in the sunny onCreate and are
                    // seeded from the live shadow; a transient dialog
                    // has no save site and no onCreate site either.
                    let lost = field_keys(dl, |f| transient(f) && f.owner == FieldOwner::Dialog);
                    StaticVerdict {
                        lost_after_one: lost.clone(),
                        latent_after_two: lost,
                        ..clean
                    }
                }
            }
            AnalysisMode::RuntimeDroid => {
                let lost = field_keys(dl, |_| true);
                StaticVerdict {
                    lost_after_one: lost.clone(),
                    lost_after_two: lost,
                    ..clean
                }
            }
        },
        DataLossClass::AsyncRace => match mode {
            _ if spec.handles_changes => clean,
            AnalysisMode::Stock => StaticVerdict {
                crashed: true,
                ..clean
            },
            AnalysisMode::RchDroid => StaticVerdict {
                latent_after_two: field_keys(dl, |_| true),
                ..clean
            },
            AnalysisMode::RuntimeDroid => clean,
        },
        DataLossClass::InputInFlight => match mode {
            _ if spec.handles_changes => clean,
            AnalysisMode::Stock => {
                let lost = field_keys(dl, |_| true);
                StaticVerdict {
                    lost_after_one: lost.clone(),
                    lost_after_two: lost,
                    ..clean
                }
            }
            AnalysisMode::RchDroid | AnalysisMode::RuntimeDroid => clean,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rch_workloads::{dataloss_specs, top100_specs, tp27_specs};

    #[test]
    fn tp27_predictions_match_the_tables() {
        let specs = tp27_specs();
        let stock_flagged: Vec<&str> = specs
            .iter()
            .filter(|s| predict(s, AnalysisMode::Stock).has_issue())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(stock_flagged.len(), 27, "Table 3: every TP-27 app");
        let rch_flagged: Vec<&str> = specs
            .iter()
            .filter(|s| predict(s, AnalysisMode::RchDroid).has_issue())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(rch_flagged, ["DiskDiggerPro", "Dock4Droid"]);
        let rtd_flagged = specs
            .iter()
            .filter(|s| predict(s, AnalysisMode::RuntimeDroid).has_issue())
            .count();
        assert_eq!(rtd_flagged, 4, "the four dynamic-view apps");
    }

    #[test]
    fn top100_predictions_match_table5() {
        let specs = top100_specs();
        let stock = specs
            .iter()
            .filter(|s| predict(s, AnalysisMode::Stock).has_issue())
            .count();
        assert_eq!(stock, 63);
        let rch: Vec<&str> = specs
            .iter()
            .filter(|s| predict(s, AnalysisMode::RchDroid).has_issue())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(
            rch,
            ["Filto", "HaircutPrank", "CastForChrome", "KingJamesBible"]
        );
        let rtd = specs
            .iter()
            .filter(|s| predict(s, AnalysisMode::RuntimeDroid).has_issue())
            .count();
        assert_eq!(rtd, 5, "the report-page apps recreate views in code");
    }

    #[test]
    fn coin_flip_mask_shows_up_as_latent_loss() {
        let spec = tp27_specs().swap_remove(8); // DiskDiggerPro (MemberUnsaved)
        let v = predict(&spec, AnalysisMode::RchDroid);
        assert!(!v.lost_after_one.is_empty());
        assert!(v.lost_after_two.is_empty(), "masked by the flip");
        assert_eq!(v.latent_after_two, v.lost_after_one);
        assert!(v.has_issue());
    }

    /// The dataloss label (`hazardous`) and the three-mode prediction
    /// union must be the same predicate — the corpus would otherwise
    /// mislabel its own apps.
    #[test]
    fn dataloss_labels_equal_the_prediction_union() {
        for spec in dataloss_specs() {
            let any = AnalysisMode::ALL
                .iter()
                .any(|m| predict(&spec, *m).has_issue());
            assert_eq!(spec.has_issue(), any, "{}", spec.name);
        }
    }

    /// Spot-checks of the per-class outcome matrix (the full matrix is
    /// enforced app-by-app by the differential gate).
    #[test]
    fn dataloss_matrix_spot_checks() {
        use DataLossClass::*;
        let spec = |class, owner, persistence, handles: bool| {
            let mut s = GenericAppSpec::sized("MatrixProbe", "1K+", false);
            s.handles_changes = handles;
            s.saves_instance_state = persistence == FieldPersistence::BundleSaved;
            s.dataloss = Some(DataLossScenario::new(
                class,
                vec![DataLossField::new("alpha_field", owner, persistence)],
            ));
            s
        };
        let verdicts = |s: &GenericAppSpec| AnalysisMode::ALL.map(|m| predict(s, m));

        // A transient member across stop/restart: stock loses it,
        // RCHDroid masks it (latent), RuntimeDroid keeps the instance.
        let [stock, rch, rtd] = verdicts(&spec(
            StopRestart,
            FieldOwner::Member,
            FieldPersistence::Transient,
            false,
        ));
        assert_eq!(stock.lost_after_one, ["alpha_field"]);
        assert_eq!(stock.lost_after_two, ["alpha_field"]);
        assert_eq!(rch.lost_after_one, ["alpha_field"]);
        assert!(rch.lost_after_two.is_empty());
        assert_eq!(rch.latent_after_two, ["alpha_field"]);
        assert!(!rtd.has_issue());

        // Sub-state is always lost under RuntimeDroid — bundle-saved,
        // store-persisted and self-handling apps included.
        for p in [
            FieldPersistence::Transient,
            FieldPersistence::BundleSaved,
            FieldPersistence::StorePersisted,
        ] {
            for handles in [false, true] {
                for owner in [FieldOwner::Dialog, FieldOwner::Fragment] {
                    let [_, _, rtd] = verdicts(&spec(SubStateOwner, owner, p, handles));
                    assert_eq!(rtd.lost_after_one, ["alpha_field"], "{owner:?}/{p:?}");
                    assert_eq!(rtd.lost_after_two, ["alpha_field"]);
                }
            }
        }
        // …while RCHDroid only misses the transient dialog (fragments
        // re-attach in the sunny onCreate).
        let [_, rch, _] = verdicts(&spec(
            SubStateOwner,
            FieldOwner::Dialog,
            FieldPersistence::Transient,
            false,
        ));
        assert_eq!(rch.latent_after_two, ["alpha_field"]);
        let [_, rch, _] = verdicts(&spec(
            SubStateOwner,
            FieldOwner::Fragment,
            FieldPersistence::Transient,
            false,
        ));
        assert!(!rch.has_issue());

        // The async race crashes stock and leaves RCHDroid's
        // replacement shadow stale.
        let [stock, rch, rtd] = verdicts(&spec(
            AsyncRace,
            FieldOwner::AsyncView,
            FieldPersistence::Transient,
            false,
        ));
        assert!(stock.crashed);
        assert!(!rch.crashed);
        assert_eq!(rch.latent_after_two, ["alpha_field"]);
        assert!(!rtd.has_issue());

        // Process death is mode-independent.
        for m in AnalysisMode::ALL {
            let v = predict(
                &spec(
                    ProcessDeath,
                    FieldOwner::Member,
                    FieldPersistence::Transient,
                    false,
                ),
                m,
            );
            assert_eq!(v.lost_after_one, ["alpha_field"], "{}", m.label());
            assert_eq!(v.lost_after_two, ["alpha_field"]);
            let saved = predict(
                &spec(
                    ProcessDeath,
                    FieldOwner::Member,
                    FieldPersistence::BundleSaved,
                    false,
                ),
                m,
            );
            assert!(!saved.has_issue(), "{}", m.label());
        }

        // In-flight input dies with the stock restart only.
        let [stock, rch, rtd] = verdicts(&spec(
            InputInFlight,
            FieldOwner::InputView,
            FieldPersistence::Transient,
            false,
        ));
        assert_eq!(stock.lost_after_one, ["alpha_field"]);
        assert!(!rch.has_issue());
        assert!(!rtd.has_issue());
    }
}
