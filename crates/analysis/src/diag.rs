//! The diagnostics vocabulary: typed lint codes, severities, stable
//! source locations, suppression rules, and the human/JSON renderers.
//!
//! Rendering is deliberately hand-rolled and byte-stable: the CI gate
//! diffs `rchlint --format json` output between `--jobs 1` and
//! `--jobs 4` runs, so nothing here may depend on worker count, map
//! iteration order, or host state.

use droidsim_fleet::Digest;
use std::fmt;

/// Every lint the analyzer can raise, with a stable `RCH0xx` code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `RCH001` — duplicate `android:id` names in one layout: the
    /// essence mapping and hierarchy restore silently pick the
    /// lowest-id view.
    EssenceKeyCollision,
    /// `RCH002` — an editable view with no `android:id` (or an async
    /// write whose target id resolves to no view): invisible to the
    /// essence mapping, so lazy migration drops it.
    UnmappedView,
    /// `RCH003` — an async attribute write whose target view's
    /// [`droidsim_view::MigrationClass`] does not carry that attribute
    /// (paper Table 1), so even RCHDroid cannot migrate it.
    UncoveredAttribute,
    /// `RCH004` — an async deadline that outlives the stock restart:
    /// the callback lands on a released tree (NullPointer/WindowLeaked).
    StaleCallback,
    /// `RCH005` — `android:configChanges` self-handling masking state
    /// items that would not survive a restart: rotation works, but
    /// process death still loses them.
    SelfHandlingConflict,
    /// `RCH006` — the verdict pass predicts a runtime-change issue for
    /// this app (warning under stock; error if RCHDroid cannot fix it).
    PredictedIssue,
    /// `RCH007` — a transient field with no save site, lost across the
    /// stop/restart a configuration change triggers.
    UnsavedFieldLoss,
    /// `RCH008` — dialog/fragment sub-state that an in-place
    /// reconstruction (RuntimeDroid's hot reload) cannot rebuild —
    /// and, for transient dialogs, that RCHDroid's snapshot misses.
    SubStateLoss,
    /// `RCH009` — an async field write racing the double rotation:
    /// stock crashes on the released tree, RCHDroid's replacement
    /// shadow never hears of the write.
    AsyncFieldRace,
    /// `RCH010` — a transient field lost on process death even though
    /// the save bundle is retained: no save site ever wrote it.
    ProcessDeathLoss,
    /// `RCH011` — user input typed but uncommitted when the change
    /// lands: no save site can see it, the stock restart drops it.
    InputInFlightLoss,
    /// `RCH012` — the data-loss verdict pass predicts field loss for
    /// this app under a named handling scheme (warning under stock or
    /// RuntimeDroid; error if RCHDroid cannot fix it).
    PredictedDataLoss,
}

impl LintCode {
    /// Every code, in code order (the order passes run).
    pub const ALL: [LintCode; 12] = [
        LintCode::EssenceKeyCollision,
        LintCode::UnmappedView,
        LintCode::UncoveredAttribute,
        LintCode::StaleCallback,
        LintCode::SelfHandlingConflict,
        LintCode::PredictedIssue,
        LintCode::UnsavedFieldLoss,
        LintCode::SubStateLoss,
        LintCode::AsyncFieldRace,
        LintCode::ProcessDeathLoss,
        LintCode::InputInFlightLoss,
        LintCode::PredictedDataLoss,
    ];

    /// The stable `RCH0xx` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::EssenceKeyCollision => "RCH001",
            LintCode::UnmappedView => "RCH002",
            LintCode::UncoveredAttribute => "RCH003",
            LintCode::StaleCallback => "RCH004",
            LintCode::SelfHandlingConflict => "RCH005",
            LintCode::PredictedIssue => "RCH006",
            LintCode::UnsavedFieldLoss => "RCH007",
            LintCode::SubStateLoss => "RCH008",
            LintCode::AsyncFieldRace => "RCH009",
            LintCode::ProcessDeathLoss => "RCH010",
            LintCode::InputInFlightLoss => "RCH011",
            LintCode::PredictedDataLoss => "RCH012",
        }
    }

    /// Short kebab-case name used in docs and `--allow` help.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::EssenceKeyCollision => "essence-key-collision",
            LintCode::UnmappedView => "unmapped-view",
            LintCode::UncoveredAttribute => "uncovered-attribute",
            LintCode::StaleCallback => "stale-callback",
            LintCode::SelfHandlingConflict => "self-handling-conflict",
            LintCode::PredictedIssue => "predicted-issue",
            LintCode::UnsavedFieldLoss => "unsaved-field-loss",
            LintCode::SubStateLoss => "sub-state-loss",
            LintCode::AsyncFieldRace => "async-field-race",
            LintCode::ProcessDeathLoss => "process-death-loss",
            LintCode::InputInFlightLoss => "input-in-flight-loss",
            LintCode::PredictedDataLoss => "predicted-data-loss",
        }
    }

    /// Parses `"RCH001"`-style code strings.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.iter().copied().find(|c| c.code() == s)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a diagnostic is. `--deny-warnings` promotes warnings to the
/// failing exit code; errors always fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; never fails a run.
    Info,
    /// A migration-safety hazard; fails under `--deny-warnings`.
    Warning,
    /// A defect the analyzer is certain about; always fails.
    Error,
}

impl Severity {
    /// Lowercase label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A stable source location: `app → activity → view path`.
///
/// The view path is the pre-order chain of `android:id` names (class
/// names for anonymous views) from the decor view down, joined with
/// `>`; app-level findings leave it empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loc {
    /// App name as the corpus lists it.
    pub app: String,
    /// The activity component (e.g. `com.example/.Main`).
    pub activity: String,
    /// Path from decor to the offending view, or `""` for app-level
    /// findings. A configuration qualifier prefix (`portrait:`) pins
    /// which layout the finding is in.
    pub view_path: String,
}

impl Loc {
    /// An app-level location (no specific view).
    pub fn app_level(app: &str, activity: &str) -> Loc {
        Loc {
            app: app.to_owned(),
            activity: activity.to_owned(),
            view_path: String::new(),
        }
    }

    /// A view-level location.
    pub fn view(app: &str, activity: &str, view_path: String) -> Loc {
        Loc {
            app: app.to_owned(),
            activity: activity.to_owned(),
            view_path,
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.app, self.activity)?;
        if !self.view_path.is_empty() {
            write!(f, " → {}", self.view_path)?;
        }
        Ok(())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint that raised it.
    pub code: LintCode,
    /// Its severity.
    pub severity: Severity,
    /// Where it is.
    pub loc: Loc,
    /// What is wrong and why it matters.
    pub message: String,
}

impl Diagnostic {
    /// Creates a finding.
    pub fn new(code: LintCode, severity: Severity, loc: Loc, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            loc,
            message: message.into(),
        }
    }

    /// One human-readable line: `severity[CODE] loc: message`.
    pub fn render_human(&self) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity.label(),
            self.code,
            self.loc,
            self.message
        )
    }

    /// One stable JSON object (fixed key order, escaped strings).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"code\":{},\"severity\":{},\"app\":{},\"activity\":{},\"view_path\":{},\"message\":{}}}",
            json_string(self.code.code()),
            json_string(self.severity.label()),
            json_string(&self.loc.app),
            json_string(&self.loc.activity),
            json_string(&self.loc.view_path),
            json_string(&self.message),
        )
    }

    /// Folds the finding into a digest.
    pub fn digest_into(&self, d: &mut Digest) {
        d.write_str(self.code.code());
        d.write_str(self.severity.label());
        d.write_str(&self.loc.app);
        d.write_str(&self.loc.activity);
        d.write_str(&self.loc.view_path);
        d.write_str(&self.message);
    }
}

/// Escapes a string as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Per-app (or global) lint suppression, from repeated `--allow` flags.
///
/// A rule is `CODE` (suppress everywhere) or `APP:CODE` (suppress for
/// one app). Unknown codes are rejected at parse time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Suppressions {
    rules: Vec<(Option<String>, LintCode)>,
}

impl Suppressions {
    /// No suppressions.
    pub fn none() -> Suppressions {
        Suppressions::default()
    }

    /// Adds one `[APP:]CODE` rule.
    pub fn add_rule(&mut self, rule: &str) -> Result<(), String> {
        let (app, code) = match rule.rsplit_once(':') {
            Some((app, code)) => (Some(app.to_owned()), code),
            None => (None, rule),
        };
        let code = LintCode::parse(code)
            .ok_or_else(|| format!("--allow: unknown lint code {code:?} in rule {rule:?}"))?;
        self.rules.push((app, code));
        Ok(())
    }

    /// Parses a list of rules.
    pub fn parse(rules: impl IntoIterator<Item = impl AsRef<str>>) -> Result<Suppressions, String> {
        let mut s = Suppressions::none();
        for r in rules {
            s.add_rule(r.as_ref())?;
        }
        Ok(s)
    }

    /// Whether a finding for `app` with `code` is suppressed.
    pub fn allows(&self, app: &str, code: LintCode) -> bool {
        self.rules
            .iter()
            .any(|(a, c)| *c == code && a.as_deref().is_none_or(|a| a == app))
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_stay_in_order() {
        for (i, c) in LintCode::ALL.iter().enumerate() {
            assert_eq!(c.code(), format!("RCH{:03}", i + 1));
            assert_eq!(LintCode::parse(c.code()), Some(*c));
        }
        assert_eq!(LintCode::parse("RCH099"), None);
    }

    #[test]
    fn human_line_has_severity_code_loc_message() {
        let d = Diagnostic::new(
            LintCode::StaleCallback,
            Severity::Warning,
            Loc::app_level("DemoApp", "com.demo/.Main"),
            "a 5s async callback outlives the restart",
        );
        assert_eq!(
            d.render_human(),
            "warning[RCH004] DemoApp → com.demo/.Main: a 5s async callback outlives the restart"
        );
    }

    #[test]
    fn json_escapes_and_fixes_key_order() {
        let d = Diagnostic::new(
            LintCode::EssenceKeyCollision,
            Severity::Warning,
            Loc::view("A\"B", "c/.M", "decor>root".into()),
            "line1\nline2",
        );
        assert_eq!(
            d.render_json(),
            "{\"code\":\"RCH001\",\"severity\":\"warning\",\"app\":\"A\\\"B\",\
             \"activity\":\"c/.M\",\"view_path\":\"decor>root\",\"message\":\"line1\\nline2\"}"
        );
    }

    #[test]
    fn suppressions_scope_to_app_or_everywhere() {
        let s = Suppressions::parse(["RCH004", "OnlyHere:RCH001"]).unwrap();
        assert!(s.allows("Any", LintCode::StaleCallback));
        assert!(s.allows("OnlyHere", LintCode::EssenceKeyCollision));
        assert!(!s.allows("Other", LintCode::EssenceKeyCollision));
        assert!(!s.allows("Any", LintCode::PredictedIssue));
        assert!(Suppressions::parse(["RCHX"]).is_err());
        assert!(Suppressions::parse(["App:RCH999"]).is_err());
    }
}
