//! Fleet-parallel corpus analysis and the rendered report.
//!
//! `analyze_specs` partitions a corpus across the deterministic fleet
//! driver; per-app results come back in task-index order, so the
//! report, its digest and all three renderings (human, JSON, SARIF)
//! are bit-identical for any worker count — the property the CI
//! `--jobs 1` vs `--jobs 4` diff enforces.

use crate::diag::{json_string, Diagnostic, LintCode, Severity, Suppressions};
use crate::passes::analyze_app;
use crate::shape::AppShape;
use crate::verdict::{predict, AnalysisMode, StaticVerdict};
use droidsim_fleet::{combine_ordered, run_fleet, Digest, FleetConfig};
use droidsim_metrics::AnalysisLedger;
use rch_workloads::GenericAppSpec;

/// Everything the analyzer found for one app.
#[derive(Debug, Clone)]
pub struct AppAnalysis {
    /// App name.
    pub app: String,
    /// Findings that survived suppression, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings dropped by `--allow` rules.
    pub suppressed: u64,
    /// Predicted oracle report under stock handling.
    pub stock: StaticVerdict,
    /// Predicted oracle report under RCHDroid.
    pub rchdroid: StaticVerdict,
    /// Predicted oracle report under RuntimeDroid.
    pub runtimedroid: StaticVerdict,
    /// The data-loss class label, for data-loss corpus apps.
    pub dataloss_class: Option<&'static str>,
}

impl AppAnalysis {
    /// Analyzes one descriptor.
    pub fn of(spec: &GenericAppSpec, allow: &Suppressions) -> AppAnalysis {
        let shape = AppShape::from_spec(spec);
        let all = analyze_app(&shape, Some(spec));
        let (kept, dropped): (Vec<_>, Vec<_>) = all
            .into_iter()
            .partition(|d| !allow.allows(&spec.name, d.code));
        AppAnalysis {
            app: spec.name.clone(),
            diagnostics: kept,
            suppressed: dropped.len() as u64,
            stock: predict(spec, AnalysisMode::Stock),
            rchdroid: predict(spec, AnalysisMode::RchDroid),
            runtimedroid: predict(spec, AnalysisMode::RuntimeDroid),
            dataloss_class: spec.dataloss.as_ref().map(|dl| dl.class.label()),
        }
    }

    /// Per-app digest over diagnostics and verdicts.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str(&self.app);
        d.write_u64(self.diagnostics.len() as u64);
        for diag in &self.diagnostics {
            diag.digest_into(&mut d);
        }
        d.write_u64(self.suppressed);
        self.stock.digest_into(&mut d);
        self.rchdroid.digest_into(&mut d);
        self.runtimedroid.digest_into(&mut d);
        d.finish()
    }

    /// This app's contribution to the run ledger.
    pub fn ledger(&self) -> AnalysisLedger {
        let mut l = AnalysisLedger::new();
        l.apps = 1;
        l.clean_apps = u64::from(self.diagnostics.is_empty());
        l.suppressed = self.suppressed;
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => l.errors += 1,
                Severity::Warning => l.warnings += 1,
                Severity::Info => {}
            }
            *l.by_code.entry(d.code.code().to_owned()).or_insert(0) += 1;
        }
        l.predicted_stock_issues = u64::from(self.stock.has_issue());
        l.predicted_rchdroid_issues = u64::from(self.rchdroid.has_issue());
        l.predicted_runtimedroid_issues = u64::from(self.runtimedroid.has_issue());
        if let Some(class) = self.dataloss_class {
            l.dataloss_apps = 1;
            if self.stock.has_issue() || self.rchdroid.has_issue() || self.runtimedroid.has_issue()
            {
                l.dataloss_by_class.insert(class.to_owned(), 1);
            }
        }
        l
    }
}

/// A whole corpus run.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Per-app results, in corpus order.
    pub apps: Vec<AppAnalysis>,
    /// The aggregate ledger.
    pub ledger: AnalysisLedger,
}

impl AnalysisReport {
    /// Order-sensitive digest over every per-app digest.
    pub fn digest(&self) -> u64 {
        combine_ordered(self.apps.iter().map(AppAnalysis::digest))
    }

    /// Human rendering: one line per finding, then the summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for app in &self.apps {
            for d in &app.diagnostics {
                out.push_str(&d.render_human());
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "{}\nfingerprint: {}\n",
            self.ledger,
            self.ledger.deterministic_fingerprint()
        ));
        out
    }

    /// Stable JSON rendering (byte-identical for any worker count).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"apps\": [");
        let mut first_app = true;
        for app in &self.apps {
            if !first_app {
                out.push(',');
            }
            first_app = false;
            out.push_str("\n    {\"app\":");
            out.push_str(&json_string(&app.app));
            out.push_str(",\"diagnostics\":[");
            let mut first_d = true;
            for d in &app.diagnostics {
                if !first_d {
                    out.push(',');
                }
                first_d = false;
                out.push_str("\n      ");
                out.push_str(&d.render_json());
            }
            if !first_d {
                out.push_str("\n    ");
            }
            out.push_str("],\"suppressed\":");
            out.push_str(&app.suppressed.to_string());
            out.push_str(",\"verdicts\":{\"stock\":");
            out.push_str(&verdict_json(&app.stock));
            out.push_str(",\"rchdroid\":");
            out.push_str(&verdict_json(&app.rchdroid));
            out.push_str(",\"runtimedroid\":");
            out.push_str(&verdict_json(&app.runtimedroid));
            out.push_str("}}");
        }
        out.push_str("\n  ],\n  \"summary\": {\"apps\":");
        out.push_str(&self.ledger.apps.to_string());
        out.push_str(",\"clean\":");
        out.push_str(&self.ledger.clean_apps.to_string());
        out.push_str(",\"errors\":");
        out.push_str(&self.ledger.errors.to_string());
        out.push_str(",\"warnings\":");
        out.push_str(&self.ledger.warnings.to_string());
        out.push_str(",\"suppressed\":");
        out.push_str(&self.ledger.suppressed.to_string());
        out.push_str(",\"digest\":");
        out.push_str(&json_string(&format!("{:016x}", self.digest())));
        out.push_str("}\n}\n");
        out
    }

    /// Stable SARIF 2.1.0 rendering, for code-review UIs. Byte-stable
    /// like the JSON renderer: fixed key order, corpus-ordered results,
    /// no worker-count or host dependence — `tests/sarif_golden.rs`
    /// pins the exact bytes.
    pub fn render_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\"driver\": \
             {\"name\": \"rchlint\",\n        \"rules\": [",
        );
        let mut first = true;
        for code in LintCode::ALL {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n          {\"id\":");
            out.push_str(&json_string(code.code()));
            out.push_str(",\"name\":");
            out.push_str(&json_string(code.name()));
            out.push('}');
        }
        out.push_str("\n        ]}},\n      \"results\": [");
        let mut first_r = true;
        for app in &self.apps {
            for d in &app.diagnostics {
                if !first_r {
                    out.push(',');
                }
                first_r = false;
                let rule_index = LintCode::ALL
                    .iter()
                    .position(|c| *c == d.code)
                    .expect("every code is in ALL");
                let level = match d.severity {
                    Severity::Info => "note",
                    Severity::Warning => "warning",
                    Severity::Error => "error",
                };
                let mut fqn = format!("{}::{}", d.loc.app, d.loc.activity);
                if !d.loc.view_path.is_empty() {
                    fqn.push_str("::");
                    fqn.push_str(&d.loc.view_path);
                }
                out.push_str("\n        {\"ruleId\":");
                out.push_str(&json_string(d.code.code()));
                out.push_str(&format!(",\"ruleIndex\":{rule_index},\"level\":"));
                out.push_str(&json_string(level));
                out.push_str(",\"message\":{\"text\":");
                out.push_str(&json_string(&d.message));
                out.push_str("},\"locations\":[{\"logicalLocations\":[{\"fullyQualifiedName\":");
                out.push_str(&json_string(&fqn));
                out.push_str("}]}]}");
            }
        }
        if !first_r {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }

    /// Total error-severity findings.
    pub fn errors(&self) -> u64 {
        self.ledger.errors
    }

    /// Total warning-severity findings.
    pub fn warnings(&self) -> u64 {
        self.ledger.warnings
    }
}

fn verdict_json(v: &StaticVerdict) -> String {
    let list = |items: &[String]| {
        let mut s = String::from("[");
        for (i, k) in items.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_string(k));
        }
        s.push(']');
        s
    };
    format!(
        "{{\"has_issue\":{},\"crashed\":{},\"lost_after_one\":{},\"lost_after_two\":{},\"latent_after_two\":{}}}",
        v.has_issue(),
        v.crashed,
        list(&v.lost_after_one),
        list(&v.lost_after_two),
        list(&v.latent_after_two),
    )
}

/// Analyzes a corpus, fleet-parallel. Results keep corpus order.
pub fn analyze_specs(
    specs: &[GenericAppSpec],
    cfg: &FleetConfig,
    allow: &Suppressions,
) -> AnalysisReport {
    let apps = run_fleet(cfg, specs.to_vec(), |_ctx, spec| {
        AppAnalysis::of(&spec, allow)
    });
    let mut ledger = AnalysisLedger::new();
    for a in &apps {
        ledger.merge(&a.ledger());
    }
    AnalysisReport { apps, ledger }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rch_workloads::{dataloss_specs, top100_specs, tp27_specs};

    fn cfg(jobs: usize) -> FleetConfig {
        FleetConfig::new(jobs, 0)
    }

    #[test]
    fn report_is_identical_serial_and_parallel() {
        let specs = tp27_specs();
        let serial = analyze_specs(&specs, &cfg(1), &Suppressions::none());
        let parallel = analyze_specs(&specs, &cfg(4), &Suppressions::none());
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial.render_json(), parallel.render_json());
        assert_eq!(serial.render_human(), parallel.render_human());
        assert_eq!(serial.render_sarif(), parallel.render_sarif());
    }

    #[test]
    fn ledger_counts_the_corpus() {
        let specs = top100_specs();
        let report = analyze_specs(&specs, &cfg(2), &Suppressions::none());
        assert_eq!(report.ledger.apps, 100);
        assert_eq!(report.ledger.predicted_stock_issues, 63);
        assert_eq!(report.ledger.predicted_rchdroid_issues, 4);
        assert_eq!(report.ledger.predicted_runtimedroid_issues, 5);
        assert_eq!(report.ledger.dataloss_apps, 0);
        assert!(report.ledger.dataloss_by_class.is_empty());
        assert_eq!(report.ledger.clean_apps, 37, "issue-free apps stay clean");
    }

    #[test]
    fn dataloss_ledger_counts_classes() {
        let specs = dataloss_specs();
        let report = analyze_specs(&specs, &cfg(4), &Suppressions::none());
        assert_eq!(report.ledger.apps, specs.len() as u64);
        assert_eq!(report.ledger.dataloss_apps, specs.len() as u64);
        assert_eq!(report.ledger.dataloss_by_class.len(), 5, "all five classes");
        let flagged: u64 = report.ledger.dataloss_by_class.values().sum();
        let labeled = specs.iter().filter(|s| s.has_issue()).count() as u64;
        assert_eq!(flagged, labeled, "ledger matches the corpus labels");
    }

    #[test]
    fn suppression_moves_findings_to_the_suppressed_counter() {
        let specs = tp27_specs();
        let open = analyze_specs(&specs, &cfg(1), &Suppressions::none());
        let allow = Suppressions::parse(["RCH004"]).unwrap();
        let suppressed = analyze_specs(&specs, &cfg(1), &allow);
        assert!(open.ledger.by_code.contains_key("RCH004"));
        assert!(!suppressed.ledger.by_code.contains_key("RCH004"));
        assert_eq!(suppressed.ledger.suppressed, open.ledger.by_code["RCH004"]);
        assert_ne!(open.digest(), suppressed.digest());
    }

    #[test]
    fn sarif_lists_every_rule_and_mirrors_diagnostics() {
        let specs = tp27_specs();
        let report = analyze_specs(&specs, &cfg(1), &Suppressions::none());
        let sarif = report.render_sarif();
        for code in LintCode::ALL {
            assert!(sarif.contains(&format!("{{\"id\":\"{}\"", code.code())));
        }
        let findings: usize = report.apps.iter().map(|a| a.diagnostics.len()).sum();
        assert_eq!(sarif.matches("\"ruleId\"").count(), findings);
    }
}
