//! Workloads: the app sets the paper evaluates on.
//!
//! * [`tp27`] — the 27 apps of the TP-37 set that run on the evaluation
//!   board (Table 3), each with its documented runtime-change issue,
//! * [`top100`] — the Google-Play top-100 study of §6 (Table 5),
//! * [`benchmark`] — the synthetic benchmark apps (N ImageViews + a
//!   Button whose AsyncTask updates them after 5 s) used by Figs. 9–11,
//! * [`generic`] — the [`generic::GenericApp`] model that realises an
//!   app descriptor as black-box `AppModel` (droidsim-app) logic, with each state item bound to a concrete
//!   *mechanism* (framework view, custom view without `onSaveInstanceState`,
//!   dynamically created view, member field saved/unsaved) so that the
//!   simulator *derives* Table 3/5 outcomes from mechanism rather than
//!   looking them up.
//!
//! Per-app quantitative parameters (view counts, complexity, memory) are
//! generated deterministically from the app's name, calibrated so that
//! set-level aggregates land in the paper's ranges (TP-27 apps ≈ 47.6 MB
//! base PSS and ≈ 141-160 ms stock handling; top-100 apps ≈ 162 MB and
//! ≈ 420 ms).

pub mod benchmark;
pub mod dataloss;
pub mod generic;
pub mod top100;
pub mod tp27;

pub use benchmark::{benchmark_app, view_sweep, DeepApp, BENCHMARK_BASE_MEMORY};
pub use dataloss::{
    dataloss_specs, DataLossClass, DataLossField, DataLossScenario, FieldOwner, FieldPersistence,
    DATALOSS_APPS_PER_CLASS,
};
pub use generic::{GenericApp, GenericAppSpec, StateItem, StateMechanism};
pub use top100::{top100_sample, top100_specs};
pub use tp27::tp27_specs;
