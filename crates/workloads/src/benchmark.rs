//! The synthetic benchmark apps (§5.1's second app-set): layouts of N
//! `ImageView`s plus one `Button` whose press starts a 5-second AsyncTask
//! that updates every image.

use droidsim_app::SimpleApp;

/// Base PSS assumed for the benchmark app process (small: it is a
/// single-activity skeleton).
pub const BENCHMARK_BASE_MEMORY: u64 = 40 * 1024 * 1024;

/// Builds the benchmark app with `views` ImageViews.
pub fn benchmark_app(views: usize) -> SimpleApp {
    SimpleApp::with_views(views)
}

/// The view-count sweep of Fig. 10: 2⁰ … 2⁴.
pub fn view_sweep() -> Vec<usize> {
    vec![1, 2, 4, 8, 16]
}

/// A deep-tree benchmark app: `depth` nested `LinearLayout`s with one
/// `EditText` at the bottom. The paper's benchmark apps are wide
/// (siblings); deep nesting stresses the recursive machinery (hierarchy
/// save, grafting, mapping, layout) differently — RCHDroid's behaviour
/// must not depend on tree *shape*.
#[derive(Debug)]
pub struct DeepApp {
    resources: droidsim_resources::ResourceTable,
    depth: usize,
}

impl DeepApp {
    /// Builds the app with the given nesting depth (≥ 1).
    pub fn new(depth: usize) -> Self {
        use droidsim_resources::{LayoutNode, LayoutTemplate, Qualifiers, ResourceValue};
        let depth = depth.max(1);
        let mut node = LayoutNode::new("EditText").with_id("leaf");
        for level in (0..depth).rev() {
            node = LayoutNode::new("LinearLayout")
                .with_id(&format!("level_{level}"))
                .with_child(node);
        }
        let mut resources = droidsim_resources::ResourceTable::new();
        resources.put(
            "activity_main",
            Qualifiers::any(),
            ResourceValue::Layout(LayoutTemplate::new("activity_main", node)),
        );
        DeepApp { resources, depth }
    }

    /// The nesting depth.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl droidsim_app::AppModel for DeepApp {
    fn component_name(&self) -> &str {
        "com.deep/.Main"
    }

    fn resources(&self) -> &droidsim_resources::ResourceTable {
        &self.resources
    }

    fn main_layout(&self) -> &str {
        "activity_main"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidsim_app::AppModel;

    #[test]
    fn sweep_is_powers_of_two() {
        assert_eq!(view_sweep(), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn benchmark_app_has_requested_views() {
        let app = benchmark_app(8);
        assert_eq!(app.image_count(), 8);
        assert_eq!(app.component_name(), "com.bench/.Main");
        assert_eq!(app.button_task().result.ops.len(), 8);
    }
}
