//! The Google-Play top-100 study (§6, Table 5).
//!
//! 63 of the 100 apps exhibit runtime-change issues under the stock
//! restarting-based handling; of the remaining 37, 26 declare
//! `android:configChanges` and handle changes themselves and 11 use the
//! default handling without observable issues. RCHDroid fixes 59 of the
//! 63 (§6 "Effectiveness"); the four exceptions — Filto (#2),
//! HaircutPrank (#57), CastForChrome (#66) and KingJamesBible (#70) —
//! keep the lossy state in unsaved member fields.
//!
//! (Table 5's last row, Wish, reads "Yes / No" in the paper; §6's counts
//! — 63 with issues, 37 without — only add up if Wish is issue-free, so
//! it is classified as restart-safe here.)

use crate::generic::{GenericAppSpec, StateItem, StateMechanism};

/// Rows of Table 5: `(name, downloads, problem)` where `problem` is
/// `None` for issue-free apps.
fn table5_rows() -> Vec<(&'static str, &'static str, Option<&'static str>)> {
    vec![
        ("AmazonPrimeVideo", "100M+", Some("State loss (text box)")),
        ("Filto", "5M+", Some("State loss (selection list)")),
        ("TikTok", "1B+", Some("State loss (text box)")),
        ("Instagram", "1B+", None),
        ("WhatsApp", "5B+", None),
        ("CashApp", "50M+", None),
        ("DeepCleaner", "10M+", None),
        ("ZOOM", "500M+", None),
        ("Disney+", "100M+", Some("State loss (scroll location)")),
        ("Snapchat", "1B+", Some("State loss (login page)")),
        ("AmazonShopping", "500M+", None),
        ("Telegram", "1B+", Some("State loss (text box)")),
        ("TorBrowser", "10M+", None),
        ("MaxCleaner", "5M+", None),
        ("Messenger", "5B+", None),
        ("PeacockTV", "10M+", None),
        (
            "WalmartShopping",
            "50M+",
            Some("State loss (scroll location)"),
        ),
        ("McDonald's", "10M+", None),
        ("Facebook", "5B+", Some("State loss (selection list)")),
        ("NewsBreak", "50M+", Some("State loss (text box)")),
        ("CapCut", "100M+", None),
        ("QR&BarcodeScanner", "100M+", Some("State loss (zoom bar)")),
        ("MicrosoftTeams", "100M+", Some("State loss (text box)")),
        ("Indeed", "100M+", None),
        ("Tubi", "100M+", None),
        ("SHEIN", "100M+", Some("State loss (selection list)")),
        ("TextNow", "50M+", Some("State loss (login page)")),
        ("Twitter", "1B+", Some("State loss (text box)")),
        ("Wonder", "1M+", None),
        ("Netflix", "1B+", Some("State loss (FAQ list)")),
        (
            "AllDocumentReader",
            "50M+",
            Some("State loss (selection list)"),
        ),
        ("Roku", "50M+", None),
        ("PlutoTV", "100M+", None),
        ("DoorDash", "10M+", Some("State loss (selection list)")),
        ("Uber", "500M+", None),
        ("Discord", "100M+", Some("State loss (register page)")),
        ("Audible", "100M+", Some("State loss (text box)")),
        ("Ticketmaster", "10M+", Some("State loss (selection list)")),
        ("Life360", "100M+", None),
        ("Hulu", "50M+", Some("State loss (text box)")),
        ("Orbot", "10M+", Some("State loss (selection list)")),
        ("MovetoiOS", "100M+", Some("State loss (scroll location)")),
        ("DailyDiary", "10M+", Some("State loss (text box)")),
        ("Yoshion", "1M+", Some("State loss (selection list)")),
        ("MSAuthenticator", "50M+", Some("State loss (text box)")),
        ("PowerCleaner", "10M+", Some("State loss (report page)")),
        ("SamsungSmartSwitch", "100M+", None),
        ("Alibaba.com", "100M+", Some("State loss (selection list)")),
        ("Reddit", "100M+", None),
        ("Paramount+", "10M+", None),
        ("Lyft", "50M+", None),
        ("Pinterest", "500M+", Some("State loss (text box)")),
        ("OfferUp", "50M+", None),
        ("BeReal", "5M+", Some("State loss (text box)")),
        ("UberEats", "100M+", Some("State loss (text box)")),
        ("FetchRewards", "10M+", Some("State loss (scroll location)")),
        ("HaircutPrank", "1M+", Some("State loss (volume bar)")),
        (
            "MyBath&BodyWorks",
            "1M+",
            Some("State loss (scroll location)"),
        ),
        ("Wholee", "5M+", Some("State loss (selection list)")),
        ("UltraCleaner", "1M+", Some("State loss (file number)")),
        ("eBay", "100M+", None),
        ("FacebookLite", "1B+", Some("State loss (text box)")),
        ("Adidas", "10M+", Some("State loss (product list)")),
        ("Duolingo", "100M+", None),
        ("BravoCleaner", "10M+", Some("State loss (selection list)")),
        ("CastForChrome", "10M+", Some("State loss (selection list)")),
        ("Waze", "100M+", None),
        ("UltraSurf", "10M+", Some("State loss (selection list)")),
        ("PetDiary", "500K+", Some("State loss (scroll location)")),
        (
            "KingJamesBible",
            "50M+",
            Some("State loss (selection list)"),
        ),
        ("EmailHome", "5M+", None),
        ("CapitalOne", "10M+", None),
        ("Plex", "10M+", None),
        ("DoordashDasher", "10M+", Some("State loss (text box)")),
        ("Shop", "10M+", None),
        ("Expedia", "10M+", Some("State loss (text box)")),
        ("ESPN", "50M+", Some("State loss (scroll location)")),
        ("Pandora", "100M+", None),
        ("Picsart", "500M+", Some("State loss (scroll location)")),
        ("FileRecovery", "10M+", Some("State loss (report page)")),
        ("Callapp", "100M+", Some("State loss (selection list)")),
        ("Tinder", "100M+", Some("State loss (text box)")),
        ("Etsy", "10M+", Some("State loss (text box)")),
        ("SiriusXM", "10M+", None),
        ("AliExpress", "500M+", Some("State loss (scroll location)")),
        ("NFL", "100M+", None),
        ("Adobe", "500M+", Some("State loss (login page)")),
        ("KJVBible", "100K+", Some("State loss (timer state)")),
        ("HomeDepot", "10M+", Some("State loss (selection list)")),
        ("TacoBell", "10M+", Some("State loss (location page)")),
        ("UberDriver", "100M+", Some("State loss (login page)")),
        ("Booking.com", "500M+", Some("State loss (text box)")),
        ("CCFileManager", "5M+", Some("State loss (selection list)")),
        ("SpeedBooster", "5M+", Some("State loss (report page)")),
        ("Firefox", "100M+", None),
        ("Twitch", "100M+", None),
        ("Target", "10M+", Some("State loss (check box)")),
        ("SmartBooster", "10M+", Some("State loss (report page)")),
        ("Bumble", "10M+", Some("State loss (selection list)")),
        ("Wish", "500M+", None),
    ]
}

/// Apps whose lossy state RCHDroid cannot restore (unsaved member
/// fields) — §6's four exceptions.
pub const UNFIXABLE: [&str; 4] = ["Filto", "HaircutPrank", "CastForChrome", "KingJamesBible"];

/// "Report page" style apps recreate their result views in code —
/// RuntimeDroid's static reconstruction cannot rebuild those.
const DYNAMIC_VIEW_APPS: [&str; 5] = [
    "PowerCleaner",
    "UltraCleaner",
    "FileRecovery",
    "SpeedBooster",
    "SmartBooster",
];

/// The first `n` specs of Table 5, in the paper's order — a mini study
/// for fleet benchmarks and determinism checks that need real top-100
/// workloads without the full 100-app wall-clock cost.
pub fn top100_sample(n: usize) -> Vec<GenericAppSpec> {
    let mut specs = top100_specs();
    specs.truncate(n);
    specs
}

/// The 100 specs of Table 5, in the paper's order.
pub fn top100_specs() -> Vec<GenericAppSpec> {
    let rows = table5_rows();
    let mut no_issue_seen = 0;
    rows.into_iter()
        .map(|(name, downloads, problem)| {
            let mut spec = GenericAppSpec::sized(name, downloads, true);
            match problem {
                Some(problem) => {
                    let mechanism = if UNFIXABLE.contains(&name) {
                        StateMechanism::MemberUnsaved
                    } else if DYNAMIC_VIEW_APPS.contains(&name) {
                        StateMechanism::DynamicViewNoSave
                    } else {
                        StateMechanism::CustomViewNoSave
                    };
                    let test_value = showcase_value(problem);
                    spec = spec.with_issue(
                        problem,
                        StateItem::new("issue_state", mechanism, test_value),
                    );
                }
                None => {
                    // Of the 37 issue-free apps, 26 declare configChanges
                    // and 11 are restart-safe (their state lives in
                    // framework views / saved bundles).
                    no_issue_seen += 1;
                    if no_issue_seen <= 26 {
                        spec = spec.self_handling();
                    } else {
                        spec = spec.saving_state().with_issue_free_state();
                    }
                }
            }
            spec
        })
        .collect()
}

/// A representative user-visible value for each problem class (what the
/// Fig. 13 "red boxes" contain).
fn showcase_value(problem: &str) -> &'static str {
    if problem.contains("text box") || problem.contains("login") || problem.contains("register") {
        "alice@example.com"
    } else if problem.contains("scroll") {
        "scrolled to 1840 px"
    } else if problem.contains("timer") {
        "04:37 remaining"
    } else if problem.contains("selection") || problem.contains("list") {
        "item #3 selected"
    } else if problem.contains("zoom") || problem.contains("volume") {
        "level 7"
    } else if problem.contains("check box") {
        "checked"
    } else {
        "user input"
    }
}

impl GenericAppSpec {
    /// Gives an issue-free app a framework-view state item so the
    /// restart-safe behaviour is actually exercised, not just absent.
    fn with_issue_free_state(mut self) -> Self {
        self.state_items.push(StateItem::new(
            "safe_state",
            StateMechanism::FrameworkView,
            "safe value",
        ));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_section6() {
        let specs = top100_specs();
        assert_eq!(specs.len(), 100);
        let with_issue = specs.iter().filter(|s| s.has_issue()).count();
        assert_eq!(with_issue, 63, "63 of 100 apps have issues");
        let self_handling = specs.iter().filter(|s| s.handles_changes).count();
        assert_eq!(self_handling, 26, "26 declare configChanges");
        let restart_safe = specs
            .iter()
            .filter(|s| !s.has_issue() && !s.handles_changes)
            .count();
        assert_eq!(restart_safe, 11, "11 restart-safe");
    }

    #[test]
    fn four_apps_are_unfixable() {
        let specs = top100_specs();
        let unfixable: Vec<&str> = specs
            .iter()
            .filter(|s| s.has_issue() && !s.fixed_by_rchdroid())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(unfixable, UNFIXABLE.to_vec());
        let fixed = specs
            .iter()
            .filter(|s| s.has_issue() && s.fixed_by_rchdroid())
            .count();
        assert_eq!(fixed, 59, "59 of 63 fixed (93.65 %)");
    }

    #[test]
    fn known_rows_match_the_table() {
        let specs = top100_specs();
        assert_eq!(specs[0].name, "AmazonPrimeVideo");
        assert_eq!(specs[27].name, "Twitter");
        assert_eq!(specs[27].issue.as_deref(), Some("State loss (text box)"));
        assert_eq!(specs[3].name, "Instagram");
        assert!(!specs[3].has_issue());
        assert_eq!(specs[99].name, "Wish");
    }

    #[test]
    fn large_app_calibration_ranges() {
        for spec in top100_specs() {
            assert!((80..=250).contains(&spec.view_count), "{}", spec.name);
            assert!(
                spec.complexity >= 1.5 && spec.complexity <= 2.3,
                "{}",
                spec.name
            );
            let base_mb = spec.base_memory_bytes as f64 / (1 << 20) as f64;
            assert!((140.0..=161.0).contains(&base_mb), "{}", spec.name);
        }
    }

    #[test]
    fn issue_apps_lose_state_under_stock() {
        for spec in top100_specs().iter().filter(|s| s.has_issue()) {
            assert!(spec.issue_under_stock(), "{}", spec.name);
        }
    }
}
