//! The data-loss corpus: per-field persistence descriptors and a seeded
//! generator for the five bug classes that dominate real change-handling
//! failures (fields lost across stop/restart, dialog/fragment sub-state,
//! async writes racing a second rotation, process death with a saved
//! bundle, and in-flight user input — the taxonomy of "Detecting and
//! Fixing Data Loss Issues in Android Apps" and the data-loss bug
//! benchmark, PAPERS.md).
//!
//! A [`DataLossField`] describes *where* one piece of user data lives
//! (activity member, dialog subtree, fragment subtree, an async-written
//! view, an uncommitted input view) and *which save site* covers it
//! (none, the instance bundle, or a persistent store). The
//! [`DataLossClass`] picks the lifecycle interleaving the scenario
//! drives. Together they mechanically determine survival under each
//! handling scheme, exactly like [`StateMechanism`](crate::StateMechanism)
//! does for the paper's corpus — the static pass and the dynamic oracle
//! must agree on every field, which the differential gate enforces.

use crate::generic::{hash_name, GenericAppSpec};
use droidsim_kernel::{SplitMix64, Xoshiro256};

/// Which save site (if any) covers a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldPersistence {
    /// No save site at all: the field exists only in live memory.
    Transient,
    /// Written by `onSaveInstanceState` (explicitly, or via the view
    /// hierarchy bundle for view-held fields) and read back on restore.
    BundleSaved,
    /// Written through to a persistent store at interaction time and
    /// re-read in `onCreate`; survives even process death.
    StorePersisted,
}

/// Where a field's live value is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldOwner {
    /// A member field of the activity instance.
    Member,
    /// A view inside a dialog-like subtree the app creates in code when
    /// the dialog is shown (absent from the layout resource).
    Dialog,
    /// A view inside a fragment subtree attached in `onCreate`.
    Fragment,
    /// A framework view in the layout that an in-flight async task
    /// writes after the change.
    AsyncView,
    /// An input view in the layout holding text the user typed but the
    /// app has not yet committed (no save site ever sees it).
    InputView,
}

/// The lifecycle interleaving a data-loss scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataLossClass {
    /// Plain stop/restart: two rotations back to back.
    StopRestart,
    /// Dialog/fragment sub-state owners across two rotations.
    SubStateOwner,
    /// An async write racing a double rotation.
    AsyncRace,
    /// Process death with the save bundle retained: background the app,
    /// reclaim it under memory pressure, switch back.
    ProcessDeath,
    /// User input in flight (typed but uncommitted) across two
    /// rotations.
    InputInFlight,
}

impl DataLossClass {
    /// Every class, in corpus order.
    pub const ALL: [DataLossClass; 5] = [
        DataLossClass::StopRestart,
        DataLossClass::SubStateOwner,
        DataLossClass::AsyncRace,
        DataLossClass::ProcessDeath,
        DataLossClass::InputInFlight,
    ];

    /// CamelCase tag used in generated app names.
    pub fn tag(self) -> &'static str {
        match self {
            DataLossClass::StopRestart => "StopRestart",
            DataLossClass::SubStateOwner => "SubState",
            DataLossClass::AsyncRace => "AsyncRace",
            DataLossClass::ProcessDeath => "ProcDeath",
            DataLossClass::InputInFlight => "InFlight",
        }
    }

    /// Kebab-case label used in issue strings, tables and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            DataLossClass::StopRestart => "stop-restart",
            DataLossClass::SubStateOwner => "sub-state-owner",
            DataLossClass::AsyncRace => "async-race",
            DataLossClass::ProcessDeath => "process-death",
            DataLossClass::InputInFlight => "input-in-flight",
        }
    }

    /// Whether the scenario's lifecycle interleaving is a configuration
    /// change (vs process death, which no `configChanges` declaration
    /// can opt out of).
    pub fn is_rotation_based(self) -> bool {
        !matches!(self, DataLossClass::ProcessDeath)
    }

    /// The field owners this class exercises.
    pub fn owners(self) -> &'static [FieldOwner] {
        match self {
            DataLossClass::StopRestart => &[FieldOwner::Member],
            DataLossClass::SubStateOwner => &[FieldOwner::Dialog, FieldOwner::Fragment],
            DataLossClass::AsyncRace => &[FieldOwner::AsyncView],
            DataLossClass::ProcessDeath => &[FieldOwner::Member, FieldOwner::Fragment],
            DataLossClass::InputInFlight => &[FieldOwner::InputView],
        }
    }

    /// The persistence descriptors this class varies over. Async-written
    /// and in-flight fields have no committed value for a save site to
    /// cover, so only `Transient` is meaningful there.
    pub fn persistences(self) -> &'static [FieldPersistence] {
        match self {
            DataLossClass::AsyncRace | DataLossClass::InputInFlight => {
                &[FieldPersistence::Transient]
            }
            _ => &[
                FieldPersistence::Transient,
                FieldPersistence::BundleSaved,
                FieldPersistence::StorePersisted,
            ],
        }
    }
}

/// One field of user data with its persistence descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLossField {
    /// The view id name or member-field key.
    pub key: String,
    /// Where the live value is held.
    pub owner: FieldOwner,
    /// Which save site covers it.
    pub persistence: FieldPersistence,
    /// The value the scenario expects to survive.
    pub test_value: String,
}

impl DataLossField {
    /// Creates a field descriptor.
    pub fn new(key: &str, owner: FieldOwner, persistence: FieldPersistence) -> Self {
        DataLossField {
            key: key.to_owned(),
            owner,
            persistence,
            test_value: format!("typed-{key}"),
        }
    }
}

/// A labeled data-loss scenario: the lifecycle interleaving plus the
/// fields it puts at risk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLossScenario {
    /// The lifecycle interleaving driven by the oracle.
    pub class: DataLossClass,
    /// The fields the scenario exercises.
    pub fields: Vec<DataLossField>,
}

impl DataLossScenario {
    /// Creates a scenario.
    pub fn new(class: DataLossClass, fields: Vec<DataLossField>) -> Self {
        DataLossScenario { class, fields }
    }

    /// Whether *any* of the three schemes (stock, RCHDroid, RuntimeDroid)
    /// loses or hides at least one field under this scenario — the
    /// corpus label, mirroring how the paper's corpora label documented
    /// issues. The mechanics:
    ///
    /// - Process death is mode-independent: only a `Transient` field is
    ///   lost (the bundle is retained, the store survives by
    ///   definition).
    /// - A self-handled configuration change (`configChanges`) skips the
    ///   restart under stock and RCHDroid — but **not** under
    ///   RuntimeDroid, whose hot-reload patch re-inflates regardless and
    ///   drops dialog and fragment subtrees it cannot rebuild.
    /// - Sub-state owners are therefore always hazardous: RuntimeDroid's
    ///   static reconstruction loses them whatever the save site says.
    /// - An async write racing the double rotation crashes stock (the
    ///   callback lands on a destroyed instance) and leaves RCHDroid's
    ///   replacement shadow stale.
    /// - In-flight input has no save site by definition: stock loses it.
    pub fn hazardous(&self, handles_changes: bool) -> bool {
        let any_transient = self
            .fields
            .iter()
            .any(|f| f.persistence == FieldPersistence::Transient);
        match self.class {
            DataLossClass::ProcessDeath => any_transient,
            DataLossClass::SubStateOwner => !self.fields.is_empty(),
            DataLossClass::StopRestart => !handles_changes && any_transient,
            DataLossClass::AsyncRace | DataLossClass::InputInFlight => {
                !handles_changes && !self.fields.is_empty()
            }
        }
    }
}

/// Generated apps per class (5 classes × this = the corpus size).
pub const DATALOSS_APPS_PER_CLASS: usize = 104;

/// The full generated data-loss corpus: ≥500 labeled apps spanning all
/// five classes, deterministic for a given crate version (every
/// parameter derives from the generated app name).
pub fn dataloss_specs() -> Vec<GenericAppSpec> {
    let mut specs = Vec::with_capacity(DataLossClass::ALL.len() * DATALOSS_APPS_PER_CLASS);
    for class in DataLossClass::ALL {
        for index in 0..DATALOSS_APPS_PER_CLASS {
            specs.push(dataloss_app(class, index));
        }
    }
    specs
}

/// Field keys, disjoint from the generic layout's fixed id names
/// (`root`, `content_*`, `async_target`) and from the keys the other
/// test corpora use.
const FIELD_KEYS: [&str; 3] = ["alpha_field", "beta_field", "gamma_field"];

/// One generated app: the class picks the scenario, the seeded RNG picks
/// field count, owners, persistence mix and the self-handling flag.
fn dataloss_app(class: DataLossClass, index: usize) -> GenericAppSpec {
    let name = format!("Dl{}{:03}", class.tag(), index);
    let mut spec = GenericAppSpec::sized(&name, "10K+", false);
    let mut rng = Xoshiro256::seed_from(SplitMix64::new(hash_name(&name) ^ 0xda7a_1055).next_u64());
    // Small layouts keep a 500-app × 3-mode fleet cheap; the heap target
    // is untouched (the per-image cost just grows to compensate).
    spec.view_count = rng.next_range(6, 20) as usize;

    let owners = class.owners();
    let persistences = class.persistences();
    let field_count = match class {
        DataLossClass::AsyncRace => rng.next_range(1, 2) as usize,
        _ => rng.next_range(1, 3) as usize,
    };
    let fields = (0..field_count)
        .map(|i| {
            let owner = owners[rng.next_range(0, owners.len() as u64 - 1) as usize];
            let persistence =
                persistences[rng.next_range(0, persistences.len() as u64 - 1) as usize];
            DataLossField::new(FIELD_KEYS[i], owner, persistence)
        })
        .collect();
    let scenario = DataLossScenario::new(class, fields);

    // A slice of every rotation-based class self-handles, so the corpus
    // also covers the configChanges escape hatch (and RuntimeDroid's
    // refusal to honour it).
    if class.is_rotation_based() {
        spec.handles_changes = rng.next_range(0, 5) == 0;
    }
    // The restore path only runs for apps that implement
    // onSaveInstanceState; a bundle-saved field implies the app does.
    spec.saves_instance_state = scenario
        .fields
        .iter()
        .any(|f| f.persistence == FieldPersistence::BundleSaved);
    if scenario.hazardous(spec.handles_changes) {
        spec.issue = Some(format!("data-loss/{}", class.label()));
    }
    spec.dataloss = Some(scenario);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_at_least_500_apps_across_all_classes() {
        let specs = dataloss_specs();
        assert!(specs.len() >= 500, "{} apps", specs.len());
        for class in DataLossClass::ALL {
            let n = specs
                .iter()
                .filter(|s| s.dataloss.as_ref().unwrap().class == class)
                .count();
            assert_eq!(n, DATALOSS_APPS_PER_CLASS, "{class:?}");
        }
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(dataloss_specs(), dataloss_specs());
    }

    #[test]
    fn every_app_has_fields_and_unique_keys() {
        for spec in dataloss_specs() {
            let dl = spec.dataloss.as_ref().unwrap();
            assert!(!dl.fields.is_empty(), "{}", spec.name);
            let mut keys: Vec<_> = dl.fields.iter().map(|f| &f.key).collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), dl.fields.len(), "{}", spec.name);
            assert!(
                dl.fields
                    .iter()
                    .all(|f| dl.class.owners().contains(&f.owner)),
                "{}: owners match the class",
                spec.name
            );
        }
    }

    #[test]
    fn bundle_saved_fields_imply_save_instance_state() {
        for spec in dataloss_specs() {
            let dl = spec.dataloss.as_ref().unwrap();
            let has_bundle = dl
                .fields
                .iter()
                .any(|f| f.persistence == FieldPersistence::BundleSaved);
            assert_eq!(spec.saves_instance_state, has_bundle, "{}", spec.name);
        }
    }

    #[test]
    fn labels_follow_the_hazard_predicate() {
        let specs = dataloss_specs();
        let labeled = specs.iter().filter(|s| s.has_issue()).count();
        // Both labeled and clean apps must exist, or the clean-only lint
        // gate and the issue-rate table would be vacuous.
        assert!(labeled > 100, "{labeled} labeled");
        assert!(labeled < specs.len(), "some apps are clean");
        for spec in &specs {
            let dl = spec.dataloss.as_ref().unwrap();
            assert_eq!(
                spec.has_issue(),
                dl.hazardous(spec.handles_changes),
                "{}",
                spec.name
            );
        }
    }
}
