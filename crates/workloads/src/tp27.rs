//! The TP-27 app set (Table 3): the 27 apps of the TP-37 set that run on
//! the evaluation board, each with its documented runtime-change issue.
//!
//! The state mechanism assigned to each app encodes *why* the issue
//! occurs: most apps hold the lossy state in custom views that skip
//! `onSaveInstanceState` (fixed by RCHDroid's live-attribute migration);
//! a few create the stateful views dynamically; apps #9 (DiskDiggerPro)
//! and #10 (Dock4Droid) keep it in unsaved member fields — the two cases
//! the paper reports RCHDroid cannot fix (25/27 in §5.2).

use crate::generic::{GenericAppSpec, StateItem, StateMechanism};

/// The 27 specs of Table 3, in the paper's order.
pub fn tp27_specs() -> Vec<GenericAppSpec> {
    use StateMechanism::{CustomViewNoSave, DynamicViewNoSave, MemberUnsaved};
    let rows: [(&str, &str, &str, StateMechanism, bool); 27] = [
        (
            "AlarmClockPlus",
            "5M+",
            "The alarm state is lost after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "AlarmKlock",
            "500K+",
            "The alarm time change is gone after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "AndroidToken",
            "5M+",
            "The selected token is lost after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "BlueNET",
            "500K+",
            "The server is unexpectedly turned off after restart",
            CustomViewNoSave,
            true,
        ),
        (
            "BrightnessProfile",
            "5M+",
            "Brightness level is lost after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "BTHFPowerSave",
            "500K+",
            "State changes are lost after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "CalenMob",
            "10K+",
            "The working date resets to current date after restart",
            DynamicViewNoSave,
            false,
        ),
        (
            "DateSlider",
            "10K+",
            "The chosen date is lost after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "DiskDiggerPro",
            "100K+",
            "The percentage set by the user is lost after restart",
            MemberUnsaved,
            true,
        ),
        (
            "Dock4Droid",
            "10K+",
            "The last-added app is missing after restart",
            MemberUnsaved,
            false,
        ),
        (
            "DrWebAntiVirus",
            "100M+",
            "The check box setting is lost after restart",
            CustomViewNoSave,
            true,
        ),
        (
            "Droidstack",
            "100K+",
            "The title is not preserved after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "FoxFi",
            "10M+",
            "The entered email is lost after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "MOBILedit",
            "1K+",
            "The WiFi settings are not retained after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "OIFileManager",
            "5M+",
            "The last-opened path is lost after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "OpenSudoku",
            "1M+",
            "User-filled numbers are lost after restart",
            DynamicViewNoSave,
            false,
        ),
        (
            "OpenWordSearch",
            "1M+",
            "The word filled by user is lost after restarts",
            CustomViewNoSave,
            false,
        ),
        (
            "WorkRecorder",
            "5K+",
            "The workout start time is lost after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "PowerToggles",
            "10K+",
            "The notification widgets are lost after restart",
            DynamicViewNoSave,
            false,
        ),
        (
            "PhoneCopier",
            "10K+",
            "The email address is lost after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "ScrambledNet",
            "10K+",
            "The game state is lost after a restart",
            CustomViewNoSave,
            true,
        ),
        (
            "ScrollableNews",
            "1K+",
            "The color selection is lost after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "ServDroidWeb",
            "1K+",
            "The new status is gone after restarts",
            CustomViewNoSave,
            true,
        ),
        (
            "SouveyMusicPro",
            "1K+",
            "The settings of Metronome are lost after restart",
            CustomViewNoSave,
            false,
        ),
        (
            "SSHTunnel",
            "100K+",
            "SSH connection profile is lost upon restart",
            CustomViewNoSave,
            false,
        ),
        (
            "VPNConnection",
            "1K+",
            "The IPSec ID is lost upon restart",
            CustomViewNoSave,
            false,
        ),
        (
            "ZircoBrowser",
            "1K+",
            "Bookmark is lost after restart",
            DynamicViewNoSave,
            false,
        ),
    ];
    rows.iter()
        .map(|&(name, downloads, issue, mechanism, with_async)| {
            let mut spec = GenericAppSpec::sized(name, downloads, false).with_issue(
                issue,
                StateItem::new("issue_state", mechanism, "user-set value"),
            );
            if with_async {
                spec = spec.with_async_task();
            }
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_27_apps_all_with_issues() {
        let specs = tp27_specs();
        assert_eq!(specs.len(), 27);
        assert!(specs.iter().all(GenericAppSpec::has_issue));
        assert!(specs.iter().all(GenericAppSpec::issue_under_stock));
    }

    #[test]
    fn exactly_two_apps_are_unfixable() {
        // §5.2: 25 out of 27 fixed; #9 and #10 are not.
        let specs = tp27_specs();
        let unfixable: Vec<&str> = specs
            .iter()
            .filter(|s| !s.fixed_by_rchdroid())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(unfixable, vec!["DiskDiggerPro", "Dock4Droid"]);
    }

    #[test]
    fn names_match_table3_order() {
        let specs = tp27_specs();
        assert_eq!(specs[0].name, "AlarmClockPlus");
        assert_eq!(specs[8].name, "DiskDiggerPro");
        assert_eq!(specs[26].name, "ZircoBrowser");
    }

    #[test]
    fn small_app_calibration_ranges() {
        for spec in tp27_specs() {
            assert!((12..=56).contains(&spec.view_count), "{}", spec.name);
            assert!(
                spec.complexity >= 0.8 && spec.complexity <= 1.2,
                "{}",
                spec.name
            );
            let base_mb = spec.base_memory_bytes as f64 / (1 << 20) as f64;
            assert!((38.0..=45.0).contains(&base_mb), "{}", spec.name);
        }
    }

    #[test]
    fn every_spec_builds() {
        use droidsim_app::AppModel;
        for spec in tp27_specs() {
            let app = spec.build();
            assert!(app.component_name().starts_with("com."));
        }
    }
}
