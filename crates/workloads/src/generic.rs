//! The generic app model: a descriptor-driven black-box app.

use crate::dataloss::{DataLossScenario, FieldOwner, FieldPersistence};
use droidsim_app::{Activity, AppModel, AsyncResult, AsyncSpec, FragmentSpec};
use droidsim_bundle::Bundle;
use droidsim_config::ConfigChanges;
use droidsim_kernel::{SimDuration, SplitMix64, Xoshiro256};
use droidsim_resources::{LayoutNode, LayoutTemplate, Qualifiers, ResourceTable, ResourceValue};
use droidsim_view::{ViewKind, ViewOp};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// How a piece of app state is held — the property that *mechanically*
/// determines whether it survives each handling scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateMechanism {
    /// In a framework view with an id: the hierarchy bundle carries it,
    /// every scheme preserves it.
    FrameworkView,
    /// In a layout-declared custom view that does **not** implement
    /// `onSaveInstanceState`: lost on a stock restart; preserved by
    /// RCHDroid (live-attribute migration) and RuntimeDroid (dynamic
    /// migration).
    CustomViewNoSave,
    /// In a view the app creates in code (absent from the layout
    /// resource), also without state saving: lost on a stock restart and
    /// by RuntimeDroid's static reconstruction; preserved by RCHDroid.
    DynamicViewNoSave,
    /// A member field the app saves in `onSaveInstanceState`: survives
    /// everywhere.
    MemberSaved,
    /// A member field the app never saves: lost on a stock restart and
    /// by RCHDroid (nothing to migrate — apps #9/#10 of Table 3);
    /// RuntimeDroid keeps it because the instance survives.
    MemberUnsaved,
}

impl StateMechanism {
    /// Whether the item survives a stock restarting-based change.
    pub fn survives_stock_restart(self) -> bool {
        matches!(
            self,
            StateMechanism::FrameworkView | StateMechanism::MemberSaved
        )
    }

    /// Whether RCHDroid preserves the item.
    pub fn fixed_by_rchdroid(self) -> bool {
        !matches!(self, StateMechanism::MemberUnsaved)
    }

    /// Whether RuntimeDroid preserves the item.
    pub fn fixed_by_runtimedroid(self) -> bool {
        !matches!(self, StateMechanism::DynamicViewNoSave)
    }

    /// Whether the item lives in a view (vs a member field).
    pub fn is_view_held(self) -> bool {
        matches!(
            self,
            StateMechanism::FrameworkView
                | StateMechanism::CustomViewNoSave
                | StateMechanism::DynamicViewNoSave
        )
    }
}

/// One piece of user state an app holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateItem {
    /// The view id name or member-field key.
    pub key: String,
    /// How the state is held.
    pub mechanism: StateMechanism,
    /// The value the test scenario sets before the runtime change.
    pub test_value: String,
}

impl StateItem {
    /// Creates an item.
    pub fn new(key: &str, mechanism: StateMechanism, test_value: &str) -> Self {
        StateItem {
            key: key.to_owned(),
            mechanism,
            test_value: test_value.to_owned(),
        }
    }
}

/// A descriptor for one evaluated app.
#[derive(Debug, Clone, PartialEq)]
pub struct GenericAppSpec {
    /// App name as the paper lists it.
    pub name: String,
    /// Play-store download bucket (Table 3/5 column).
    pub downloads: &'static str,
    /// The documented runtime-change issue, if any.
    pub issue: Option<String>,
    /// The state the test scenario exercises.
    pub state_items: Vec<StateItem>,
    /// Views in the main layout.
    pub view_count: usize,
    /// Cost-model complexity multiplier.
    pub complexity: f64,
    /// Process base PSS in bytes.
    pub base_memory_bytes: u64,
    /// Target heap of one activity instance in bytes (drawables sized to
    /// hit it).
    pub activity_heap_bytes: u64,
    /// Whether the app declares `android:configChanges` for everything.
    pub handles_changes: bool,
    /// Whether the app implements `onSaveInstanceState`.
    pub saves_instance_state: bool,
    /// Whether the test scenario has an async task in flight across the
    /// change.
    pub uses_async_task: bool,
    /// The data-loss scenario this app exercises, if it belongs to the
    /// generated data-loss corpus (see [`crate::dataloss`]).
    pub dataloss: Option<DataLossScenario>,
}

impl GenericAppSpec {
    /// A plain spec with derived quantitative parameters; `large` selects
    /// the top-100 (vs TP-27) calibration ranges.
    pub fn sized(name: &str, downloads: &'static str, large: bool) -> Self {
        let mut rng = Xoshiro256::seed_from(SplitMix64::new(hash_name(name)).next_u64());
        let (view_count, complexity, base_mb, heap_mb) = if large {
            (
                rng.next_range(80, 250) as usize,
                rng.next_f64_range(1.5, 2.3),
                rng.next_f64_range(140.0, 161.0),
                rng.next_f64_range(10.0, 13.2),
            )
        } else {
            (
                rng.next_range(12, 56) as usize,
                rng.next_f64_range(0.8, 1.2),
                rng.next_f64_range(38.0, 45.0),
                rng.next_f64_range(5.0, 7.0),
            )
        };
        GenericAppSpec {
            name: name.to_owned(),
            downloads,
            issue: None,
            state_items: Vec::new(),
            view_count,
            complexity,
            base_memory_bytes: (base_mb * 1024.0 * 1024.0) as u64,
            activity_heap_bytes: (heap_mb * 1024.0 * 1024.0) as u64,
            handles_changes: false,
            saves_instance_state: false,
            uses_async_task: false,
            dataloss: None,
        }
    }

    /// Sets the documented issue and the state item that causes it.
    pub fn with_issue(mut self, issue: &str, item: StateItem) -> Self {
        self.issue = Some(issue.to_owned());
        self.state_items.push(item);
        self
    }

    /// Marks the app as declaring `android:configChanges`.
    pub fn self_handling(mut self) -> Self {
        self.handles_changes = true;
        self
    }

    /// Marks the app as implementing `onSaveInstanceState`.
    pub fn saving_state(mut self) -> Self {
        self.saves_instance_state = true;
        self
    }

    /// Marks the test scenario as having an in-flight async task.
    pub fn with_async_task(mut self) -> Self {
        self.uses_async_task = true;
        self
    }

    /// Whether the paper reports a runtime-change issue for this app.
    pub fn has_issue(&self) -> bool {
        self.issue.is_some()
    }

    /// Predicted: does the issue persist under stock Android?
    pub fn issue_under_stock(&self) -> bool {
        self.has_issue()
            && self
                .state_items
                .iter()
                .any(|i| !i.mechanism.survives_stock_restart())
    }

    /// Predicted: does RCHDroid fix every lossy item?
    pub fn fixed_by_rchdroid(&self) -> bool {
        self.state_items
            .iter()
            .filter(|i| !i.mechanism.survives_stock_restart())
            .all(|i| i.mechanism.fixed_by_rchdroid())
    }

    /// Builds the runnable black-box app.
    pub fn build(&self) -> GenericApp {
        GenericApp::new(self.clone())
    }

    /// The async task the scenario starts (targets a dedicated framework
    /// view so the callback exercises the crash path under stock).
    pub fn async_task(&self) -> AsyncSpec {
        AsyncSpec {
            duration: SimDuration::from_secs(5),
            result: AsyncResult {
                ops: vec![(
                    "async_target".to_owned(),
                    ViewOp::SetText("async done".into()),
                )],
                shows_dialog: false,
            },
        }
    }

    /// The async write racing the data-loss scenario's rotations: a
    /// 5-second task that writes each async-owned field's expected value
    /// into its layout view. `None` when the scenario has no such field.
    pub fn dataloss_async_task(&self) -> Option<AsyncSpec> {
        let dl = self.dataloss.as_ref()?;
        let ops: Vec<(String, ViewOp)> = dl
            .fields
            .iter()
            .filter(|f| f.owner == FieldOwner::AsyncView)
            .map(|f| (f.key.clone(), ViewOp::SetText(f.test_value.clone())))
            .collect();
        if ops.is_empty() {
            return None;
        }
        Some(AsyncSpec {
            duration: SimDuration::from_secs(5),
            result: AsyncResult {
                ops,
                shows_dialog: false,
            },
        })
    }
}

pub(crate) fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

/// The runnable generic app.
#[derive(Debug)]
pub struct GenericApp {
    spec: GenericAppSpec,
    component: String,
    resources: ResourceTable,
    /// The app's persistent store ("disk"): written through at
    /// interaction time by store-persisted data-loss fields, re-read in
    /// `on_create`. Outlives any activity instance — and, unlike the
    /// instance bundle, even a reclaimed process record. Shared with
    /// probe copies via [`GenericApp::shared_probe`].
    store: Arc<Mutex<HashMap<String, String>>>,
}

impl GenericApp {
    /// Builds the app (layouts for both orientations; image views sized so
    /// one activity's heap hits the spec target).
    pub fn new(spec: GenericAppSpec) -> Self {
        let component = format!(
            "com.{}/.Main",
            spec.name
                .to_ascii_lowercase()
                .replace([' ', '+', '&', '.', '\''], "")
        );
        let image_count = spec.view_count.max(1);
        let per_image = spec.activity_heap_bytes / image_count as u64;

        let mut resources = ResourceTable::new();
        for (qualifiers, container) in [
            (Qualifiers::any(), "LinearLayout"),
            (
                Qualifiers::any().with_orientation(droidsim_config::Orientation::Landscape),
                "GridLayout",
            ),
        ] {
            let mut root = LayoutNode::new(container).with_id("root");
            for i in 0..image_count {
                root = root.with_child(
                    LayoutNode::new("ImageView")
                        .with_id(&format!("content_{i}"))
                        .with_attr("src", "@drawable/asset"),
                );
            }
            // The async-task target.
            root = root.with_child(LayoutNode::new("TextView").with_id("async_target"));
            // One layout-declared custom view per CustomViewNoSave item.
            for item in &spec.state_items {
                if item.mechanism == StateMechanism::CustomViewNoSave
                    || item.mechanism == StateMechanism::FrameworkView
                {
                    let class = if item.mechanism == StateMechanism::CustomViewNoSave {
                        "com.app.StatefulEditText"
                    } else {
                        "EditText"
                    };
                    root = root.with_child(LayoutNode::new(class).with_id(&item.key));
                }
            }
            // Layout-declared homes for data-loss fields: a fragment
            // container per fragment field, the async write's target
            // view, and the uncommitted input view. Dialog fields have
            // no layout presence (their subtree is created in code when
            // the dialog is shown); member fields have no view at all.
            if let Some(dl) = &spec.dataloss {
                for f in &dl.fields {
                    root = match f.owner {
                        FieldOwner::Fragment => root.with_child(
                            LayoutNode::new("FrameLayout").with_id(&format!("frag_{}", f.key)),
                        ),
                        FieldOwner::AsyncView => {
                            root.with_child(LayoutNode::new("TextView").with_id(&f.key))
                        }
                        FieldOwner::InputView => root.with_child(
                            LayoutNode::new("com.app.InFlightEditText").with_id(&f.key),
                        ),
                        FieldOwner::Member | FieldOwner::Dialog => root,
                    };
                }
            }
            resources.put(
                "activity_main",
                qualifiers,
                ResourceValue::Layout(LayoutTemplate::new("activity_main", root)),
            );
        }
        // One layout resource per fragment field, shared by both
        // orientations.
        if let Some(dl) = &spec.dataloss {
            for f in &dl.fields {
                if f.owner == FieldOwner::Fragment {
                    let name = format!("fragment_{}", f.key);
                    let root = LayoutNode::new("LinearLayout")
                        .with_id(&format!("fragroot_{}", f.key))
                        .with_child(LayoutNode::new("com.app.FieldEditText").with_id(&f.key));
                    resources.put(
                        &name,
                        Qualifiers::any(),
                        ResourceValue::Layout(LayoutTemplate::new(&name, root)),
                    );
                }
            }
        }
        resources.put(
            "asset",
            Qualifiers::any(),
            ResourceValue::drawable("asset.png", per_image),
        );

        GenericApp {
            spec,
            component,
            resources,
            store: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// A probe copy sharing this app's persistent store, for oracles
    /// that install one copy into a device and apply/inspect state
    /// through another: store writes made through either copy are seen
    /// by both, like two handles on the same disk.
    pub fn shared_probe(&self) -> GenericApp {
        GenericApp {
            spec: self.spec.clone(),
            component: self.component.clone(),
            resources: self.resources.clone(),
            store: Arc::clone(&self.store),
        }
    }

    /// The descriptor this app was built from.
    pub fn spec(&self) -> &GenericAppSpec {
        &self.spec
    }

    /// Applies the test scenario's user interaction: fills every state
    /// item with its test value.
    pub fn apply_user_state(&self, activity: &mut Activity) {
        for item in &self.spec.state_items {
            if item.mechanism.is_view_held() {
                if let Some(view) = activity.tree.find_by_id_name(&item.key) {
                    let _ = activity
                        .tree
                        .apply(view, ViewOp::SetText(item.test_value.clone()));
                }
            } else {
                activity
                    .member_state
                    .put_string(&item.key, &item.test_value);
            }
        }
        activity.tree.drain_invalidations();
    }

    /// Checks which state items still hold their test value.
    pub fn surviving_state(&self, activity: &Activity) -> Vec<(&StateItem, bool)> {
        self.spec
            .state_items
            .iter()
            .map(|item| {
                let survived = if item.mechanism.is_view_held() {
                    activity
                        .tree
                        .find_by_id_name(&item.key)
                        .and_then(|v| activity.tree.view(v).ok())
                        .and_then(|v| v.attrs.text.clone())
                        .is_some_and(|t| t == item.test_value)
                } else {
                    activity.member_state.string(&item.key) == Some(item.test_value.as_str())
                };
                (item, survived)
            })
            .collect()
    }

    /// Whether every state item survived (the app's issue is fixed).
    pub fn all_state_survived(&self, activity: &Activity) -> bool {
        self.surviving_state(activity).iter().all(|(_, ok)| *ok)
    }

    /// Shows a dialog-like subtree for a data-loss field: a container
    /// plus the field view, created in code and absent from the layout
    /// resource, neither participating in hierarchy save/restore — the
    /// sub-state-owner shape the paper's data-loss taxonomy flags.
    fn show_dialog(activity: &mut Activity, key: &str) {
        let panel_id = format!("dlg_{key}");
        if activity.tree.find_by_id_name(&panel_id).is_some() {
            return;
        }
        let root = activity
            .tree
            .find_by_id_name("root")
            .unwrap_or_else(|| activity.tree.root());
        let Ok(panel) = activity.tree.add_view(
            root,
            ViewKind::from_class_name("com.app.DialogLayout"),
            Some(&panel_id),
        ) else {
            return;
        };
        if let Ok(v) = activity.tree.view_mut(panel) {
            v.saves_state = false;
        }
        if let Ok(field) = activity.tree.add_view(
            panel,
            ViewKind::from_class_name("com.app.DialogEditText"),
            Some(key),
        ) {
            if let Ok(v) = activity.tree.view_mut(field) {
                v.saves_state = false;
            }
        }
    }

    /// Sets a view's text directly (the restore-path analogue of a user
    /// typing into it; bypasses the invalidation channel on purpose).
    fn set_view_text(activity: &mut Activity, key: &str, value: &str) {
        if let Some(view) = activity.tree.find_by_id_name(key) {
            if let Ok(v) = activity.tree.view_mut(view) {
                v.attrs.text = Some(value.to_owned());
            }
        }
    }

    /// The bundle key a dialog field's value is explicitly saved under.
    fn dialog_key(key: &str) -> String {
        format!("dialog:{key}")
    }

    /// The store key marking a dialog as open.
    fn open_key(key: &str) -> String {
        format!("{key}:open")
    }

    /// Applies the data-loss scenario's user interaction: commits every
    /// field's expected value into its owner (member, dialog, fragment
    /// view, input view), writing store-persisted fields through to the
    /// persistent store. Async-owned fields are *not* set here — their
    /// value arrives via [`GenericAppSpec::dataloss_async_task`].
    pub fn apply_dataloss_state(&self, activity: &mut Activity) {
        let Some(dl) = &self.spec.dataloss else {
            return;
        };
        let mut store = self.store.lock().unwrap();
        for f in &dl.fields {
            match f.owner {
                FieldOwner::Member => {
                    activity.member_state.put_string(&f.key, &f.test_value);
                }
                FieldOwner::Dialog => {
                    Self::show_dialog(activity, &f.key);
                    Self::set_view_text(activity, &f.key, &f.test_value);
                    if f.persistence == FieldPersistence::StorePersisted {
                        store.insert(Self::open_key(&f.key), "open".to_owned());
                    }
                }
                FieldOwner::Fragment | FieldOwner::InputView => {
                    Self::set_view_text(activity, &f.key, &f.test_value);
                }
                FieldOwner::AsyncView => {}
            }
            if f.persistence == FieldPersistence::StorePersisted {
                store.insert(f.key.clone(), f.test_value.clone());
            }
        }
        activity.tree.drain_invalidations();
    }

    /// Checks which data-loss fields still hold their expected value on
    /// the given instance.
    pub fn dataloss_surviving(&self, activity: &Activity) -> Vec<(&crate::DataLossField, bool)> {
        let Some(dl) = &self.spec.dataloss else {
            return Vec::new();
        };
        dl.fields
            .iter()
            .map(|f| {
                let survived = if f.owner == FieldOwner::Member {
                    activity.member_state.string(&f.key) == Some(f.test_value.as_str())
                } else {
                    activity
                        .tree
                        .find_by_id_name(&f.key)
                        .and_then(|v| activity.tree.view(v).ok())
                        .and_then(|v| v.attrs.text.clone())
                        .is_some_and(|t| t == f.test_value)
                };
                (f, survived)
            })
            .collect()
    }
}

impl AppModel for GenericApp {
    fn component_name(&self) -> &str {
        &self.component
    }

    fn resources(&self) -> &ResourceTable {
        &self.resources
    }

    fn main_layout(&self) -> &str {
        "activity_main"
    }

    fn handled_changes(&self) -> ConfigChanges {
        if self.spec.handles_changes {
            ConfigChanges::ALL
        } else {
            ConfigChanges::NONE
        }
    }

    fn implements_save_instance_state(&self) -> bool {
        self.spec.saves_instance_state
    }

    fn on_create(&self, activity: &mut Activity) {
        // Custom views do not participate in hierarchy save/restore.
        for item in &self.spec.state_items {
            match item.mechanism {
                StateMechanism::CustomViewNoSave => {
                    if let Some(view) = activity.tree.find_by_id_name(&item.key) {
                        if let Ok(v) = activity.tree.view_mut(view) {
                            v.saves_state = false;
                        }
                    }
                }
                StateMechanism::DynamicViewNoSave => {
                    // Created by code, absent from the layout resource.
                    let root = activity
                        .tree
                        .find_by_id_name("root")
                        .unwrap_or_else(|| activity.tree.root());
                    if activity.tree.find_by_id_name(&item.key).is_none() {
                        if let Ok(view) = activity.tree.add_view(
                            root,
                            ViewKind::from_class_name("com.app.DynamicEditText"),
                            Some(&item.key),
                        ) {
                            if let Ok(v) = activity.tree.view_mut(view) {
                                v.saves_state = false;
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        // Data-loss mechanics: attach fragments, mark non-saving views,
        // and replay the persistent store into members, fragment views
        // and re-shown dialogs.
        if let Some(dl) = &self.spec.dataloss {
            let store = self.store.lock().unwrap();
            for f in &dl.fields {
                match f.owner {
                    FieldOwner::Fragment => {
                        let fragment = FragmentSpec::new(
                            &format!("tag_{}", f.key),
                            &format!("fragment_{}", f.key),
                            &format!("frag_{}", f.key),
                        );
                        let _ = activity.attach_fragment(&self.resources, &fragment);
                        // Only a bundle-saved fragment field participates
                        // in hierarchy save/restore.
                        if f.persistence != FieldPersistence::BundleSaved {
                            if let Some(view) = activity.tree.find_by_id_name(&f.key) {
                                if let Ok(v) = activity.tree.view_mut(view) {
                                    v.saves_state = false;
                                }
                            }
                        }
                        if f.persistence == FieldPersistence::StorePersisted {
                            if let Some(v) = store.get(&f.key) {
                                Self::set_view_text(activity, &f.key, v);
                            }
                        }
                    }
                    FieldOwner::InputView => {
                        // Uncommitted input: the app never wired this
                        // view into any save site.
                        if let Some(view) = activity.tree.find_by_id_name(&f.key) {
                            if let Ok(v) = activity.tree.view_mut(view) {
                                v.saves_state = false;
                            }
                        }
                    }
                    FieldOwner::Member => {
                        if f.persistence == FieldPersistence::StorePersisted {
                            if let Some(v) = store.get(&f.key) {
                                activity.member_state.put_string(&f.key, v);
                            }
                        }
                    }
                    FieldOwner::Dialog => {
                        // A store-persisted dialog re-shows itself from
                        // the open marker; a bundle-saved one re-shows in
                        // on_restore_instance_state; a transient one is
                        // simply gone.
                        if f.persistence == FieldPersistence::StorePersisted
                            && store.contains_key(&Self::open_key(&f.key))
                        {
                            Self::show_dialog(activity, &f.key);
                            if let Some(v) = store.get(&f.key) {
                                Self::set_view_text(activity, &f.key, v);
                            }
                        }
                    }
                    FieldOwner::AsyncView => {}
                }
            }
        }
    }

    fn on_save_instance_state(&self, activity: &Activity, out: &mut Bundle) {
        // The app saves only the fields it knows to save.
        for item in &self.spec.state_items {
            if item.mechanism == StateMechanism::MemberSaved {
                if let Some(v) = activity.member_state.string(&item.key) {
                    out.put_string(&item.key, v);
                }
            }
        }
        if let Some(dl) = &self.spec.dataloss {
            for f in &dl.fields {
                if f.persistence != FieldPersistence::BundleSaved {
                    continue;
                }
                match f.owner {
                    FieldOwner::Member => {
                        if let Some(v) = activity.member_state.string(&f.key) {
                            out.put_string(&f.key, v);
                        }
                    }
                    FieldOwner::Dialog => {
                        // Explicitly parcel the open dialog's value; the
                        // hierarchy bundle never sees its subtree.
                        let value = activity
                            .tree
                            .find_by_id_name(&f.key)
                            .and_then(|v| activity.tree.view(v).ok())
                            .and_then(|v| v.attrs.text.clone());
                        if let Some(v) = value {
                            out.put_string(&Self::dialog_key(&f.key), &v);
                        }
                    }
                    // Fragment fields ride the hierarchy bundle; async
                    // and input fields have nothing committed to save.
                    _ => {}
                }
            }
        }
    }

    fn on_restore_instance_state(&self, activity: &mut Activity, saved: &Bundle) {
        // Default behaviour first: members come back from the bundle.
        activity.member_state.merge(saved.clone());
        // Then re-show bundle-saved dialogs from their parceled values.
        if let Some(dl) = &self.spec.dataloss {
            for f in &dl.fields {
                if f.owner == FieldOwner::Dialog && f.persistence == FieldPersistence::BundleSaved {
                    if let Some(v) = saved.string(&Self::dialog_key(&f.key)).map(str::to_owned) {
                        Self::show_dialog(activity, &f.key);
                        Self::set_view_text(activity, &f.key, &v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidsim_app::{ActivityInstanceId, ActivityThread};
    use droidsim_atms::ActivityRecordId;
    use droidsim_config::Configuration;

    fn spec_with(mechanism: StateMechanism) -> GenericAppSpec {
        let mut spec = GenericAppSpec::sized("TestApp", "1K+", false);
        spec.state_items
            .push(StateItem::new("the_state", mechanism, "value-1"));
        if mechanism == StateMechanism::MemberSaved {
            spec.saves_instance_state = true;
        }
        spec
    }

    fn launched(app: &GenericApp) -> Activity {
        let mut a = Activity::new(
            ActivityInstanceId::new(0),
            ActivityRecordId::new(0),
            app.component_name(),
            Configuration::phone_portrait(),
        );
        a.perform_create(app, None);
        a
    }

    #[test]
    fn layout_contains_content_and_state_views() {
        let spec = spec_with(StateMechanism::CustomViewNoSave);
        let app = spec.build();
        let a = launched(&app);
        assert!(a.tree.find_by_id_name("content_0").is_some());
        assert!(a.tree.find_by_id_name("async_target").is_some());
        assert!(a.tree.find_by_id_name("the_state").is_some());
    }

    #[test]
    fn custom_view_is_marked_non_saving() {
        let app = spec_with(StateMechanism::CustomViewNoSave).build();
        let a = launched(&app);
        let v = a.tree.find_by_id_name("the_state").unwrap();
        assert!(!a.tree.view(v).unwrap().saves_state);
    }

    #[test]
    fn dynamic_view_is_added_in_on_create() {
        let app = spec_with(StateMechanism::DynamicViewNoSave).build();
        let a = launched(&app);
        let v = a.tree.find_by_id_name("the_state").unwrap();
        assert!(!a.tree.view(v).unwrap().saves_state);
    }

    #[test]
    fn user_state_round_trip_detection() {
        let app = spec_with(StateMechanism::FrameworkView).build();
        let mut a = launched(&app);
        assert!(!app.all_state_survived(&a), "unset at first");
        app.apply_user_state(&mut a);
        assert!(app.all_state_survived(&a));
    }

    #[test]
    fn member_state_applies_to_fields() {
        let app = spec_with(StateMechanism::MemberUnsaved).build();
        let mut a = launched(&app);
        app.apply_user_state(&mut a);
        assert_eq!(a.member_state.string("the_state"), Some("value-1"));
    }

    #[test]
    fn framework_view_state_survives_stock_restart() {
        let app = spec_with(StateMechanism::FrameworkView).build();
        let mut thread = ActivityThread::new();
        let id = thread.perform_launch_activity(
            &app,
            ActivityRecordId::new(0),
            Configuration::phone_portrait(),
            None,
        );
        app.apply_user_state(thread.instance_mut(id).unwrap());
        let saved = thread.instance(id).unwrap().save_instance_state(&app);
        thread.destroy_activity(id).unwrap();
        let new_id = thread.perform_launch_activity(
            &app,
            ActivityRecordId::new(0),
            Configuration::phone_landscape(),
            Some(&saved),
        );
        assert!(app.all_state_survived(thread.instance(new_id).unwrap()));
    }

    #[test]
    fn custom_view_state_is_lost_on_stock_restart() {
        let app = spec_with(StateMechanism::CustomViewNoSave).build();
        let mut thread = ActivityThread::new();
        let id = thread.perform_launch_activity(
            &app,
            ActivityRecordId::new(0),
            Configuration::phone_portrait(),
            None,
        );
        app.apply_user_state(thread.instance_mut(id).unwrap());
        let saved = thread.instance(id).unwrap().save_instance_state(&app);
        thread.destroy_activity(id).unwrap();
        let new_id = thread.perform_launch_activity(
            &app,
            ActivityRecordId::new(0),
            Configuration::phone_landscape(),
            Some(&saved),
        );
        assert!(!app.all_state_survived(thread.instance(new_id).unwrap()));
    }

    #[test]
    fn member_saved_state_survives_stock_restart() {
        let app = spec_with(StateMechanism::MemberSaved).build();
        let mut thread = ActivityThread::new();
        let id = thread.perform_launch_activity(
            &app,
            ActivityRecordId::new(0),
            Configuration::phone_portrait(),
            None,
        );
        app.apply_user_state(thread.instance_mut(id).unwrap());
        let saved = thread.instance(id).unwrap().save_instance_state(&app);
        thread.destroy_activity(id).unwrap();
        let new_id = thread.perform_launch_activity(
            &app,
            ActivityRecordId::new(0),
            Configuration::phone_landscape(),
            Some(&saved),
        );
        assert!(app.all_state_survived(thread.instance(new_id).unwrap()));
    }

    #[test]
    fn sized_parameters_are_deterministic_and_in_range() {
        let a = GenericAppSpec::sized("Twitter", "1B+", true);
        let b = GenericAppSpec::sized("Twitter", "1B+", true);
        assert_eq!(a, b, "same name → same parameters");
        assert!((80..=250).contains(&a.view_count));
        assert!(a.complexity >= 1.5 && a.complexity <= 2.3);
        let small = GenericAppSpec::sized("AlarmKlock", "500K+", false);
        assert!(small.view_count < a.view_count);
    }

    #[test]
    fn activity_heap_matches_spec_target() {
        let spec = spec_with(StateMechanism::FrameworkView);
        let app = spec.build();
        let a = launched(&app);
        let heap = a.heap_bytes() as f64;
        let target = spec.activity_heap_bytes as f64;
        assert!(
            (heap - target).abs() / target < 0.05,
            "heap {heap} vs target {target}"
        );
    }

    #[test]
    fn predictions_match_mechanism_table() {
        use StateMechanism::*;
        for (m, stock, rch, rtd) in [
            (FrameworkView, true, true, true),
            (CustomViewNoSave, false, true, true),
            (DynamicViewNoSave, false, true, false),
            (MemberSaved, true, true, true),
            (MemberUnsaved, false, false, true),
        ] {
            assert_eq!(m.survives_stock_restart(), stock, "{m:?}");
            assert_eq!(m.fixed_by_rchdroid(), rch, "{m:?}");
            assert_eq!(m.fixed_by_runtimedroid(), rtd, "{m:?}");
        }
    }
}
