//! The [`Bundle`] container and its [`Value`] variants.

use crate::parcel::Parcel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A value stored in a [`Bundle`].
///
/// The variants cover what the simulator's views and app models save:
/// primitives, strings, blobs, lists, and nested bundles (used for the view
/// hierarchy state, keyed by view id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A 32-bit integer.
    I32(i32),
    /// A 64-bit integer.
    I64(i64),
    /// A double.
    F64(f64),
    /// A string.
    Str(String),
    /// An opaque byte blob (e.g. a serialized drawable reference).
    Blob(Vec<u8>),
    /// A list of integers (e.g. checked item positions).
    I32List(Vec<i32>),
    /// A list of strings.
    StrList(Vec<String>),
    /// A nested bundle.
    Nested(Bundle),
}

impl Value {
    /// A short name for the variant, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::I32(_) => "i32",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Blob(_) => "blob",
            Value::I32List(_) => "i32 list",
            Value::StrList(_) => "string list",
            Value::Nested(_) => "bundle",
        }
    }
}

macro_rules! value_from {
    ($ty:ty => $variant:ident) => {
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::$variant(v.into())
            }
        }
    };
}

value_from!(bool => Bool);
value_from!(i32 => I32);
value_from!(i64 => I64);
value_from!(f64 => F64);
value_from!(String => Str);
value_from!(&str => Str);
value_from!(Vec<u8> => Blob);
value_from!(Vec<i32> => I32List);
value_from!(Vec<String> => StrList);
value_from!(Bundle => Nested);

/// A typed key-value store with deterministic (sorted) iteration order.
///
/// The entry map is behind an [`Arc`] with copy-on-write semantics:
/// `Bundle::clone()` is O(1) regardless of payload size, and the storage
/// is only copied when a *shared* bundle is mutated. Hierarchy-state
/// save/restore clones nested per-view bundles on every configuration
/// change, so unchanged subtrees ride along for the price of a refcount.
///
/// # Examples
///
/// ```
/// use droidsim_bundle::{Bundle, Value};
///
/// let mut b = Bundle::new();
/// b.put("progress", 42i32);
/// assert_eq!(b.i32("progress"), Some(42));
/// assert_eq!(b.get("missing"), None);
///
/// let snapshot = b.clone(); // O(1): shares storage
/// assert!(snapshot.shares_storage_with(&b));
/// b.put("progress", 43i32); // copy-on-write detaches `b`
/// assert_eq!(snapshot.i32("progress"), Some(42));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Bundle {
    entries: Arc<BTreeMap<String, Value>>,
}

impl PartialEq for Bundle {
    fn eq(&self, other: &Self) -> bool {
        // Shared storage is equal by construction; only detached copies
        // need the deep compare.
        Arc::ptr_eq(&self.entries, &other.entries) || self.entries == other.entries
    }
}

impl Bundle {
    /// Creates an empty bundle.
    pub fn new() -> Self {
        Bundle::default()
    }

    /// Whether `self` and `other` share the same (copy-on-write) storage.
    /// Diagnostic for the O(1)-clone guarantee; equal bundles may or may
    /// not share.
    pub fn shares_storage_with(&self, other: &Bundle) -> bool {
        Arc::ptr_eq(&self.entries, &other.entries)
    }

    /// Inserts any [`Value`]-convertible item, returning the previous value
    /// stored under the key, if any.
    pub fn put(&mut self, key: &str, value: impl Into<Value>) -> Option<Value> {
        Arc::make_mut(&mut self.entries).insert(key.to_owned(), value.into())
    }

    /// Inserts a boolean.
    pub fn put_bool(&mut self, key: &str, v: bool) {
        self.put(key, v);
    }

    /// Inserts a 32-bit integer.
    pub fn put_i32(&mut self, key: &str, v: i32) {
        self.put(key, v);
    }

    /// Inserts a 64-bit integer.
    pub fn put_i64(&mut self, key: &str, v: i64) {
        self.put(key, v);
    }

    /// Inserts a double.
    pub fn put_f64(&mut self, key: &str, v: f64) {
        self.put(key, v);
    }

    /// Inserts a string.
    pub fn put_string(&mut self, key: &str, v: &str) {
        self.put(key, v);
    }

    /// Inserts a nested bundle.
    pub fn put_bundle(&mut self, key: &str, v: Bundle) {
        self.put(key, v);
    }

    /// Looks up a raw value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Looks up a boolean; `None` if absent or a different type.
    pub fn bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Value::Bool(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a 32-bit integer; `None` if absent or a different type.
    pub fn i32(&self, key: &str) -> Option<i32> {
        match self.get(key) {
            Some(Value::I32(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a 64-bit integer; `None` if absent or a different type.
    pub fn i64(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(Value::I64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a double; `None` if absent or a different type.
    pub fn f64(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a string; `None` if absent or a different type.
    pub fn string(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(v)) => Some(v.as_str()),
            _ => None,
        }
    }

    /// Looks up a nested bundle; `None` if absent or a different type.
    pub fn bundle(&self, key: &str) -> Option<&Bundle> {
        match self.get(key) {
            Some(Value::Nested(v)) => Some(v),
            _ => None,
        }
    }

    /// Removes and returns the value under `key`.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        if !self.entries.contains_key(key) {
            // Don't detach shared storage for a no-op removal.
            return None;
        }
        Arc::make_mut(&mut self.entries).remove(key)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of top-level entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bundle has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges `other` into `self`; keys in `other` win.
    pub fn merge(&mut self, other: Bundle) {
        if other.entries.is_empty() {
            return;
        }
        if self.entries.is_empty() {
            // Adopt the other storage wholesale: O(1).
            self.entries = other.entries;
            return;
        }
        let dst = Arc::make_mut(&mut self.entries);
        match Arc::try_unwrap(other.entries) {
            Ok(map) => dst.extend(map),
            Err(shared) => dst.extend(shared.iter().map(|(k, v)| (k.clone(), v.clone()))),
        }
    }

    /// The size in bytes of this bundle flattened into a [`Parcel`] — used
    /// by the memory model to account for the shadow activity's saved state.
    pub fn parcel_size(&self) -> usize {
        let mut parcel = Parcel::new();
        parcel.write_bundle(self);
        parcel.len()
    }
}

impl FromIterator<(String, Value)> for Bundle {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Bundle {
            entries: Arc::new(iter.into_iter().collect()),
        }
    }
}

impl<'a> IntoIterator for &'a Bundle {
    type Item = (&'a str, &'a Value);
    type IntoIter = Box<dyn Iterator<Item = (&'a str, &'a Value)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.entries.iter().map(|(k, v)| (k.as_str(), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_round_trips() {
        let mut b = Bundle::new();
        b.put_bool("b", true);
        b.put_i32("i", -5);
        b.put_i64("l", 1 << 40);
        b.put_f64("f", 2.5);
        b.put_string("s", "hello");
        assert_eq!(b.bool("b"), Some(true));
        assert_eq!(b.i32("i"), Some(-5));
        assert_eq!(b.i64("l"), Some(1 << 40));
        assert_eq!(b.f64("f"), Some(2.5));
        assert_eq!(b.string("s"), Some("hello"));
    }

    #[test]
    fn wrong_type_reads_none() {
        let mut b = Bundle::new();
        b.put_i32("x", 1);
        assert_eq!(b.string("x"), None);
        assert_eq!(b.bool("x"), None);
    }

    #[test]
    fn nesting_round_trips() {
        let mut inner = Bundle::new();
        inner.put_i32("scroll_y", 480);
        let mut outer = Bundle::new();
        outer.put_bundle("view:12", inner.clone());
        assert_eq!(outer.bundle("view:12"), Some(&inner));
    }

    #[test]
    fn put_returns_previous() {
        let mut b = Bundle::new();
        assert_eq!(b.put("k", 1i32), None);
        assert_eq!(b.put("k", 2i32), Some(Value::I32(1)));
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = Bundle::new();
        a.put_i32("k", 1);
        a.put_i32("only_a", 10);
        let mut b = Bundle::new();
        b.put_i32("k", 2);
        a.merge(b);
        assert_eq!(a.i32("k"), Some(2));
        assert_eq!(a.i32("only_a"), Some(10));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut b = Bundle::new();
        b.put_i32("zebra", 1);
        b.put_i32("apple", 2);
        let keys: Vec<&str> = b.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["apple", "zebra"]);
    }

    #[test]
    fn parcel_size_grows_with_content() {
        let mut small = Bundle::new();
        small.put_i32("a", 1);
        let mut big = small.clone();
        big.put_string("text", &"x".repeat(1000));
        assert!(big.parcel_size() > small.parcel_size() + 900);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut original = Bundle::new();
        original.put_string("text", &"y".repeat(4096));
        let snapshot = original.clone();
        assert!(snapshot.shares_storage_with(&original), "clone shares");

        original.put_i32("scroll_y", 9);
        assert!(!snapshot.shares_storage_with(&original), "write detaches");
        assert_eq!(snapshot.len(), 1, "snapshot unaffected by later writes");
        assert_eq!(original.len(), 2);

        // Reads and no-op removals never detach shared storage.
        let reader = original.clone();
        assert_eq!(reader.i32("scroll_y"), Some(9));
        let mut still_shared = original.clone();
        assert_eq!(still_shared.remove("missing"), None);
        assert!(still_shared.shares_storage_with(&original));
    }

    #[test]
    fn merge_into_empty_adopts_storage() {
        let mut src = Bundle::new();
        src.put_i32("k", 7);
        let snapshot = src.clone();
        let mut dst = Bundle::new();
        dst.merge(src);
        assert!(dst.shares_storage_with(&snapshot));
        assert_eq!(dst.i32("k"), Some(7));
    }

    #[test]
    fn empty_bundle_basics() {
        let b = Bundle::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert!(!b.contains_key("k"));
    }
}
