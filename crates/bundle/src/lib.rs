//! `Bundle` and `Parcel`: the typed key-value containers Android uses for
//! instance state.
//!
//! RCHDroid's view-tree migration (§3.3 of the paper) works by explicitly
//! calling `onSaveInstanceState` on the shadow-state activity, which
//! recursively saves every view's state into a [`Bundle`], and then
//! initialising the sunny-state activity from that bundle. This crate
//! provides that container plus a byte-accurate [`Parcel`] flattening used
//! by the memory model to account for saved-state footprints.
//!
//! # Examples
//!
//! ```
//! use droidsim_bundle::Bundle;
//!
//! let mut state = Bundle::new();
//! state.put_string("user_name", "alice");
//! state.put_i64("timer_start_ms", 123_456);
//! assert_eq!(state.string("user_name"), Some("alice"));
//! assert!(state.parcel_size() > 0);
//! ```

pub mod bundle;
pub mod parcel;

pub use bundle::{Bundle, Value};
pub use parcel::{Parcel, ParcelReader};
