//! A binder-style flat byte buffer.
//!
//! `Parcel` gives the simulator a byte-accurate flattening of bundles so the
//! memory model can account for saved-state footprints, and so IPC payload
//! sizes can feed the latency model. The format is a simple length-prefixed
//! tag stream; it can be read back, which the tests use to prove the
//! flattening is lossless.

use crate::bundle::{Bundle, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A flat byte buffer with Android-Parcel-like typed read/write.
///
/// # Examples
///
/// ```
/// use droidsim_bundle::{Bundle, Parcel};
///
/// let mut b = Bundle::new();
/// b.put_i32("answer", 42);
/// let mut p = Parcel::new();
/// p.write_bundle(&b);
/// let restored = p.into_reader().read_bundle().expect("lossless");
/// assert_eq!(restored.i32("answer"), Some(42));
/// ```
#[derive(Debug, Default)]
pub struct Parcel {
    buf: BytesMut,
}

/// A reader over a finished parcel.
#[derive(Debug)]
pub struct ParcelReader {
    buf: Bytes,
}

/// Error produced when reading a malformed parcel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParcelError {
    what: &'static str,
}

impl core::fmt::Display for ParcelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "malformed parcel: {}", self.what)
    }
}

impl std::error::Error for ParcelError {}

const TAG_BOOL: u8 = 1;
const TAG_I32: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BLOB: u8 = 6;
const TAG_I32LIST: u8 = 7;
const TAG_STRLIST: u8 = 8;
const TAG_BUNDLE: u8 = 9;

impl Parcel {
    /// Creates an empty parcel.
    pub fn new() -> Self {
        Parcel::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a string (length-prefixed UTF-8).
    pub fn write_str(&mut self, s: &str) {
        self.buf.put_u32_le(s.len() as u32);
        self.buf.put_slice(s.as_bytes());
    }

    /// Writes a single value with its type tag.
    pub fn write_value(&mut self, value: &Value) {
        match value {
            Value::Bool(v) => {
                self.buf.put_u8(TAG_BOOL);
                self.buf.put_u8(u8::from(*v));
            }
            Value::I32(v) => {
                self.buf.put_u8(TAG_I32);
                self.buf.put_i32_le(*v);
            }
            Value::I64(v) => {
                self.buf.put_u8(TAG_I64);
                self.buf.put_i64_le(*v);
            }
            Value::F64(v) => {
                self.buf.put_u8(TAG_F64);
                self.buf.put_f64_le(*v);
            }
            Value::Str(v) => {
                self.buf.put_u8(TAG_STR);
                self.write_str(v);
            }
            Value::Blob(v) => {
                self.buf.put_u8(TAG_BLOB);
                self.buf.put_u32_le(v.len() as u32);
                self.buf.put_slice(v);
            }
            Value::I32List(v) => {
                self.buf.put_u8(TAG_I32LIST);
                self.buf.put_u32_le(v.len() as u32);
                for item in v {
                    self.buf.put_i32_le(*item);
                }
            }
            Value::StrList(v) => {
                self.buf.put_u8(TAG_STRLIST);
                self.buf.put_u32_le(v.len() as u32);
                for item in v {
                    self.write_str(item);
                }
            }
            Value::Nested(v) => {
                self.buf.put_u8(TAG_BUNDLE);
                self.write_bundle(v);
            }
        }
    }

    /// Writes a whole bundle (entry count, then sorted key/value pairs).
    pub fn write_bundle(&mut self, bundle: &Bundle) {
        self.buf.put_u32_le(bundle.len() as u32);
        for (key, value) in bundle.iter() {
            self.write_str(key);
            self.write_value(value);
        }
    }

    /// Finishes writing and returns a reader over the bytes.
    pub fn into_reader(self) -> ParcelReader {
        ParcelReader {
            buf: self.buf.freeze(),
        }
    }

    /// Finishes writing and returns the raw bytes (binder wire format).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.freeze().to_vec()
    }
}

impl ParcelReader {
    /// Creates a reader over raw bytes previously produced by
    /// [`Parcel::into_bytes`] (or received "over the wire").
    pub fn from_bytes(bytes: Vec<u8>) -> ParcelReader {
        ParcelReader {
            buf: Bytes::from(bytes),
        }
    }
}

impl ParcelReader {
    fn need(&self, n: usize, what: &'static str) -> Result<(), ParcelError> {
        if self.buf.remaining() < n {
            Err(ParcelError { what })
        } else {
            Ok(())
        }
    }

    /// Reads a length-prefixed string.
    pub fn read_str(&mut self) -> Result<String, ParcelError> {
        self.need(4, "string length")?;
        let len = self.buf.get_u32_le() as usize;
        self.need(len, "string bytes")?;
        let bytes = self.buf.copy_to_bytes(len);
        String::from_utf8(bytes.to_vec()).map_err(|_| ParcelError { what: "utf-8" })
    }

    /// Reads one tagged value.
    pub fn read_value(&mut self) -> Result<Value, ParcelError> {
        self.need(1, "value tag")?;
        let tag = self.buf.get_u8();
        Ok(match tag {
            TAG_BOOL => {
                self.need(1, "bool")?;
                Value::Bool(self.buf.get_u8() != 0)
            }
            TAG_I32 => {
                self.need(4, "i32")?;
                Value::I32(self.buf.get_i32_le())
            }
            TAG_I64 => {
                self.need(8, "i64")?;
                Value::I64(self.buf.get_i64_le())
            }
            TAG_F64 => {
                self.need(8, "f64")?;
                Value::F64(self.buf.get_f64_le())
            }
            TAG_STR => Value::Str(self.read_str()?),
            TAG_BLOB => {
                self.need(4, "blob length")?;
                let len = self.buf.get_u32_le() as usize;
                self.need(len, "blob bytes")?;
                Value::Blob(self.buf.copy_to_bytes(len).to_vec())
            }
            TAG_I32LIST => {
                self.need(4, "list length")?;
                let len = self.buf.get_u32_le() as usize;
                self.need(len * 4, "list items")?;
                Value::I32List((0..len).map(|_| self.buf.get_i32_le()).collect())
            }
            TAG_STRLIST => {
                self.need(4, "list length")?;
                let len = self.buf.get_u32_le() as usize;
                let mut items = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    items.push(self.read_str()?);
                }
                Value::StrList(items)
            }
            TAG_BUNDLE => Value::Nested(self.read_bundle()?),
            _ => {
                return Err(ParcelError {
                    what: "unknown tag",
                })
            }
        })
    }

    /// Reads a whole bundle.
    pub fn read_bundle(&mut self) -> Result<Bundle, ParcelError> {
        self.need(4, "bundle length")?;
        let len = self.buf.get_u32_le() as usize;
        let mut entries = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            let key = self.read_str()?;
            let value = self.read_value()?;
            entries.push((key, value));
        }
        Ok(entries.into_iter().collect())
    }

    /// Unread bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> Bundle {
        let mut inner = Bundle::new();
        inner.put_i32("selector_pos", 3);
        inner.put("checked", vec![1, 4, 7]);
        let mut b = Bundle::new();
        b.put_bool("alarm_on", true);
        b.put_i64("epoch", 1_234_567_890);
        b.put_f64("brightness", 0.75);
        b.put_string("text", "draft message");
        b.put("blob", vec![0u8, 255, 128]);
        b.put("labels", vec!["a".to_owned(), "b".to_owned()]);
        b.put_bundle("listview", inner);
        b
    }

    #[test]
    fn round_trip_is_lossless() {
        let original = sample_bundle();
        let mut parcel = Parcel::new();
        parcel.write_bundle(&original);
        let mut reader = parcel.into_reader();
        let restored = reader.read_bundle().expect("parcel should parse");
        assert_eq!(restored, original);
        assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn empty_bundle_round_trips() {
        let mut parcel = Parcel::new();
        parcel.write_bundle(&Bundle::new());
        assert_eq!(parcel.len(), 4);
        let restored = parcel.into_reader().read_bundle().unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn truncated_parcel_errors() {
        let mut parcel = Parcel::new();
        parcel.write_bundle(&sample_bundle());
        let reader = parcel.into_reader();
        let bytes = reader.buf.slice(0..reader.buf.len() / 2);
        let mut truncated = ParcelReader { buf: bytes };
        assert!(truncated.read_bundle().is_err());
    }

    #[test]
    fn unknown_tag_errors() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1); // one entry
        buf.put_u32_le(1); // key length
        buf.put_slice(b"k");
        buf.put_u8(99); // bogus tag
        let mut reader = ParcelReader { buf: buf.freeze() };
        let err = reader.read_bundle().unwrap_err();
        assert_eq!(err.to_string(), "malformed parcel: unknown tag");
    }
}
