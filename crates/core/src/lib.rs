//! # RCHDroid — transparent runtime change handling
//!
//! This crate is the paper's contribution: when a runtime configuration
//! change (rotation, resize, language switch) reaches the foreground
//! activity, **do not restart it**. Instead:
//!
//! 1. put the current instance into the new **Shadow** state — invisible,
//!    alive, still receiving async-task callbacks (§3.2),
//! 2. create (or, from the second change on, **coin-flip** back) a
//!    **Sunny**-state instance built for the new configuration (§3.4),
//! 3. initialise it from the shadow's explicitly saved instance state and
//!    couple the two view trees with an **essence-based mapping** keyed by
//!    view id (§3.3),
//! 4. when an async task later mutates the shadow tree, **lazily migrate**
//!    the intercepted updates to the mapped sunny views using per-type
//!    policies (Table 1) — either eagerly per delivery (the paper's
//!    behaviour, the default) or through the opt-in **batched fast path**
//!    ([`batch::FlushPolicy::Batched`]), which coalesces repeated
//!    invalidations of a view and drains them on count/deadline triggers,
//! 5. reclaim the shadow instance with a **threshold GC** based on its age
//!    and entry frequency (§3.5, Algorithm 1).
//!
//! Apps need *zero* modifications: the machinery lives entirely at the
//! framework level (348 LoC in the paper's Android 10 patch — inventoried
//! by [`patch::patch_inventory`]).
//!
//! # Examples
//!
//! ```
//! use droidsim_app::{ActivityThread, AppModel, SimpleApp};
//! use droidsim_atms::{Atms, Intent};
//! use droidsim_config::Configuration;
//! use droidsim_kernel::SimTime;
//! use rchdroid::{ChangeKind, RchDroid};
//!
//! // Boot: one app in the foreground.
//! let model = SimpleApp::with_views(4);
//! let mut atms = Atms::new(Configuration::phone_portrait());
//! let mut thread = ActivityThread::new();
//! let start = atms.start_activity(&Intent::new(model.component_name()));
//! let instance = thread.perform_launch_activity(
//!     &model, start.record, Configuration::phone_portrait(), None);
//! thread.resume_sequence(instance, false).unwrap();
//!
//! // A rotation arrives: RCHDroid handles it without restarting.
//! let mut rch = RchDroid::new();
//! atms.update_global_config(Configuration::phone_landscape());
//! let outcome = rch
//!     .handle_configuration_change(&mut thread, &mut atms, &model, SimTime::from_millis(17))
//!     .unwrap();
//! assert_eq!(outcome.kind, ChangeKind::Init);
//! // The old instance is alive in the shadow state; a new sunny one shows.
//! assert!(thread.current_shadow().is_some());
//! assert!(thread.current_sunny().is_some());
//! ```

pub mod batch;
pub mod gc;
pub mod handler;
pub mod migration;
pub mod patch;
pub mod supervise;

pub use batch::{DirtyEntry, DirtyQueue, FlushPolicy, ShardedEssenceMap};
pub use gc::{GcDecision, GcPolicy, ShadowAgeTracker};
pub use handler::{AsyncDelivery, ChangeKind, ChangeOutcome, HandlerError, RchDroid, RchOptions};
pub use migration::{migrate_view, MigrationEngine, MigrationReport};
pub use patch::{patch_inventory, PatchEntry};
pub use supervise::{FaultRecord, LadderRung, MigrationError, MigrationWatchdog};
