//! Batched lazy migration: flush policy, coalescing dirty queue, and the
//! sharded essence map.
//!
//! The paper's lazy migration (§3.3) copies essence on *every* drained
//! `invalidate()`. For chatty async callbacks — a progress bar ticking
//! dozens of times between frames — most of those copies are overwritten
//! before anyone sees them. The batched fast path keeps the interception
//! point but defers the copy:
//!
//! 1. every drained invalidation lands in a [`DirtyQueue`] entry keyed by
//!    view id; repeat invalidations of a queued view OR their
//!    [`DirtyMask`]s into the existing entry (last-write-wins per
//!    attribute, since the essence copy always reads the *current* shadow
//!    attributes),
//! 2. the queue drains as one batch when the [`FlushPolicy`] fires —
//!    either the coalesced entry count reached `max_pending` or the
//!    oldest entry has waited `max_delay` of virtual time,
//! 3. at flush, each entry's shadow→sunny peer is resolved through a
//!    [`ShardedEssenceMap`] — the essence mapping held in N independent
//!    shards keyed by view id instead of one monolithic hash table, so a
//!    flush touches only the shards its batch hashes into.
//!
//! [`FlushPolicy::Eager`] (the default) queues and immediately flushes
//! every delivery, which is bit-for-bit the paper's behaviour — batching
//! is strictly opt-in.

use droidsim_kernel::{EventQueue, SimDuration, SimTime};
use droidsim_view::{DirtyMask, ViewId};
use std::collections::HashMap;

/// When queued invalidations are migrated to the sunny tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Flush on every async delivery — the paper's per-`invalidate()`
    /// behaviour. The default.
    #[default]
    Eager,
    /// Coalesce deliveries and flush when either trigger fires.
    Batched {
        /// Flush once this many *coalesced* entries are pending.
        max_pending: usize,
        /// Flush once the oldest pending entry has waited this long in
        /// virtual time. [`SimDuration::ZERO`] means "every delivery",
        /// degenerating to eager behaviour with queue bookkeeping.
        max_delay: SimDuration,
    },
}

impl FlushPolicy {
    /// A batched policy. `max_pending` of 0 is clamped to 1 (a queue that
    /// never fires on count would only flush on deadline).
    pub fn batched(max_pending: usize, max_delay: SimDuration) -> FlushPolicy {
        FlushPolicy::Batched {
            max_pending: max_pending.max(1),
            max_delay,
        }
    }

    /// Whether this is the paper's eager policy.
    pub fn is_eager(&self) -> bool {
        matches!(self, FlushPolicy::Eager)
    }
}

/// One coalesced pending migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtyEntry {
    /// The invalidated shadow view.
    pub view: ViewId,
    /// Union of the attributes dirtied since the entry was created.
    pub mask: DirtyMask,
    /// Raw invalidations absorbed into this entry.
    pub raw: usize,
    /// When the entry was created (starts the `max_delay` clock).
    pub first_enqueued_at: SimTime,
}

/// An order-preserving, coalescing queue of pending migrations.
///
/// First-invalidation order is preserved; re-invalidating a queued view
/// updates its entry in place. Deadlines ride on the kernel's
/// deterministic [`EventQueue`] (one event per *entry*, scheduled at its
/// creation time), so "oldest pending entry" is a `peek`, not a scan.
#[derive(Debug, Clone, Default)]
pub struct DirtyQueue {
    order: Vec<ViewId>,
    entries: HashMap<ViewId, DirtyEntry>,
    deadlines: EventQueue<ViewId>,
}

impl DirtyQueue {
    /// An empty queue.
    pub fn new() -> DirtyQueue {
        DirtyQueue::default()
    }

    /// Records one drained invalidation. Returns `true` if it coalesced
    /// into an existing entry (no new migration work was added).
    pub fn enqueue(&mut self, view: ViewId, mask: DirtyMask, raw: usize, now: SimTime) -> bool {
        if let Some(entry) = self.entries.get_mut(&view) {
            entry.mask |= mask;
            entry.raw += raw;
            true
        } else {
            self.order.push(view);
            self.entries.insert(
                view,
                DirtyEntry {
                    view,
                    mask,
                    raw,
                    first_enqueued_at: now,
                },
            );
            self.deadlines.schedule(now, view);
            false
        }
    }

    /// Coalesced entries pending.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Raw invalidations absorbed since the last drain.
    pub fn raw_pending(&self) -> usize {
        self.entries.values().map(|e| e.raw).sum()
    }

    /// Creation time of the oldest pending entry.
    pub fn oldest_enqueued_at(&self) -> Option<SimTime> {
        self.deadlines.peek_time()
    }

    /// Whether the oldest pending entry has waited at least `max_delay`.
    pub fn deadline_due(&self, now: SimTime, max_delay: SimDuration) -> bool {
        self.oldest_enqueued_at()
            .is_some_and(|first| now.saturating_since(first) >= max_delay)
    }

    /// Drains every pending entry in first-invalidation order.
    pub fn drain(&mut self) -> Vec<DirtyEntry> {
        droidsim_kernel::alloc_track::note(1);
        let mut drained = Vec::with_capacity(self.order.len());
        self.drain_into(&mut drained);
        drained
    }

    /// Drains every pending entry in first-invalidation order into `out`,
    /// reusing its capacity. The engine's flush path threads one scratch
    /// buffer through every flush instead of allocating a fresh `Vec`.
    pub fn drain_into(&mut self, out: &mut Vec<DirtyEntry>) {
        // Order and entries stay in sync by construction; a desynced view
        // is silently skipped rather than panicking the handling path.
        out.extend(
            self.order
                .drain(..)
                .filter_map(|view| self.entries.remove(&view)),
        );
        self.deadlines.clear();
    }

    /// Drops all pending entries (used when a coupling is torn down).
    pub fn clear(&mut self) {
        self.order.clear();
        self.entries.clear();
        self.deadlines.clear();
    }
}

/// The essence-based shadow↔sunny mapping, split into `N` shards.
///
/// The paper stores the coupling in one hash table; here each direction
/// of the mapping lives in [`ShardedEssenceMap::DEFAULT_SHARDS`]
/// independent shards selected by `view_id % N`. A flush therefore only
/// touches the shards its batch hashes into — the structural prerequisite
/// for per-shard locking if migration ever moves off the UI thread — and
/// shard occupancy is directly inspectable for balance metrics.
#[derive(Debug, Clone)]
pub struct ShardedEssenceMap {
    shards: Vec<HashMap<ViewId, ViewId>>,
}

impl Default for ShardedEssenceMap {
    fn default() -> Self {
        ShardedEssenceMap::new(ShardedEssenceMap::DEFAULT_SHARDS)
    }
}

impl ShardedEssenceMap {
    /// Default shard count: enough to spread any realistic activity tree
    /// (the paper's benchmark app tops out at dozens of views).
    pub const DEFAULT_SHARDS: usize = 8;

    /// Creates an empty map with `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> ShardedEssenceMap {
        ShardedEssenceMap {
            shards: vec![HashMap::new(); shards.max(1)],
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, view: ViewId) -> usize {
        (view.raw() % self.shards.len() as u64) as usize
    }

    /// Records `from → to`.
    pub fn insert(&mut self, from: ViewId, to: ViewId) {
        let shard = self.shard_of(from);
        self.shards[shard].insert(from, to);
    }

    /// Resolves a peer.
    pub fn get(&self, from: ViewId) -> Option<ViewId> {
        self.shards[self.shard_of(from)].get(&from).copied()
    }

    /// Total mapped views across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Whether no view is mapped.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashMap::is_empty)
    }

    /// Entries in shard `i` (balance inspection).
    pub fn shard_len(&self, i: usize) -> usize {
        self.shards[i].len()
    }

    /// Removes every mapping, keeping the shard count.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(raw: u64) -> ViewId {
        ViewId::new(raw)
    }

    #[test]
    fn default_policy_is_eager() {
        assert!(FlushPolicy::default().is_eager());
        assert!(!FlushPolicy::batched(4, SimDuration::ZERO).is_eager());
    }

    #[test]
    fn batched_clamps_zero_max_pending() {
        let FlushPolicy::Batched { max_pending, .. } =
            FlushPolicy::batched(0, SimDuration::from_millis(1))
        else {
            panic!("batched() builds Batched")
        };
        assert_eq!(max_pending, 1);
    }

    #[test]
    fn queue_coalesces_repeat_invalidations() {
        let mut q = DirtyQueue::new();
        let t0 = SimTime::from_millis(10);
        assert!(!q.enqueue(v(1), DirtyMask::TEXT, 1, t0));
        assert!(!q.enqueue(v(2), DirtyMask::PROGRESS, 1, t0));
        // Re-invalidation coalesces: mask ORs, raw accumulates, order and
        // first_enqueued_at stay put.
        assert!(q.enqueue(v(1), DirtyMask::SCROLL, 2, SimTime::from_millis(30)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.raw_pending(), 4);
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].view, v(1));
        assert_eq!(drained[0].mask, DirtyMask::TEXT | DirtyMask::SCROLL);
        assert_eq!(drained[0].raw, 3);
        assert_eq!(drained[0].first_enqueued_at, t0);
        assert_eq!(drained[1].view, v(2));
        assert!(q.is_empty());
    }

    #[test]
    fn deadline_tracks_the_oldest_entry() {
        let mut q = DirtyQueue::new();
        let delay = SimDuration::from_millis(16);
        assert!(!q.deadline_due(SimTime::from_secs(99), delay), "empty");
        q.enqueue(v(1), DirtyMask::TEXT, 1, SimTime::from_millis(10));
        q.enqueue(v(2), DirtyMask::TEXT, 1, SimTime::from_millis(20));
        assert_eq!(q.oldest_enqueued_at(), Some(SimTime::from_millis(10)));
        assert!(!q.deadline_due(SimTime::from_millis(25), delay));
        assert!(q.deadline_due(SimTime::from_millis(26), delay));
        q.drain();
        assert_eq!(q.oldest_enqueued_at(), None);
    }

    #[test]
    fn sharded_map_resolves_and_spreads() {
        let mut m = ShardedEssenceMap::new(4);
        for i in 0..16u64 {
            m.insert(v(i), v(100 + i));
        }
        assert_eq!(m.len(), 16);
        assert_eq!(m.get(v(7)), Some(v(107)));
        assert_eq!(m.get(v(40)), None);
        // Sequential ids spread evenly over `id % 4`.
        for shard in 0..4 {
            assert_eq!(m.shard_len(shard), 4);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.shard_count(), 4);
    }

    #[test]
    fn sharded_map_clamps_zero_shards() {
        let m = ShardedEssenceMap::new(0);
        assert_eq!(m.shard_count(), 1);
    }

    #[test]
    fn insert_overwrites_stale_peer() {
        let mut m = ShardedEssenceMap::default();
        m.insert(v(3), v(10));
        m.insert(v(3), v(11));
        assert_eq!(m.get(v(3)), Some(v(11)));
        assert_eq!(m.len(), 1);
    }
}
