//! Threshold-based shadow GC (§3.5, Algorithm 1).
//!
//! A shadow-state activity is reclaimed when **both** hold:
//!
//! * `shadow_time > THRESH_T` — it entered the shadow state long ago (a
//!   configuration that has not flipped back for a while probably won't),
//! * `shadow_frequency < THRESH_F` — it entered the shadow state fewer
//!   than `THRESH_F` times in the last `k`-second window (a frequently
//!   flipping activity will likely be reused soon).
//!
//! The paper picks `THRESH_T = 50 s` and `THRESH_F = 4/min` after the
//! sweep of Fig. 11.

use droidsim_kernel::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The GC's verdict for the current shadow instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcDecision {
    /// No shadow instance exists.
    NothingToCollect,
    /// Keep: it entered the shadow state too recently.
    TooYoung {
        /// Time since shadow entry.
        age: SimDuration,
    },
    /// Keep: it flips too frequently to be worth collecting.
    TooFrequent {
        /// Shadow entries in the sliding window.
        entries_in_window: u32,
    },
    /// Collect it.
    Collect,
}

impl GcDecision {
    /// Whether the verdict is to reclaim the shadow.
    pub fn should_collect(self) -> bool {
        self == GcDecision::Collect
    }
}

/// The tunable policy (Algorithm 1's inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcPolicy {
    /// `THRESH_T`: minimum shadow age before collection.
    pub thresh_t: SimDuration,
    /// `THRESH_F`: shadow-entry count at or above which the instance is
    /// kept.
    pub thresh_f: u32,
    /// `k`: the sliding window over which entries are counted.
    pub window: SimDuration,
}

impl GcPolicy {
    /// The paper's chosen operating point: `THRESH_T = 50 s`,
    /// `THRESH_F = 4` per `k = 60 s` window.
    pub fn paper_default() -> Self {
        GcPolicy {
            thresh_t: SimDuration::from_secs(50),
            thresh_f: 4,
            window: SimDuration::from_secs(60),
        }
    }

    /// A policy with a different `THRESH_T` (the Fig. 11 sweep).
    pub fn with_thresh_t(mut self, thresh_t: SimDuration) -> Self {
        self.thresh_t = thresh_t;
        self
    }
}

impl Default for GcPolicy {
    fn default() -> Self {
        GcPolicy::paper_default()
    }
}

/// Tracks shadow-entry events and evaluates Algorithm 1.
///
/// # Examples
///
/// ```
/// use droidsim_kernel::SimTime;
/// use rchdroid::{GcPolicy, ShadowAgeTracker};
///
/// let mut tracker = ShadowAgeTracker::new(GcPolicy::paper_default());
/// tracker.note_shadow_entry(SimTime::from_secs(0));
/// // 10 s later: far younger than THRESH_T = 50 s → keep.
/// let decision = tracker.evaluate(SimTime::from_secs(10), Some(SimTime::from_secs(0)));
/// assert!(!decision.should_collect());
/// ```
#[derive(Debug, Clone)]
pub struct ShadowAgeTracker {
    policy: GcPolicy,
    entries: VecDeque<SimTime>,
}

impl ShadowAgeTracker {
    /// Creates a tracker with the given policy.
    pub fn new(policy: GcPolicy) -> Self {
        ShadowAgeTracker {
            policy,
            entries: VecDeque::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> GcPolicy {
        self.policy
    }

    /// Records that an activity entered the shadow state at `now`.
    pub fn note_shadow_entry(&mut self, now: SimTime) {
        self.entries.push_back(now);
    }

    /// Shadow entries within the sliding window ending at `now`
    /// (`shadow_frequency` in the paper).
    pub fn frequency(&mut self, now: SimTime) -> u32 {
        let horizon = now.saturating_since(SimTime::ZERO);
        let cutoff = if horizon.as_micros() > self.policy.window.as_micros() {
            SimTime::from_micros(now.as_micros() - self.policy.window.as_micros())
        } else {
            SimTime::ZERO
        };
        while self.entries.front().is_some_and(|&t| t < cutoff) {
            self.entries.pop_front();
        }
        self.entries.len() as u32
    }

    /// Algorithm 1: evaluates the current shadow instance, whose last
    /// shadow entry happened at `shadow_since` (`None` = no shadow).
    pub fn evaluate(&mut self, now: SimTime, shadow_since: Option<SimTime>) -> GcDecision {
        let Some(since) = shadow_since else {
            return GcDecision::NothingToCollect;
        };
        let age = now.saturating_since(since);
        if age <= self.policy.thresh_t {
            return GcDecision::TooYoung { age };
        }
        let entries_in_window = self.frequency(now);
        if entries_in_window >= self.policy.thresh_f {
            return GcDecision::TooFrequent { entries_in_window };
        }
        GcDecision::Collect
    }

    /// Forgets all recorded entries (the coupled foreground activity was
    /// switched or finished; the shadow is released immediately).
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn no_shadow_nothing_to_collect() {
        let mut t = ShadowAgeTracker::new(GcPolicy::paper_default());
        assert_eq!(t.evaluate(secs(100), None), GcDecision::NothingToCollect);
    }

    #[test]
    fn young_shadow_is_kept() {
        let mut t = ShadowAgeTracker::new(GcPolicy::paper_default());
        t.note_shadow_entry(secs(0));
        let d = t.evaluate(secs(30), Some(secs(0)));
        assert!(matches!(d, GcDecision::TooYoung { .. }));
    }

    #[test]
    fn old_infrequent_shadow_is_collected() {
        let mut t = ShadowAgeTracker::new(GcPolicy::paper_default());
        t.note_shadow_entry(secs(0));
        // 70 s later: age 70 > 50, and the single entry left the 60 s
        // window → frequency 0 < 4.
        assert_eq!(t.evaluate(secs(70), Some(secs(0))), GcDecision::Collect);
    }

    #[test]
    fn frequent_flipper_is_kept_even_when_old() {
        let policy = GcPolicy {
            thresh_t: SimDuration::from_secs(5),
            ..GcPolicy::paper_default()
        };
        let mut t = ShadowAgeTracker::new(policy);
        // Six entries in the last minute (the Fig. 11 workload rate).
        for i in 0..6 {
            t.note_shadow_entry(secs(40 + i * 10));
        }
        let d = t.evaluate(secs(96), Some(secs(90)));
        // age = 6s > 5s, but frequency ≥ 4 → kept.
        assert!(
            matches!(d, GcDecision::TooFrequent { entries_in_window } if entries_in_window >= 4)
        );
    }

    #[test]
    fn window_expires_old_entries() {
        let mut t = ShadowAgeTracker::new(GcPolicy::paper_default());
        for i in 0..10 {
            t.note_shadow_entry(secs(i));
        }
        assert_eq!(t.frequency(secs(9)), 10);
        assert_eq!(t.frequency(secs(100)), 0, "all outside the 60 s window");
    }

    #[test]
    fn boundary_age_equal_to_thresh_is_kept() {
        let mut t = ShadowAgeTracker::new(GcPolicy::paper_default());
        t.note_shadow_entry(secs(0));
        let d = t.evaluate(secs(50), Some(secs(0)));
        assert!(
            matches!(d, GcDecision::TooYoung { .. }),
            "strictly-greater comparison"
        );
    }

    #[test]
    fn reset_clears_history() {
        let mut t = ShadowAgeTracker::new(GcPolicy::paper_default());
        t.note_shadow_entry(secs(1));
        t.reset();
        assert_eq!(t.frequency(secs(2)), 0);
    }

    #[test]
    fn sweeping_thresh_t_changes_the_verdict() {
        // The Fig. 11 mechanism: a larger THRESH_T keeps shadows longer.
        // Shadow entered at t=0, GC check at t=101 s (window empty).
        for (thresh, collected) in [(20u64, true), (80, true), (200, false)] {
            let policy = GcPolicy::paper_default().with_thresh_t(SimDuration::from_secs(thresh));
            let mut t = ShadowAgeTracker::new(policy);
            t.note_shadow_entry(secs(0));
            let d = t.evaluate(secs(101), Some(SimTime::ZERO));
            assert_eq!(d.should_collect(), collected, "THRESH_T={thresh}");
        }
    }
}
