//! The paper's patch inventory (Table 2) and its mapping onto this
//! reproduction's hook points.
//!
//! The prototype modifies eight Android 10 classes with 348 LoC in total.
//! Each entry below names the class, the modification, the paper's LoC
//! count, and where the equivalent mechanism lives in this codebase — so
//! a reader can audit that every patched behaviour is reproduced.

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchEntry {
    /// Patched Android class.
    pub class: &'static str,
    /// What the paper's patch does there.
    pub modification: &'static str,
    /// Lines of code in the paper's patch.
    pub loc: u32,
    /// Where the equivalent mechanism lives in this reproduction.
    pub reproduced_in: &'static str,
}

/// The full Table 2 inventory.
pub fn patch_inventory() -> Vec<PatchEntry> {
    vec![
        PatchEntry {
            class: "Activity",
            modification: "Add the Shadow/Sunny state and related functions \
                           (getAllSunnyViews, setSunnyViews)",
            loc: 81,
            reproduced_in: "droidsim_app::ActivityState::{Shadow,Sunny}, \
                            droidsim_view::ViewTree::{id_name_index,set_sunny_peers}",
        },
        PatchEntry {
            class: "View",
            modification: "Add the Shadow/Sunny state and the sunny view pointer; \
                           modify the invalidate function to catch updates",
            loc: 79,
            reproduced_in: "droidsim_view::ViewNode::sunny_peer, \
                            droidsim_view::ViewTree::{invalidate,drain_invalidations}",
        },
        PatchEntry {
            class: "ViewGroup",
            modification: "Add dispatchShadowStateChanged / dispatchSunnyStateChanged",
            loc: 12,
            reproduced_in: "droidsim_view::ViewTree::{dispatch_shadow_state_changed,\
                            dispatch_sunny_state_changed}",
        },
        PatchEntry {
            class: "Intent",
            modification: "Add the sunny flag",
            loc: 4,
            reproduced_in: "droidsim_atms::IntentFlags::SUNNY",
        },
        PatchEntry {
            class: "ActivityThread",
            modification: "Add shadow/sunny instance pointers and the GC routine; modify \
                           performActivityConfigurationChanged, performLaunchActivity, \
                           handleResumeActivity",
            loc: 91,
            reproduced_in: "droidsim_app::ActivityThread::{current_shadow,current_sunny,\
                            enter_shadow,perform_launch_activity,resume_sequence}, \
                            rchdroid::RchDroid::{handle_configuration_change,run_gc}",
        },
        PatchEntry {
            class: "ActivityRecord",
            modification: "Add the Shadow state and interfaces; modify \
                           ensureActivityConfiguration to avoid relaunching",
            loc: 11,
            reproduced_in: "droidsim_atms::ActivityRecord::{is_shadow,set_shadow}, \
                            droidsim_atms::Atms::ensure_activity_configuration",
        },
        PatchEntry {
            class: "ActivityStack",
            modification: "Add findShadowActivityLocked",
            loc: 29,
            reproduced_in: "droidsim_atms::TaskRecord::find_shadow_activity",
        },
        PatchEntry {
            class: "ActivityStarter",
            modification: "Modify startActivityUnchecked / setTaskFromIntentActivity for \
                           the coin-flipping scheme",
            loc: 41,
            reproduced_in: "droidsim_atms::Atms::start_activity_with_mask (SUNNY path)",
        },
    ]
}

/// Total LoC of the paper's patch.
pub fn total_patch_loc() -> u32 {
    patch_inventory().iter().map(|e| e.loc).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_348_loc() {
        assert_eq!(total_patch_loc(), 348);
    }

    #[test]
    fn eight_classes_are_patched() {
        let inv = patch_inventory();
        assert_eq!(inv.len(), 8);
        let classes: Vec<&str> = inv.iter().map(|e| e.class).collect();
        assert_eq!(
            classes,
            vec![
                "Activity",
                "View",
                "ViewGroup",
                "Intent",
                "ActivityThread",
                "ActivityRecord",
                "ActivityStack",
                "ActivityStarter"
            ]
        );
    }

    #[test]
    fn every_entry_names_a_reproduction_site() {
        for e in patch_inventory() {
            assert!(!e.reproduced_in.is_empty(), "{} lacks a mapping", e.class);
        }
    }
}
