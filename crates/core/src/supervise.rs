//! Supervision for the migration subsystem: typed errors, the
//! degradation ladder, and the flush watchdog.
//!
//! RCHDroid's contract is *never worse than stock Android*. Stock
//! Android's answer to any lifecycle fault is a process death; RCHDroid
//! therefore gets a ladder of strictly-better answers, tried in order:
//!
//! 1. **Contained per-view** — a fault touching one view (essence-map
//!    miss, attribute-copy error, a panic inside the Table-1 copy) skips
//!    that view and marks it stale; the rest of the batch migrates.
//! 2. **Fallback restart** — a fault poisoning the whole change (bundle
//!    corruption, allocation failure, flush-deadline overrun) abandons
//!    shadow/sunny handling and replays the stock
//!    `onSaveInstanceState` → destroy → recreate path, rolling back any
//!    coin-flip record swap in atms first.
//! 3. **Process crash** — app-logic bugs that would crash stock Android
//!    too (null-pointer on a released tree, window leak) mark the
//!    process crashed; they are *reported*, never unwound through the
//!    simulator.
//!
//! Every rung is recorded in a [`FaultLog`] so tests and benches can
//! assert which rung absorbed which fault.

use core::fmt;
use droidsim_faults::FaultSite;
use droidsim_kernel::SimDuration;
use droidsim_metrics::FaultMetrics;
use droidsim_view::ViewError;

/// A fault that aborted a migration flush (rungs 2–3 of the ladder; rung
/// 1 never surfaces as an error — contained views are counted in the
/// [`MigrationReport`](crate::MigrationReport) instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationError {
    /// The sunny tree rejected an essence copy with an app-crashing
    /// error (released tree, leaked window) — the one class the ladder
    /// cannot absorb below rung 3.
    Tree(ViewError),
    /// An armed [`FaultPlan`](droidsim_faults::FaultPlan) injected an
    /// uncontainable fault at `site`.
    Injected {
        /// Where the fault struck.
        site: FaultSite,
    },
    /// The watchdog aborted the flush: migrating the batch would have
    /// cost `needed` of virtual time against a budget of `budget`.
    DeadlineExceeded {
        /// The per-flush budget in force.
        budget: SimDuration,
        /// The batch's estimated cost.
        needed: SimDuration,
    },
    /// A panic escaped app/view code during migration and was caught at
    /// the supervision boundary.
    Panicked {
        /// Human-readable panic context.
        context: String,
    },
}

impl MigrationError {
    /// The fault site to attribute this error to, if it has one.
    pub fn site(&self) -> Option<FaultSite> {
        match self {
            MigrationError::Injected { site } => Some(*site),
            MigrationError::DeadlineExceeded { .. } => Some(FaultSite::FlushDeadlineOverrun),
            MigrationError::Tree(_) | MigrationError::Panicked { .. } => None,
        }
    }

    /// Whether this error is an app-logic bug that crashes stock Android
    /// too (rung 3) rather than a handling fault the ladder can absorb.
    pub fn is_app_crash(&self) -> bool {
        matches!(self, MigrationError::Tree(e) if e.is_crash())
    }
}

impl fmt::Display for MigrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationError::Tree(e) => write!(f, "sunny tree rejected migration: {e}"),
            MigrationError::Injected { site } => write!(f, "injected fault at {site}"),
            MigrationError::DeadlineExceeded { budget, needed } => write!(
                f,
                "flush watchdog: batch needs {:.3} ms against a {:.3} ms budget",
                needed.as_millis_f64(),
                budget.as_millis_f64()
            ),
            MigrationError::Panicked { context } => {
                write!(f, "panic during migration: {context}")
            }
        }
    }
}

impl std::error::Error for MigrationError {}

impl From<ViewError> for MigrationError {
    fn from(e: ViewError) -> Self {
        MigrationError::Tree(e)
    }
}

/// Which rung of the degradation ladder absorbed a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LadderRung {
    /// Rung 1: the faulty view was skipped and marked stale; everything
    /// else migrated.
    ContainedPerView,
    /// Rung 2: the change fell back to the stock restart path.
    FallbackRestart,
    /// Rung 3: the process was marked crashed (stock Android's only
    /// rung).
    ProcessCrash,
}

impl LadderRung {
    /// A stable, log-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            LadderRung::ContainedPerView => "contained-per-view",
            LadderRung::FallbackRestart => "fallback-restart",
            LadderRung::ProcessCrash => "process-crash",
        }
    }
}

impl fmt::Display for LadderRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Virtual-time deadline budget for one migration flush.
///
/// The watchdog prices a batch at `per_entry_cost × entries` and aborts
/// the flush (→ rung 2 fallback) when the price exceeds `budget`. The
/// defaults — 250 ms budget, 100 µs per entry — never trip for realistic
/// batches (thousands of views); they exist to bound the worst case, and
/// the fault plan's `flush-deadline-overrun` site exercises the abort
/// path deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationWatchdog {
    /// Maximum virtual time one flush may cost.
    pub budget: SimDuration,
    /// Modelled cost of migrating one queued entry.
    pub per_entry_cost: SimDuration,
}

impl Default for MigrationWatchdog {
    fn default() -> Self {
        MigrationWatchdog {
            budget: SimDuration::from_millis(250),
            per_entry_cost: SimDuration::from_micros(100),
        }
    }
}

impl MigrationWatchdog {
    /// A watchdog with an explicit budget and per-entry cost.
    pub fn new(budget: SimDuration, per_entry_cost: SimDuration) -> MigrationWatchdog {
        MigrationWatchdog {
            budget,
            per_entry_cost,
        }
    }

    /// Prices a batch of `entries`; returns the estimated cost when it
    /// exceeds the budget, `None` when the flush may proceed.
    pub fn exceeded(&self, entries: usize) -> Option<SimDuration> {
        let needed = self.per_entry_cost.saturating_mul(entries as u64);
        (needed > self.budget).then_some(needed)
    }
}

/// One absorbed fault: where it struck and which rung handled it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The fault site's stable name (or a synthetic name like
    /// `"app-logic"` for organic faults).
    pub site: &'static str,
    /// The rung that absorbed it.
    pub rung: LadderRung,
}

/// Per-handler fault accounting: lifetime [`FaultMetrics`] plus a
/// drainable record of recent faults (the device layer drains these into
/// logcat events).
#[derive(Debug, Clone, Default)]
pub(crate) struct FaultLog {
    metrics: FaultMetrics,
    recent: Vec<FaultRecord>,
}

impl FaultLog {
    pub(crate) fn contained(&mut self, site: &'static str) {
        self.metrics.record_contained(site);
        self.recent.push(FaultRecord {
            site,
            rung: LadderRung::ContainedPerView,
        });
    }

    pub(crate) fn fallback(&mut self, site: &'static str, recovery_ms: f64) {
        self.metrics.record_fallback(site, recovery_ms);
        self.recent.push(FaultRecord {
            site,
            rung: LadderRung::FallbackRestart,
        });
    }

    pub(crate) fn crashed(&mut self, site: &'static str) {
        self.metrics.record_crash(site);
        self.recent.push(FaultRecord {
            site,
            rung: LadderRung::ProcessCrash,
        });
    }

    pub(crate) fn metrics(&self) -> &FaultMetrics {
        &self.metrics
    }

    pub(crate) fn drain(&mut self) -> Vec<FaultRecord> {
        std::mem::take(&mut self.recent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_prices_batches_against_the_budget() {
        let dog = MigrationWatchdog::default();
        assert_eq!(dog.exceeded(0), None);
        assert_eq!(dog.exceeded(2_500), None, "exactly at budget is fine");
        let needed = dog.exceeded(2_501).expect("one entry over");
        assert!(needed > dog.budget);

        let tight = MigrationWatchdog {
            budget: SimDuration::from_micros(150),
            per_entry_cost: SimDuration::from_micros(100),
        };
        assert_eq!(tight.exceeded(1), None);
        assert_eq!(tight.exceeded(2), Some(SimDuration::from_micros(200)));
    }

    #[test]
    fn error_sites_attribute_to_the_right_fault() {
        let injected = MigrationError::Injected {
            site: FaultSite::AttributeCopy,
        };
        assert_eq!(injected.site(), Some(FaultSite::AttributeCopy));
        let overrun = MigrationError::DeadlineExceeded {
            budget: SimDuration::from_millis(1),
            needed: SimDuration::from_millis(2),
        };
        assert_eq!(overrun.site(), Some(FaultSite::FlushDeadlineOverrun));
        let panic = MigrationError::Panicked {
            context: "boom".into(),
        };
        assert_eq!(panic.site(), None);
        assert!(!panic.is_app_crash());
    }

    #[test]
    fn tree_crashes_are_rung_three() {
        use droidsim_view::ViewId;
        let crash = MigrationError::Tree(ViewError::NullPointer {
            view: ViewId::new(1),
        });
        assert!(crash.is_app_crash());
        let benign = MigrationError::Tree(ViewError::UnknownView(ViewId::new(1)));
        assert!(!benign.is_app_crash());
    }

    #[test]
    fn fault_log_keeps_metrics_and_records_in_sync() {
        let mut log = FaultLog::default();
        log.contained("attribute-copy");
        log.fallback("bundle-corruption", 0.5);
        log.crashed("app-logic");
        assert_eq!(log.metrics().total_faults(), 3);
        let records = log.drain();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].rung, LadderRung::ContainedPerView);
        assert_eq!(records[1].rung, LadderRung::FallbackRestart);
        assert_eq!(records[2].rung, LadderRung::ProcessCrash);
        assert!(log.drain().is_empty(), "drain empties the log");
        assert_eq!(log.metrics().total_faults(), 3, "metrics are lifetime");
    }

    #[test]
    fn rung_names_are_stable() {
        assert_eq!(LadderRung::ContainedPerView.name(), "contained-per-view");
        assert_eq!(LadderRung::FallbackRestart.name(), "fallback-restart");
        assert_eq!(LadderRung::ProcessCrash.name(), "process-crash");
        assert_eq!(LadderRung::FallbackRestart.to_string(), "fallback-restart");
    }
}
