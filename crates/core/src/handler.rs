//! The RCHDroid change handler: orchestrates the shadow/sunny protocol
//! across the activity thread and the ATMS (Fig. 3).

use crate::batch::FlushPolicy;
use crate::gc::{GcDecision, GcPolicy, ShadowAgeTracker};
use crate::migration::{MigrationEngine, MigrationReport};
use crate::supervise::{FaultLog, FaultRecord, MigrationError, MigrationWatchdog};
use core::fmt;
use droidsim_app::ActivityInstanceId;
use droidsim_app::{ActivityState, ActivityThread, AppModel, AsyncWork, ThreadError};
use droidsim_atms::{Atms, AtmsError, ConfigDecision, Intent, RecordState, StartDisposition};
use droidsim_faults::{FaultPlan, FaultSite};
use droidsim_kernel::SimTime;
use droidsim_metrics::FaultMetrics;
use droidsim_view::ViewError;
use std::panic::{self, AssertUnwindSafe};

/// Which path a runtime change took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// The global configuration did not actually change.
    NoChange,
    /// The app declared `android:configChanges` and handled it in place.
    HandledByApp,
    /// First change: a new sunny instance was created and coupled
    /// (RCHDroid-init in the paper's plots).
    Init,
    /// Steady state: the coupled shadow instance was coin-flipped back.
    Flip,
    /// A fault degraded the change to the stock restart path (rung 2 of
    /// the ladder): saved state → destroy → recreate, coupling abandoned.
    FallbackRestart,
}

/// The outcome of one handled runtime change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeOutcome {
    /// The path taken.
    pub kind: ChangeKind,
    /// The foreground instance after handling.
    pub sunny_instance: ActivityInstanceId,
    /// The coupled shadow instance, if one exists.
    pub shadow_instance: Option<ActivityInstanceId>,
    /// Views linked by the essence-based mapping (0 for flips — the
    /// mapping already exists).
    pub mapped_views: usize,
    /// The view count of the foreground tree (cost-model input).
    pub view_count: usize,
    /// The fault that forced a [`ChangeKind::FallbackRestart`], if it is
    /// attributable to a named injection site.
    pub fault: Option<FaultSite>,
}

/// What one async delivery amounted to under supervision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncDelivery {
    /// The callback ran; nothing needed migrating (foreground delivery,
    /// or the lazy-migration ablation is off).
    Delivered,
    /// The callback ran on the shadow and its updates flushed.
    Migrated(MigrationReport),
    /// The callback panicked (or an injected `async-callback-panic`
    /// struck); the delivery was dropped and the fault contained.
    CallbackPanicked,
    /// The callback's captured instance no longer exists (it died in a
    /// fallback restart or a GC pass); the supervisor dropped the stale
    /// delivery instead of replaying the stock NullPointerException.
    DroppedStale,
    /// Migration faulted uncontainably; the foreground activity was
    /// restarted through the stock path.
    FallbackRestart {
        /// The named injection site, when the fault has one.
        site: Option<FaultSite>,
    },
}

impl AsyncDelivery {
    /// The migration report, when this delivery flushed one (keeps the
    /// happy-path call sites shaped like the old `Option` return).
    pub fn report(&self) -> Option<MigrationReport> {
        match self {
            AsyncDelivery::Migrated(r) => Some(*r),
            _ => None,
        }
    }
}

/// Handler errors.
#[derive(Debug, Clone, PartialEq)]
pub enum HandlerError {
    /// No foreground activity to handle the change for.
    NoForegroundActivity,
    /// Activity-thread failure.
    Thread(ThreadError),
    /// ATMS failure.
    Atms(AtmsError),
    /// View-system failure during coupling/migration.
    View(ViewError),
    /// Migration failure the ladder could not absorb below rung 3 (an
    /// app-logic crash stock Android would die on too).
    Migration(MigrationError),
    /// A protocol invariant the handler relies on was violated (these
    /// replace what used to be `unreachable!` panics).
    Internal(&'static str),
}

impl fmt::Display for HandlerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandlerError::NoForegroundActivity => write!(f, "no foreground activity"),
            HandlerError::Thread(e) => write!(f, "{e}"),
            HandlerError::Atms(e) => write!(f, "{e}"),
            HandlerError::View(e) => write!(f, "{e}"),
            HandlerError::Migration(e) => write!(f, "{e}"),
            HandlerError::Internal(what) => write!(f, "handler invariant violated: {what}"),
        }
    }
}

impl std::error::Error for HandlerError {}

impl From<ThreadError> for HandlerError {
    fn from(e: ThreadError) -> Self {
        HandlerError::Thread(e)
    }
}

impl From<AtmsError> for HandlerError {
    fn from(e: AtmsError) -> Self {
        HandlerError::Atms(e)
    }
}

impl From<ViewError> for HandlerError {
    fn from(e: ViewError) -> Self {
        HandlerError::View(e)
    }
}

impl From<MigrationError> for HandlerError {
    fn from(e: MigrationError) -> Self {
        HandlerError::Migration(e)
    }
}

/// Ablation switches for RCHDroid's design choices (all on by default —
/// the paper's full system). Turning one off isolates its contribution:
///
/// * without **coin-flipping**, every change pays the init cost (creating
///   a fresh sunny instance and rebuilding the mapping) — the Fig. 10a
///   "RCHDroid-init" line becomes the steady state,
/// * without **lazy migration**, async-task results still land safely on
///   the alive shadow instance (no crash), but the foreground tree never
///   learns about them — stale UI.
///
/// `flush_policy` is not an ablation but a tuning knob: it selects when
/// intercepted updates migrate ([`FlushPolicy::Eager`], the paper's
/// per-delivery behaviour, or [`FlushPolicy::Batched`] coalescing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RchOptions {
    /// Reuse the coupled shadow instance on later changes (§3.4).
    pub coin_flip: bool,
    /// Migrate intercepted shadow-tree updates to the sunny tree (§3.3).
    pub lazy_migration: bool,
    /// When intercepted updates migrate (eager vs. batched coalescing).
    pub flush_policy: FlushPolicy,
}

impl Default for RchOptions {
    fn default() -> Self {
        RchOptions {
            coin_flip: true,
            lazy_migration: true,
            flush_policy: FlushPolicy::Eager,
        }
    }
}

/// The RCHDroid runtime-change handler.
///
/// One handler instance serves one app process (matching the paper's
/// at-most-one-shadow-per-system invariant for the foreground app).
#[derive(Debug)]
pub struct RchDroid {
    tracker: ShadowAgeTracker,
    engine: MigrationEngine,
    options: RchOptions,
    /// Fault schedule probed on the change path (sites
    /// `bundle-corruption`, `async-callback-panic`,
    /// `allocation-failure`). The engine holds a clone probing the
    /// *disjoint* flush-path sites, so per-site streams stay aligned.
    faults: FaultPlan,
    fault_log: FaultLog,
    /// Instances THIS handler destroyed (fallback restarts, shadow
    /// releases, GC passes). A late async callback bound to one of these
    /// is dropped as rung-1 containment; a callback to an instance the
    /// *system* reclaimed outside the protocol still crashes like stock.
    supervised_dead: std::collections::HashSet<ActivityInstanceId>,
}

impl RchDroid {
    /// A handler with the paper's GC operating point.
    pub fn new() -> Self {
        RchDroid::with_policy(GcPolicy::paper_default())
    }

    /// A handler with a custom GC policy (the Fig. 11 sweep).
    pub fn with_policy(policy: GcPolicy) -> Self {
        RchDroid::with_options(policy, RchOptions::default())
    }

    /// A handler with ablation options.
    pub fn with_options(policy: GcPolicy, options: RchOptions) -> Self {
        RchDroid {
            tracker: ShadowAgeTracker::new(policy),
            engine: MigrationEngine::with_flush_policy(options.flush_policy),
            options,
            faults: FaultPlan::disarmed(),
            fault_log: FaultLog::default(),
            supervised_dead: std::collections::HashSet::new(),
        }
    }

    /// Arms (or disarms) the fault schedule. The plan is cloned into the
    /// migration engine too; that is deterministic because the handler
    /// and the engine probe disjoint site sets and every site draws from
    /// its own PRNG stream.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.engine.arm_faults(plan.clone());
        self.faults = plan;
    }

    /// Replaces the migration watchdog's per-flush budget.
    pub fn set_watchdog(&mut self, watchdog: MigrationWatchdog) {
        self.engine.set_watchdog(watchdog);
    }

    /// Lifetime fault metrics: handler-path and flush-path faults merged.
    pub fn fault_metrics(&self) -> FaultMetrics {
        let mut merged = self.fault_log.metrics().clone();
        merged.merge(self.engine.fault_metrics());
        merged
    }

    /// Drains the recent fault records from both the handler and the
    /// engine (the device layer turns these into logcat events).
    pub fn take_fault_records(&mut self) -> Vec<FaultRecord> {
        let mut records = self.fault_log.drain();
        records.extend(self.engine.take_fault_records());
        records
    }

    /// The GC policy in force.
    pub fn gc_policy(&self) -> GcPolicy {
        self.tracker.policy()
    }

    /// The ablation options in force.
    pub fn options(&self) -> RchOptions {
        self.options
    }

    /// The migration flush policy in force.
    pub fn flush_policy(&self) -> FlushPolicy {
        self.engine.flush_policy()
    }

    /// Lifetime migration metrics (batch sizes, coalesce ratio, flush
    /// latencies) of this handler's engine.
    pub fn migration_metrics(&self) -> &droidsim_metrics::MigrationMetrics {
        self.engine.metrics()
    }

    /// Drains any batched migrations that are still queued, regardless of
    /// the flush policy's triggers. The handler calls this itself before
    /// every shadow/sunny role change; hosts should also call it on frame
    /// boundaries (via [`RchDroid::on_frame_tick`]) so a deadline trigger
    /// fires even when no further async delivery arrives.
    ///
    /// # Errors
    ///
    /// Thread/view errors while draining.
    pub fn flush_pending_migrations(
        &mut self,
        thread: &mut ActivityThread,
    ) -> Result<Option<MigrationReport>, HandlerError> {
        if self.engine.pending_entries() == 0 {
            return Ok(None);
        }
        let (Some(shadow), Some(sunny)) = (thread.current_shadow(), thread.current_sunny()) else {
            // The coupling is gone; queued updates have nowhere to land.
            self.engine.discard_pending();
            return Ok(None);
        };
        let engine = &mut self.engine;
        let report = thread.with_instance_pair(shadow, sunny, |shadow, sunny| {
            engine.flush(&mut shadow.tree, &mut sunny.tree)
        })??;
        Ok(Some(report))
    }

    /// Frame-boundary hook: flushes the batched queue if its count or
    /// deadline trigger is due at `now`. Cheap no-op otherwise. A flush
    /// fault degrades through the ladder: the foreground activity is
    /// restarted via the stock path instead of erroring out.
    ///
    /// # Errors
    ///
    /// Thread/view errors while draining, or a rung-3 migration error.
    pub fn on_frame_tick(
        &mut self,
        thread: &mut ActivityThread,
        atms: &mut Atms,
        model: &dyn AppModel,
        now: SimTime,
    ) -> Result<Option<MigrationReport>, HandlerError> {
        if !self.engine.flush_due(now) {
            return Ok(None);
        }
        match self.flush_pending_migrations(thread) {
            Ok(report) => Ok(report),
            Err(HandlerError::Migration(e)) if !e.is_app_crash() => {
                if let Some(foreground) = thread.current_sunny() {
                    self.fallback_restart(thread, atms, model, foreground, e.site(), now)?;
                } else {
                    self.engine.discard_pending();
                }
                Ok(None)
            }
            Err(e) => Err(self.escalate(e)),
        }
    }

    /// Handles a runtime configuration change for the foreground activity
    /// (the ATMS global configuration must already be updated).
    ///
    /// Implements steps ①–③ of Fig. 3: shadow the current instance,
    /// sunny-start (create or coin-flip), restore state and couple the
    /// trees. Step ④ (lazy migration) happens later, per async return,
    /// via [`RchDroid::on_async_delivered`].
    ///
    /// # Errors
    ///
    /// [`HandlerError::NoForegroundActivity`] when nothing is in the
    /// foreground; otherwise propagated thread/ATMS/view errors. Handling
    /// faults never surface as errors here — the degradation ladder
    /// absorbs them into a [`ChangeKind::FallbackRestart`] outcome; only
    /// rung-3 app-logic crashes propagate.
    pub fn handle_configuration_change(
        &mut self,
        thread: &mut ActivityThread,
        atms: &mut Atms,
        model: &dyn AppModel,
        now: SimTime,
    ) -> Result<ChangeOutcome, HandlerError> {
        let fore_record = atms
            .foreground_record()
            .ok_or(HandlerError::NoForegroundActivity)?;
        let old_instance = thread
            .instance_for_token(fore_record)
            .ok_or(HandlerError::NoForegroundActivity)?;

        // RCHDroid always prevents the relaunch test (§3.1).
        let decision = atms.ensure_activity_configuration(fore_record, true)?;
        match decision {
            ConfigDecision::NoChange => {
                let view_count = thread.instance(old_instance)?.tree.view_count();
                return Ok(ChangeOutcome {
                    kind: ChangeKind::NoChange,
                    sunny_instance: old_instance,
                    shadow_instance: thread.current_shadow(),
                    mapped_views: 0,
                    view_count,
                    fault: None,
                });
            }
            ConfigDecision::HandledByApp(_) => {
                let activity = thread.instance_mut(old_instance)?;
                model.on_configuration_changed(activity);
                let view_count = activity.tree.view_count();
                return Ok(ChangeOutcome {
                    kind: ChangeKind::HandledByApp,
                    sunny_instance: old_instance,
                    shadow_instance: thread.current_shadow(),
                    mapped_views: 0,
                    view_count,
                    fault: None,
                });
            }
            ConfigDecision::Relaunch(_) => {
                return Err(HandlerError::Internal(
                    "prevent_relaunch=true never yields Relaunch",
                ));
            }
            ConfigDecision::PreventedRelaunch(_) => {}
        }

        // A real change is about to swap shadow/sunny roles: drain any
        // batched migrations first, while the queue's direction is still
        // the one its entries were recorded under. A flush fault here
        // degrades the whole change to the stock restart path.
        match self.flush_pending_migrations(thread) {
            Ok(_) => {}
            Err(HandlerError::Migration(e)) if !e.is_app_crash() => {
                return self.fallback_restart(thread, atms, model, old_instance, e.site(), now);
            }
            Err(e) => return Err(self.escalate(e)),
        }

        // Ablation: with coin-flipping disabled, release any existing
        // shadow so the starter's search finds nothing and every change
        // pays the creation cost.
        if !self.options.coin_flip {
            if let Some(existing) = thread.current_shadow() {
                if existing != old_instance {
                    self.release_shadow(thread, atms, existing)?;
                }
            }
        }

        // Step ①: put the current instance into the Shadow state (this
        // snapshots its saved state into the shadow bundle).
        thread.enter_shadow(old_instance, model)?;
        self.tracker.note_shadow_entry(now);

        // Fault site `bundle-corruption`: the snapshot parcel is lost.
        // The sunny instance cannot restore from it, so the change falls
        // back to a stock restart — launched without saved state, exactly
        // what stock Android does when a parcel fails to unmarshal.
        if self.faults.should_inject(FaultSite::BundleCorruption) {
            if let Ok(activity) = thread.instance_mut(old_instance) {
                activity.shadow_bundle = None;
            }
            return self.fallback_restart(
                thread,
                atms,
                model,
                old_instance,
                Some(FaultSite::BundleCorruption),
                now,
            );
        }

        // Step ②: sunny-start through the ATMS (creates or coin-flips).
        let component = thread.instance(old_instance)?.component().to_owned();
        let start =
            atms.start_activity_with_mask(&Intent::sunny(&component), now, model.handled_changes());

        match start.disposition {
            StartDisposition::CreatedNew => {
                // Fault site `allocation-failure`: creating the sunny
                // instance fails under GC pressure. The record swap the
                // starter just performed is rolled back so the stack
                // never references an instance that was never born.
                if self.faults.should_inject(FaultSite::AllocationFailure) {
                    atms.rollback_sunny_start(&start, fore_record, now)?;
                    return self.fallback_restart(
                        thread,
                        atms,
                        model,
                        old_instance,
                        Some(FaultSite::AllocationFailure),
                        now,
                    );
                }
                // First change: launch the sunny instance from the shadow
                // bundle and build the essence-based mapping (step ③).
                let shadow_bundle = thread.instance(old_instance)?.shadow_bundle.clone();
                let sunny_instance = thread.perform_launch_activity(
                    model,
                    start.record,
                    atms.global_config().clone(),
                    shadow_bundle.as_ref(),
                );
                if thread.resume_sequence(sunny_instance, true).is_err() {
                    self.supervised_dead.insert(sunny_instance);
                    let _ = thread.destroy_activity(sunny_instance);
                    atms.rollback_sunny_start(&start, fore_record, now)?;
                    return self.fallback_restart(thread, atms, model, old_instance, None, now);
                }
                thread.set_current_shadow(Some(old_instance));
                let engine = &mut self.engine;
                let (mapped, view_count) =
                    thread.with_instance_pair(old_instance, sunny_instance, |shadow, sunny| {
                        let mapped = engine.build_mapping(&mut shadow.tree, &mut sunny.tree);
                        // Seed user state the bundle restore missed (views
                        // that skip onSaveInstanceState), then clear the
                        // bookkeeping invalidations.
                        let _ = engine.seed_user_state(&shadow.tree, &mut sunny.tree);
                        shadow.tree.drain_invalidations();
                        sunny.tree.drain_invalidations();
                        (mapped, sunny.tree.view_count())
                    })?;
                Ok(ChangeOutcome {
                    kind: ChangeKind::Init,
                    sunny_instance,
                    shadow_instance: Some(old_instance),
                    mapped_views: mapped,
                    view_count,
                    fault: None,
                })
            }
            StartDisposition::FlippedShadow { .. } => {
                // The record that came back on top belongs to the previous
                // shadow instance: flip it to Sunny on the thread side. If
                // the thread lost that instance, the record swap is rolled
                // back and the change degrades to a stock restart.
                let Some(sunny_instance) = thread.instance_for_token(start.record) else {
                    atms.rollback_sunny_start(&start, fore_record, now)?;
                    return self.fallback_restart(thread, atms, model, old_instance, None, now);
                };
                if thread.resume_sequence(sunny_instance, true).is_err() {
                    self.supervised_dead.insert(sunny_instance);
                    let _ = thread.destroy_activity(sunny_instance);
                    atms.rollback_sunny_start(&start, fore_record, now)?;
                    return self.fallback_restart(thread, atms, model, old_instance, None, now);
                }
                thread.set_current_shadow(Some(old_instance));
                thread.set_current_sunny(Some(sunny_instance));
                let view_count = thread.instance(sunny_instance)?.tree.view_count();
                Ok(ChangeOutcome {
                    kind: ChangeKind::Flip,
                    sunny_instance,
                    shadow_instance: Some(old_instance),
                    mapped_views: 0, // the mapping already exists
                    view_count,
                    fault: None,
                })
            }
            StartDisposition::ReusedTop => Err(HandlerError::Internal(
                "SUNNY starts never reuse the top record",
            )),
        }
    }

    /// Step ④ (lazy migration): runs an async callback and, if it landed
    /// on the shadow instance, migrates the intercepted view updates to
    /// the coupled sunny instance.
    ///
    /// The supervision boundary lives here: a panicking callback (app
    /// bug or injected `async-callback-panic`) is caught and contained —
    /// the delivery is dropped, the process survives. A migration fault
    /// degrades through the ladder (per-view containment inside the
    /// flush, fallback restart of the foreground when the whole flush is
    /// poisoned).
    ///
    /// # Errors
    ///
    /// Thread errors (a crash-worthy delivery target — e.g. the shadow
    /// was GC'd before the task returned, the paper's residual risk —
    /// is recorded as a rung-3 fault and propagated for the process to
    /// be marked crashed), and rung-3 migration errors.
    pub fn on_async_delivered(
        &mut self,
        thread: &mut ActivityThread,
        atms: &mut Atms,
        model: &dyn AppModel,
        work: &AsyncWork,
        now: SimTime,
    ) -> Result<AsyncDelivery, HandlerError> {
        // Fault site `async-callback-panic`: the callback throws before
        // touching any view. Contained — the delivery is dropped.
        if self.faults.should_inject(FaultSite::AsyncCallbackPanic) {
            self.fault_log
                .contained(FaultSite::AsyncCallbackPanic.name());
            return Ok(AsyncDelivery::CallbackPanicked);
        }
        // A callback captured by an instance THIS handler destroyed — in
        // a fallback restart, a shadow release, or a GC pass. Stock
        // Android replays this as the motivating NullPointerException;
        // the supervised handler drops it as rung-1 containment instead.
        // (An instance the system reclaimed outside the protocol is NOT
        // covered: that delivery crashes exactly as on stock.)
        if self.supervised_dead.contains(&work.instance) {
            self.fault_log.contained("stale-callback");
            return Ok(AsyncDelivery::DroppedStale);
        }
        match panic::catch_unwind(AssertUnwindSafe(|| thread.deliver_async(model, work))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return Err(self.escalate(HandlerError::Thread(e))),
            Err(_) => {
                // An organic panic in the app's callback: same containment
                // as the injected one.
                self.fault_log
                    .contained(FaultSite::AsyncCallbackPanic.name());
                return Ok(AsyncDelivery::CallbackPanicked);
            }
        }
        let instance = work.instance;
        let state = thread.instance(instance)?.state();
        if !self.options.lazy_migration {
            // Ablation: the callback ran safely on the shadow instance,
            // but nothing propagates to the foreground tree.
            thread.instance_mut(instance)?.tree.drain_invalidations();
            return Ok(AsyncDelivery::Delivered);
        }
        if state != ActivityState::Shadow {
            // Foreground instance updated directly; nothing to migrate.
            thread.instance_mut(instance)?.tree.drain_invalidations();
            return Ok(AsyncDelivery::Delivered);
        }
        let Some(sunny) = thread.current_sunny() else {
            return Ok(AsyncDelivery::Delivered);
        };
        let engine = &mut self.engine;
        let migrated = thread.with_instance_pair(instance, sunny, |shadow, sunny| {
            engine.migrate_invalidations(&mut shadow.tree, &mut sunny.tree, now)
        })?;
        match migrated {
            Ok(report) => Ok(AsyncDelivery::Migrated(report)),
            Err(e) if !e.is_app_crash() => {
                let site = e.site();
                self.fallback_restart(thread, atms, model, sunny, site, now)?;
                Ok(AsyncDelivery::FallbackRestart { site })
            }
            Err(e) => Err(self.escalate(HandlerError::Migration(e))),
        }
    }

    /// Rung 2 of the degradation ladder: abandon shadow/sunny handling
    /// for this change and replay the stock restart path —
    /// `onSaveInstanceState` → destroy → recreate → resume — on
    /// `old_instance`'s record. Any coupled partner instance (and its
    /// record) is reclaimed first so the task stack never references a
    /// dead instance.
    fn fallback_restart(
        &mut self,
        thread: &mut ActivityThread,
        atms: &mut Atms,
        model: &dyn AppModel,
        old_instance: ActivityInstanceId,
        site: Option<FaultSite>,
        _now: SimTime,
    ) -> Result<ChangeOutcome, HandlerError> {
        let recovery_started = std::time::Instant::now();
        self.abandon_coupling(thread, atms, old_instance)?;

        // Stock `onSaveInstanceState`: reuse the shadow snapshot when the
        // protocol already took one this change, save fresh otherwise. A
        // corrupted parcel restores nothing — stock behaviour again.
        let bundle = if site == Some(FaultSite::BundleCorruption) {
            None
        } else {
            let activity = thread.instance(old_instance)?;
            match activity.shadow_bundle.clone() {
                Some(bundle) if activity.state() == ActivityState::Shadow => Some(bundle),
                _ => Some(activity.save_instance_state(model)),
            }
        };

        // Stock destroy → recreate on the same record token, with the
        // configuration the change was about.
        let token = thread.instance(old_instance)?.token();
        self.supervised_dead.insert(old_instance);
        thread.destroy_activity(old_instance)?;
        let new_instance = thread.perform_launch_activity(
            model,
            token,
            atms.global_config().clone(),
            bundle.as_ref(),
        );
        thread.resume_sequence(new_instance, false)?;
        atms.set_record_state(token, RecordState::Resumed)?;

        let site_name = site.map_or("migration-error", FaultSite::name);
        self.fault_log
            .fallback(site_name, recovery_started.elapsed().as_secs_f64() * 1e3);

        let view_count = thread.instance(new_instance)?.tree.view_count();
        Ok(ChangeOutcome {
            kind: ChangeKind::FallbackRestart,
            sunny_instance: new_instance,
            shadow_instance: None,
            mapped_views: 0,
            view_count,
            fault: site,
        })
    }

    /// Tears down everything the shadow/sunny protocol holds except
    /// `keep`: the engine's coupling state, any partner instance still on
    /// the thread, and the partner's ATMS record. Partners are found by
    /// component, not by the shadow/sunny pointers — `enter_shadow`
    /// repoints those mid-change, and a second alive instance of the
    /// activity can only ever be the protocol's coupling partner.
    fn abandon_coupling(
        &mut self,
        thread: &mut ActivityThread,
        atms: &mut Atms,
        keep: ActivityInstanceId,
    ) -> Result<(), HandlerError> {
        self.engine.reset_coupling();
        let component = thread.instance(keep)?.component().to_owned();
        let partners: Vec<ActivityInstanceId> = thread
            .alive_instances()
            .into_iter()
            .filter(|&id| {
                id != keep
                    && thread
                        .instance(id)
                        .is_ok_and(|a| a.component() == component)
            })
            .collect();
        for partner in partners {
            let token = thread.instance(partner)?.token();
            self.supervised_dead.insert(partner);
            thread.destroy_activity(partner)?;
            let _ = atms.destroy_record(token);
        }
        thread.set_current_shadow(None);
        thread.set_current_sunny(None);
        self.tracker.reset();
        Ok(())
    }

    /// Records a rung-3 escalation for errors that are about to unwind to
    /// the device layer (which marks the process crashed — never a
    /// panic).
    fn escalate(&mut self, error: HandlerError) -> HandlerError {
        self.fault_log.crashed("app-logic");
        error
    }

    /// `doGcForShadowIfNeeded` (§3.5): evaluates Algorithm 1 and, on a
    /// `Collect` verdict, destroys the shadow instance, its record, and
    /// the sunny side's peer pointers.
    ///
    /// # Errors
    ///
    /// Thread/ATMS errors during reclamation.
    pub fn run_gc(
        &mut self,
        thread: &mut ActivityThread,
        atms: &mut Atms,
        now: SimTime,
    ) -> Result<GcDecision, HandlerError> {
        let Some(shadow_instance) = thread.current_shadow() else {
            return Ok(GcDecision::NothingToCollect);
        };
        let token = thread.instance(shadow_instance)?.token();
        let shadow_since = atms.record(token).and_then(|r| r.shadow_since);
        let decision = self.tracker.evaluate(now, shadow_since);
        if decision.should_collect() {
            self.release_shadow(thread, atms, shadow_instance)?;
        }
        Ok(decision)
    }

    /// Releases the shadow immediately (foreground activity finished or
    /// switched to another app — §3.5's immediate-release rule).
    ///
    /// # Errors
    ///
    /// Thread/ATMS errors during reclamation.
    pub fn on_foreground_switched(
        &mut self,
        thread: &mut ActivityThread,
        atms: &mut Atms,
    ) -> Result<bool, HandlerError> {
        let Some(shadow_instance) = thread.current_shadow() else {
            self.tracker.reset();
            return Ok(false);
        };
        self.release_shadow(thread, atms, shadow_instance)?;
        self.tracker.reset();
        Ok(true)
    }

    fn release_shadow(
        &mut self,
        thread: &mut ActivityThread,
        atms: &mut Atms,
        shadow_instance: ActivityInstanceId,
    ) -> Result<(), HandlerError> {
        // Batched updates queued from this shadow must migrate before the
        // instance disappears, or they are lost for good. A flush fault
        // cannot stop the teardown: the updates are dropped (the shadow is
        // dying anyway) and the teardown proceeds.
        if thread.current_shadow() == Some(shadow_instance) {
            match self.flush_pending_migrations(thread) {
                Ok(_) => {}
                Err(HandlerError::Migration(e)) if !e.is_app_crash() => {
                    self.engine.discard_pending();
                }
                Err(e) => return Err(self.escalate(e)),
            }
        } else {
            self.engine.discard_pending();
        }
        let token = thread.instance(shadow_instance)?.token();
        self.supervised_dead.insert(shadow_instance);
        thread.destroy_activity(shadow_instance)?;
        atms.destroy_record(token)?;
        if let Some(sunny) = thread.current_sunny() {
            if let Ok(s) = thread.instance_mut(sunny) {
                s.tree.clear_sunny_peers();
            }
        }
        Ok(())
    }
}

impl Default for RchDroid {
    fn default() -> Self {
        RchDroid::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::LadderRung;
    use droidsim_app::SimpleApp;
    use droidsim_config::Configuration;
    use droidsim_kernel::SimDuration;
    use droidsim_view::ViewOp;

    struct Rig {
        model: SimpleApp,
        atms: Atms,
        thread: ActivityThread,
        rch: RchDroid,
        instance: ActivityInstanceId,
    }

    fn boot(views: usize) -> Rig {
        let model = SimpleApp::with_views(views);
        let mut atms = Atms::new(Configuration::phone_portrait());
        let mut thread = ActivityThread::new();
        let start = atms.start_activity(&Intent::new(model.component_name()));
        let instance = thread.perform_launch_activity(
            &model,
            start.record,
            Configuration::phone_portrait(),
            None,
        );
        thread.resume_sequence(instance, false).unwrap();
        Rig {
            model,
            atms,
            thread,
            rch: RchDroid::new(),
            instance,
        }
    }

    fn rotate(rig: &mut Rig, now: SimTime) -> ChangeOutcome {
        let next = rig.atms.global_config().rotated();
        rig.atms.update_global_config(next);
        rig.rch
            .handle_configuration_change(&mut rig.thread, &mut rig.atms, &rig.model, now)
            .unwrap()
    }

    #[test]
    fn first_change_is_init_and_couples_instances() {
        let mut rig = boot(4);
        let outcome = rotate(&mut rig, SimTime::from_millis(17));
        assert_eq!(outcome.kind, ChangeKind::Init);
        assert_eq!(outcome.shadow_instance, Some(rig.instance));
        assert_ne!(outcome.sunny_instance, rig.instance);
        assert!(outcome.mapped_views > 0);
        // Old instance alive in Shadow, new one in Sunny.
        assert_eq!(
            rig.thread.instance(rig.instance).unwrap().state(),
            ActivityState::Shadow
        );
        assert_eq!(
            rig.thread.instance(outcome.sunny_instance).unwrap().state(),
            ActivityState::Sunny
        );
    }

    #[test]
    fn second_change_is_flip_back_to_original_instance() {
        let mut rig = boot(4);
        let first = rotate(&mut rig, SimTime::from_millis(17));
        let second = rotate(&mut rig, SimTime::from_millis(79));
        assert_eq!(second.kind, ChangeKind::Flip);
        assert_eq!(
            second.sunny_instance, rig.instance,
            "original instance returns"
        );
        assert_eq!(second.shadow_instance, Some(first.sunny_instance));
        assert_eq!(
            rig.thread.alive_instances().len(),
            2,
            "never a third instance"
        );
    }

    #[test]
    fn no_change_short_circuits() {
        let mut rig = boot(2);
        let same = rig.atms.global_config().clone();
        rig.atms.update_global_config(same);
        let outcome = rig
            .rch
            .handle_configuration_change(&mut rig.thread, &mut rig.atms, &rig.model, SimTime::ZERO)
            .unwrap();
        assert_eq!(outcome.kind, ChangeKind::NoChange);
        assert_eq!(rig.thread.alive_instances().len(), 1);
    }

    #[test]
    fn self_handling_app_stays_in_place() {
        let model = SimpleApp::builder(2)
            .handles(droidsim_config::ConfigChanges::ALL)
            .build();
        let mut atms = Atms::new(Configuration::phone_portrait());
        let mut thread = ActivityThread::new();
        let start = atms.start_activity_with_mask(
            &Intent::new(model.component_name()),
            SimTime::ZERO,
            model.handled_changes(),
        );
        let instance = thread.perform_launch_activity(
            &model,
            start.record,
            Configuration::phone_portrait(),
            None,
        );
        thread.resume_sequence(instance, false).unwrap();
        let mut rch = RchDroid::new();
        atms.update_global_config(Configuration::phone_landscape());
        let outcome = rch
            .handle_configuration_change(&mut thread, &mut atms, &model, SimTime::ZERO)
            .unwrap();
        assert_eq!(outcome.kind, ChangeKind::HandledByApp);
        assert_eq!(thread.alive_instances().len(), 1);
    }

    #[test]
    fn state_survives_the_change_via_the_bundle() {
        let mut rig = boot(2);
        // The user scrolls the list — genuine user state on a container.
        {
            let a = rig.thread.instance_mut(rig.instance).unwrap();
            let root = a.tree.find_by_id_name("root").unwrap();
            a.tree.apply(root, ViewOp::ScrollTo(480)).unwrap();
        }
        let outcome = rotate(&mut rig, SimTime::from_millis(10));
        let sunny = rig.thread.instance(outcome.sunny_instance).unwrap();
        let root = sunny.tree.find_by_id_name("root").unwrap();
        assert_eq!(sunny.tree.view(root).unwrap().attrs.scroll_y, 480);
    }

    #[test]
    fn async_task_survives_and_migrates_to_sunny() {
        let mut rig = boot(3);
        // Start the 5 s AsyncTask, then rotate before it returns (Fig. 1b).
        rig.thread
            .start_async(rig.instance, rig.model.button_task(), SimTime::ZERO)
            .unwrap();
        let outcome = rotate(&mut rig, SimTime::from_millis(100));

        // Task returns at t = 5 s, onto the SHADOW instance.
        rig.thread.pump_async(SimTime::from_secs(5));
        let messages = rig.thread.drain_ui(SimTime::from_secs(5));
        assert_eq!(messages.len(), 1);
        let droidsim_app::UiMessage::AsyncResult(work) = &messages[0];
        let report = rig
            .rch
            .on_async_delivered(
                &mut rig.thread,
                &mut rig.atms,
                &rig.model,
                work,
                SimTime::from_secs(5),
            )
            .unwrap()
            .report()
            .expect("migration ran");
        assert_eq!(report.migrated, 3, "all three images migrated");

        // The SUNNY tree shows the loaded images.
        let sunny = rig.thread.instance(outcome.sunny_instance).unwrap();
        for i in 0..3 {
            let v = sunny.tree.find_by_id_name(&format!("image_{i}")).unwrap();
            assert_eq!(
                sunny
                    .tree
                    .view(v)
                    .unwrap()
                    .attrs
                    .drawable
                    .as_ref()
                    .unwrap()
                    .0,
                format!("loaded_{i}.png")
            );
        }
    }

    #[test]
    fn async_to_foreground_instance_needs_no_migration() {
        let mut rig = boot(2);
        let outcome = rotate(&mut rig, SimTime::from_millis(10));
        // Task started AFTER the change, on the sunny instance.
        rig.thread
            .start_async(
                outcome.sunny_instance,
                rig.model.button_task(),
                SimTime::from_secs(1),
            )
            .unwrap();
        rig.thread.pump_async(SimTime::from_secs(6));
        let messages = rig.thread.drain_ui(SimTime::from_secs(6));
        let droidsim_app::UiMessage::AsyncResult(work) = &messages[0];
        let delivery = rig
            .rch
            .on_async_delivered(
                &mut rig.thread,
                &mut rig.atms,
                &rig.model,
                work,
                SimTime::from_secs(6),
            )
            .unwrap();
        assert_eq!(delivery, AsyncDelivery::Delivered);
        assert!(delivery.report().is_none());
    }

    #[test]
    fn gc_collects_old_shadow_and_next_change_is_init_again() {
        let mut rig = boot(2);
        rotate(&mut rig, SimTime::from_secs(1));
        // 100 s later: age 99 > 50 and frequency 0 → collect.
        let decision = rig
            .rch
            .run_gc(&mut rig.thread, &mut rig.atms, SimTime::from_secs(101))
            .unwrap();
        assert!(decision.should_collect());
        assert_eq!(rig.thread.current_shadow(), None);
        assert_eq!(rig.thread.alive_instances().len(), 1);

        // The next change cannot flip: it's an init again.
        let outcome = rotate(&mut rig, SimTime::from_secs(102));
        assert_eq!(outcome.kind, ChangeKind::Init);
    }

    #[test]
    fn gc_keeps_young_shadow() {
        let mut rig = boot(2);
        rotate(&mut rig, SimTime::from_secs(1));
        let decision = rig
            .rch
            .run_gc(&mut rig.thread, &mut rig.atms, SimTime::from_secs(10))
            .unwrap();
        assert!(!decision.should_collect());
        assert!(rig.thread.current_shadow().is_some());
    }

    #[test]
    fn gc_keeps_frequent_flipper() {
        let mut rig = boot(2);
        let policy = GcPolicy::paper_default().with_thresh_t(SimDuration::from_secs(2));
        rig.rch = RchDroid::with_policy(policy);
        // Six flips, 10 s apart.
        for i in 0..6u64 {
            rotate(&mut rig, SimTime::from_secs(10 * i));
        }
        // 5 s after the last flip: age 5 > 2 but frequency ≥ 4 → keep.
        let decision = rig
            .rch
            .run_gc(&mut rig.thread, &mut rig.atms, SimTime::from_secs(55))
            .unwrap();
        assert!(matches!(decision, GcDecision::TooFrequent { .. }));
    }

    #[test]
    fn foreground_switch_releases_shadow_immediately() {
        let mut rig = boot(2);
        rotate(&mut rig, SimTime::from_secs(1));
        assert!(rig.thread.current_shadow().is_some());
        let released = rig
            .rch
            .on_foreground_switched(&mut rig.thread, &mut rig.atms)
            .unwrap();
        assert!(released);
        assert_eq!(rig.thread.current_shadow(), None);
    }

    #[test]
    fn at_most_one_shadow_exists_across_many_changes() {
        let mut rig = boot(2);
        for i in 0..8u64 {
            rotate(&mut rig, SimTime::from_secs(i + 1));
            assert!(rig.atms.shadow_records().len() <= 1);
            assert_eq!(rig.thread.alive_instances().len(), 2);
        }
    }

    #[test]
    fn member_unsaved_state_is_still_lost() {
        // Apps #9/#10 of Table 3: state not in any view, no
        // onSaveInstanceState → RCHDroid cannot help (§5.2).
        let mut rig = boot(1);
        rig.thread
            .instance_mut(rig.instance)
            .unwrap()
            .member_state
            .put_string("scan_pct", "47");
        let outcome = rotate(&mut rig, SimTime::from_secs(1));
        let sunny = rig.thread.instance(outcome.sunny_instance).unwrap();
        assert!(sunny.member_state.is_empty(), "the field did not survive");
    }

    /// A rig whose handler runs the batched flush policy.
    fn boot_batched(views: usize, max_pending: usize, max_delay: SimDuration) -> Rig {
        let mut rig = boot(views);
        rig.rch = RchDroid::with_options(
            GcPolicy::paper_default(),
            RchOptions {
                flush_policy: FlushPolicy::batched(max_pending, max_delay),
                ..RchOptions::default()
            },
        );
        rig
    }

    /// Delivers every due async message through the handler, merging the
    /// flushed reports.
    fn pump_deliveries(rig: &mut Rig, now: SimTime) -> MigrationReport {
        rig.thread.pump_async(now);
        let mut merged = MigrationReport::default();
        for message in rig.thread.drain_ui(now) {
            let droidsim_app::UiMessage::AsyncResult(work) = &message;
            if let Some(r) = rig
                .rch
                .on_async_delivered(&mut rig.thread, &mut rig.atms, &rig.model, work, now)
                .unwrap()
                .report()
            {
                merged = merged.merge(r);
            }
        }
        merged
    }

    #[test]
    fn batched_policy_defers_until_frame_tick() {
        let mut rig = boot_batched(3, 100, SimDuration::from_millis(16));
        rig.thread
            .start_async(rig.instance, rig.model.button_task(), SimTime::ZERO)
            .unwrap();
        let outcome = rotate(&mut rig, SimTime::from_millis(100));

        // Delivery at t=5s: the 3 invalidations queue, none flush (count
        // trigger is 100 and the deadline has not elapsed).
        let report = pump_deliveries(&mut rig, SimTime::from_secs(5));
        assert_eq!(report.migrated, 0);
        let sunny = rig.thread.instance(outcome.sunny_instance).unwrap();
        let v = sunny.tree.find_by_id_name("image_0").unwrap();
        // The sunny tree still shows its inflated placeholder: the loaded
        // drawable sits in the dirty queue, not on the sunny views.
        assert_ne!(
            sunny
                .tree
                .view(v)
                .unwrap()
                .attrs
                .drawable
                .as_ref()
                .unwrap()
                .0,
            "loaded_0.png",
            "not yet migrated"
        );

        // One frame past the deadline, the tick drains the batch.
        let tick = SimTime::from_secs(5) + SimDuration::from_millis(16);
        let flushed = rig
            .rch
            .on_frame_tick(&mut rig.thread, &mut rig.atms, &rig.model, tick)
            .unwrap()
            .expect("deadline flush");
        assert_eq!(flushed.migrated, 3);
        let sunny = rig.thread.instance(outcome.sunny_instance).unwrap();
        let v = sunny.tree.find_by_id_name("image_0").unwrap();
        assert_eq!(
            sunny
                .tree
                .view(v)
                .unwrap()
                .attrs
                .drawable
                .as_ref()
                .unwrap()
                .0,
            "loaded_0.png"
        );
    }

    #[test]
    fn config_change_flushes_queued_migrations_first() {
        let mut rig = boot_batched(3, 100, SimDuration::from_secs(60));
        rig.thread
            .start_async(rig.instance, rig.model.button_task(), SimTime::ZERO)
            .unwrap();
        rotate(&mut rig, SimTime::from_millis(100));
        let report = pump_deliveries(&mut rig, SimTime::from_secs(5));
        assert_eq!(report.migrated, 0, "still queued");

        // The next change must not flip with the queue pending: the
        // handler drains it before swapping roles, so the then-sunny tree
        // (the shadow after the flip) has the images.
        let second = rotate(&mut rig, SimTime::from_secs(6));
        assert_eq!(second.kind, ChangeKind::Flip);
        let then_sunny = rig
            .thread
            .instance(second.shadow_instance.unwrap())
            .unwrap();
        let v = then_sunny.tree.find_by_id_name("image_0").unwrap();
        assert_eq!(
            then_sunny
                .tree
                .view(v)
                .unwrap()
                .attrs
                .drawable
                .as_ref()
                .unwrap()
                .0,
            "loaded_0.png",
            "the pre-flip flush landed the images on the then-sunny tree"
        );
        assert_eq!(rig.rch.migration_metrics().flushes, 1);
    }

    #[test]
    fn gc_flushes_queue_before_collecting_the_shadow() {
        let mut rig = boot_batched(3, 100, SimDuration::from_secs(600));
        rig.thread
            .start_async(rig.instance, rig.model.button_task(), SimTime::ZERO)
            .unwrap();
        let outcome = rotate(&mut rig, SimTime::from_millis(100));
        pump_deliveries(&mut rig, SimTime::from_secs(5));
        assert_eq!(rig.rch.migration_metrics().flushes, 0);

        // 100 s later the GC collects the shadow — after draining.
        let decision = rig
            .rch
            .run_gc(&mut rig.thread, &mut rig.atms, SimTime::from_secs(101))
            .unwrap();
        assert!(decision.should_collect());
        let sunny = rig.thread.instance(outcome.sunny_instance).unwrap();
        let v = sunny.tree.find_by_id_name("image_0").unwrap();
        assert_eq!(
            sunny
                .tree
                .view(v)
                .unwrap()
                .attrs
                .drawable
                .as_ref()
                .unwrap()
                .0,
            "loaded_0.png",
            "queued updates migrated before the shadow died"
        );
    }

    #[test]
    fn batched_handler_coalesces_chatty_tasks() {
        // Three deliveries of the same 3-view task before any flush: the
        // queue coalesces 9 raw invalidations into 3 entries.
        let mut rig = boot_batched(3, 100, SimDuration::from_secs(60));
        for i in 0..3u64 {
            rig.thread
                .start_async(
                    rig.instance,
                    rig.model.button_task(),
                    SimTime::from_millis(i),
                )
                .unwrap();
        }
        rotate(&mut rig, SimTime::from_millis(100));
        pump_deliveries(&mut rig, SimTime::from_secs(6));
        let flushed = rig
            .rch
            .flush_pending_migrations(&mut rig.thread)
            .unwrap()
            .expect("entries were pending");
        assert_eq!(flushed.examined, 3);
        assert_eq!(flushed.coalesced, 6, "9 raw − 3 entries");
        let m = rig.rch.migration_metrics();
        assert!((m.coalesce_ratio() - 3.0).abs() < 1e-12);
    }

    /// Asserts the single-activity steady state the fallback must leave
    /// behind: one alive instance, one resumed record, no shadow records.
    fn assert_stock_steady_state(rig: &Rig, foreground: ActivityInstanceId) {
        assert_eq!(rig.thread.alive_instances(), vec![foreground]);
        assert!(rig.atms.shadow_records().is_empty(), "no shadow leaked");
        let token = rig.thread.instance(foreground).unwrap().token();
        assert_eq!(rig.atms.foreground_record(), Some(token));
        assert_eq!(
            rig.thread.instance(foreground).unwrap().state(),
            ActivityState::Resumed,
            "stock restart resumes, not sunny"
        );
        assert_eq!(rig.thread.current_shadow(), None);
        assert_eq!(rig.thread.current_sunny(), None);
    }

    #[test]
    fn bundle_corruption_falls_back_to_stock_restart() {
        let mut rig = boot(2);
        // The user scrolls; a corrupted parcel must lose this state,
        // exactly like a stock restart whose bundle never arrives.
        {
            let a = rig.thread.instance_mut(rig.instance).unwrap();
            let root = a.tree.find_by_id_name("root").unwrap();
            a.tree.apply(root, ViewOp::ScrollTo(480)).unwrap();
        }
        rig.rch
            .arm_faults(FaultPlan::seeded(7).on_nth_probe(FaultSite::BundleCorruption, 1));
        let outcome = rotate(&mut rig, SimTime::from_secs(1));
        assert_eq!(outcome.kind, ChangeKind::FallbackRestart);
        assert_eq!(outcome.fault, Some(FaultSite::BundleCorruption));
        assert_eq!(outcome.shadow_instance, None);
        assert_stock_steady_state(&rig, outcome.sunny_instance);
        let fresh = rig.thread.instance(outcome.sunny_instance).unwrap();
        let root = fresh.tree.find_by_id_name("root").unwrap();
        assert_eq!(
            fresh.tree.view(root).unwrap().attrs.scroll_y,
            0,
            "corrupted parcel restores nothing"
        );
        let m = rig.rch.fault_metrics();
        assert_eq!(m.fallback_restarts, 1);
        assert_eq!(m.site_count("bundle-corruption"), 1);
        assert_eq!(m.recovery_latency_ms.count(), 1);
    }

    #[test]
    fn allocation_failure_rolls_back_the_sunny_start() {
        let mut rig = boot(3);
        let token = rig.thread.instance(rig.instance).unwrap().token();
        rig.rch
            .arm_faults(FaultPlan::seeded(9).on_nth_probe(FaultSite::AllocationFailure, 1));
        let outcome = rotate(&mut rig, SimTime::from_secs(1));
        assert_eq!(outcome.kind, ChangeKind::FallbackRestart);
        assert_eq!(outcome.fault, Some(FaultSite::AllocationFailure));
        assert_stock_steady_state(&rig, outcome.sunny_instance);
        // The stillborn sunny record was rolled back: the surviving
        // record is the ORIGINAL token, and only one record is alive.
        assert_eq!(
            rig.thread.instance(outcome.sunny_instance).unwrap().token(),
            token
        );
        assert_eq!(rig.atms.alive_record_count(), 1);

        // The ladder recovers: the next change runs the full protocol.
        let next = rotate(&mut rig, SimTime::from_secs(2));
        assert_eq!(next.kind, ChangeKind::Init);
    }

    #[test]
    fn fallback_during_flip_reclaims_the_old_shadow() {
        let mut rig = boot(2);
        rotate(&mut rig, SimTime::from_secs(1));
        assert_eq!(rig.thread.alive_instances().len(), 2);
        // Second change is a flip; corrupt its bundle mid-change. The
        // fallback must reclaim the change-1 shadow partner even though
        // `enter_shadow` already repointed the pointers at the old sunny.
        rig.rch
            .arm_faults(FaultPlan::seeded(11).on_nth_probe(FaultSite::BundleCorruption, 1));
        let second = rotate(&mut rig, SimTime::from_secs(2));
        assert_eq!(second.kind, ChangeKind::FallbackRestart);
        assert_stock_steady_state(&rig, second.sunny_instance);
        assert_eq!(rig.atms.alive_record_count(), 1);
        // And the protocol restarts cleanly afterwards.
        let next = rotate(&mut rig, SimTime::from_secs(3));
        assert_eq!(next.kind, ChangeKind::Init);
        assert_eq!(rig.thread.alive_instances().len(), 2);
    }

    #[test]
    fn async_callback_panic_is_contained() {
        let mut rig = boot(3);
        rig.thread
            .start_async(rig.instance, rig.model.button_task(), SimTime::ZERO)
            .unwrap();
        let outcome = rotate(&mut rig, SimTime::from_millis(100));
        rig.rch
            .arm_faults(FaultPlan::seeded(13).on_nth_probe(FaultSite::AsyncCallbackPanic, 1));
        rig.thread.pump_async(SimTime::from_secs(5));
        let messages = rig.thread.drain_ui(SimTime::from_secs(5));
        let droidsim_app::UiMessage::AsyncResult(work) = &messages[0];
        let delivery = rig
            .rch
            .on_async_delivered(
                &mut rig.thread,
                &mut rig.atms,
                &rig.model,
                work,
                SimTime::from_secs(5),
            )
            .unwrap();
        assert_eq!(delivery, AsyncDelivery::CallbackPanicked);
        // Rung 1: the callback was dropped, both instances live on.
        assert_eq!(rig.thread.alive_instances().len(), 2);
        let sunny = rig.thread.instance(outcome.sunny_instance).unwrap();
        let v = sunny.tree.find_by_id_name("image_0").unwrap();
        assert_ne!(
            sunny
                .tree
                .view(v)
                .unwrap()
                .attrs
                .drawable
                .as_ref()
                .unwrap()
                .0,
            "loaded_0.png",
            "the dropped callback never mutated the tree"
        );
        let m = rig.rch.fault_metrics();
        assert_eq!(m.contained_per_view, 1);
        assert_eq!(m.site_count("async-callback-panic"), 1);
        assert_eq!(m.fallback_restarts, 0);
    }

    #[test]
    fn deadline_overrun_during_change_falls_back() {
        let mut rig = boot_batched(3, 100, SimDuration::from_secs(60));
        rig.thread
            .start_async(rig.instance, rig.model.button_task(), SimTime::ZERO)
            .unwrap();
        rotate(&mut rig, SimTime::from_millis(100));
        pump_deliveries(&mut rig, SimTime::from_secs(5));

        // The pre-change flush of the pending batch blows its deadline;
        // the change degrades to the stock restart path.
        rig.rch
            .arm_faults(FaultPlan::seeded(17).on_nth_probe(FaultSite::FlushDeadlineOverrun, 1));
        let second = rotate(&mut rig, SimTime::from_secs(6));
        assert_eq!(second.kind, ChangeKind::FallbackRestart);
        assert_eq!(second.fault, Some(FaultSite::FlushDeadlineOverrun));
        assert_stock_steady_state(&rig, second.sunny_instance);
        let m = rig.rch.fault_metrics();
        assert_eq!(m.fallback_restarts, 1);
        assert_eq!(m.site_count("flush-deadline-overrun"), 1);
    }

    #[test]
    fn watchdog_overrun_on_frame_tick_falls_back() {
        let mut rig = boot_batched(3, 100, SimDuration::from_millis(16));
        rig.rch.set_watchdog(MigrationWatchdog::new(
            SimDuration::from_micros(50),
            SimDuration::from_micros(100),
        ));
        rig.thread
            .start_async(rig.instance, rig.model.button_task(), SimTime::ZERO)
            .unwrap();
        rotate(&mut rig, SimTime::from_millis(100));
        pump_deliveries(&mut rig, SimTime::from_secs(5));

        // The deadline tick tries to flush 3 entries × 100 µs against a
        // 50 µs budget: the watchdog fires and the tick degrades to a
        // fallback restart of the foreground.
        let tick = SimTime::from_secs(5) + SimDuration::from_millis(16);
        let flushed = rig
            .rch
            .on_frame_tick(&mut rig.thread, &mut rig.atms, &rig.model, tick)
            .unwrap();
        assert!(
            flushed.is_none(),
            "no migration report on the fallback path"
        );
        let foreground = rig.thread.alive_instances()[0];
        assert_stock_steady_state(&rig, foreground);
        let m = rig.rch.fault_metrics();
        assert_eq!(m.fallback_restarts, 1);
        assert_eq!(m.site_count("flush-deadline-overrun"), 1);
    }

    #[test]
    fn fault_records_name_the_rung_that_handled_each_fault() {
        let mut rig = boot(2);
        rig.rch
            .arm_faults(FaultPlan::seeded(19).on_nth_probe(FaultSite::BundleCorruption, 1));
        rotate(&mut rig, SimTime::from_secs(1));
        let records = rig.rch.take_fault_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].site, "bundle-corruption");
        assert_eq!(records[0].rung, LadderRung::FallbackRestart);
        assert!(rig.rch.take_fault_records().is_empty(), "drained");
    }
}
