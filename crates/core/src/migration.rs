//! View-tree migration (§3.3): essence-based mapping + lazy migration.
//!
//! The key observation of the paper: no matter what an app's async
//! callback does internally, its effect always ends as attribute updates
//! on views, funnelled through the generic `invalidate` step. RCHDroid
//! therefore (a) builds, once per coupling, a mapping between the shadow
//! and sunny trees keyed by view id, and (b) copies the *essence* of an
//! invalidated shadow view to its sunny peer with a per-type policy
//! (Table 1).
//!
//! Two paths do the copying:
//!
//! * **eager** ([`FlushPolicy::Eager`], the default): every drained
//!   invalidation migrates immediately — the paper's behaviour,
//! * **batched** ([`FlushPolicy::Batched`]): drained invalidations land
//!   in a coalescing [`DirtyQueue`](crate::batch::DirtyQueue) and migrate
//!   as one batch when a count or deadline trigger fires; peers resolve
//!   through the engine's [`ShardedEssenceMap`]. Because the essence copy
//!   reads the *current* shadow attributes, flushing once after N
//!   invalidations produces the same sunny tree as migrating each one
//!   eagerly — a debug-mode checker replays the eager path on a clone and
//!   asserts exactly that after every flush.

use crate::batch::{DirtyEntry, DirtyQueue, FlushPolicy, ShardedEssenceMap};
use crate::supervise::{FaultLog, FaultRecord, MigrationError, MigrationWatchdog};
use droidsim_faults::{FaultPlan, FaultSite};
use droidsim_kernel::memo::{self, Admission, MemoCache};
use droidsim_kernel::SimTime;
use droidsim_metrics::MigrationMetrics;
use droidsim_view::{MigrationClass, ViewError, ViewId, ViewOp, ViewTree};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Once, OnceLock};

/// A cached essence-mapping plan: the peer pairs [`MigrationEngine::
/// build_mapping`] derives for one `(shadow shape, sunny shape)` pair.
/// Pure structure — replaying it against any trees with the same shape
/// digests reproduces the cold build exactly. Faults inject during plan
/// *application* (the flush path), never during this derivation, so a
/// plan never captures or leaks fault state across `FaultPlan`
/// boundaries.
struct MappingPlan {
    /// Shadow view → sunny peer, in shadow pre-order (`len()` is the
    /// mapped-view count the cold build returns).
    forward: Vec<(ViewId, ViewId)>,
    /// Sunny view → shadow peer, in sunny pre-order. Not necessarily the
    /// inverse of `forward` when duplicate id names shadow each other.
    reverse: Vec<(ViewId, ViewId)>,
}

impl MappingPlan {
    /// Reads the plan back off trees the cold path just mapped.
    fn extract(shadow: &ViewTree, sunny: &ViewTree) -> Self {
        let mut forward = Vec::new();
        shadow.for_each_id(|id| {
            if let Some(peer) = shadow.view(id).ok().and_then(|n| n.sunny_peer) {
                forward.push((id, peer));
            }
        });
        let mut reverse = Vec::new();
        sunny.for_each_id(|id| {
            if let Some(peer) = sunny.view(id).ok().and_then(|n| n.sunny_peer) {
                reverse.push((id, peer));
            }
        });
        MappingPlan { forward, reverse }
    }
}

/// The process-wide mapping-plan cache, keyed by the two trees' shape
/// digests.
fn mapping_plan_cache() -> &'static MemoCache<(u64, u64), MappingPlan> {
    static CACHE: OnceLock<MemoCache<(u64, u64), MappingPlan>> = OnceLock::new();
    static REGISTER: Once = Once::new();
    let cache = CACHE.get_or_init(|| {
        MemoCache::new("mapping", 512, |plan: &MappingPlan| {
            ((plan.forward.len() + plan.reverse.len()) * std::mem::size_of::<(ViewId, ViewId)>())
                as u64
                + 64
        })
    });
    REGISTER.call_once(|| memo::register(cache));
    cache
}

/// The result of one lazy-migration pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationReport {
    /// Invalidated shadow views examined.
    pub examined: usize,
    /// Views whose essence was copied to a sunny peer.
    pub migrated: usize,
    /// Invalidated views with no peer in the sunny tree (e.g. anonymous
    /// or removed in the new layout).
    pub unmapped: usize,
    /// Raw invalidations that coalesced into an already-pending entry —
    /// essence copies the batched path skipped relative to eager (always
    /// 0 under [`FlushPolicy::Eager`] for single-delivery drains, where
    /// the per-delivery dedup happens in the tree itself).
    pub coalesced: usize,
    /// Views whose migration faulted and was contained per-view (rung 1
    /// of the degradation ladder): the view was skipped and marked
    /// stale, the rest of the batch migrated.
    pub contained: usize,
}

impl MigrationReport {
    /// Merges two reports.
    pub fn merge(self, other: MigrationReport) -> MigrationReport {
        MigrationReport {
            examined: self.examined + other.examined,
            migrated: self.migrated + other.migrated,
            unmapped: self.unmapped + other.unmapped,
            coalesced: self.coalesced + other.coalesced,
            contained: self.contained + other.contained,
        }
    }
}

/// Copies the migratable essence of `shadow_view` (in `shadow`) onto its
/// sunny peer (in `sunny`), per the Table 1 policy for the view's basic
/// class. Returns `true` if a peer existed and was updated.
///
/// # Errors
///
/// Propagates [`ViewError`]s from the sunny tree (released tree, stale
/// ids). The shadow view not existing is reported as `UnknownView`.
pub fn migrate_view(
    shadow: &ViewTree,
    sunny: &mut ViewTree,
    shadow_view: ViewId,
) -> Result<bool, ViewError> {
    let Some(peer) = shadow.view(shadow_view)?.sunny_peer else {
        return Ok(false);
    };
    copy_essence(shadow, sunny, shadow_view, peer)?;
    Ok(true)
}

/// The Table-1 essence copy itself, with the peer already resolved (the
/// eager path resolves through the per-view pointer, the batched path
/// through the engine's sharded map).
fn copy_essence(
    shadow: &ViewTree,
    sunny: &mut ViewTree,
    shadow_view: ViewId,
    peer: ViewId,
) -> Result<(), ViewError> {
    let node = shadow.view(shadow_view)?;
    let class = node.kind.migration_class();
    let attrs = node.attrs.clone();

    // Per-type policies of Table 1. Ops go through ViewTree::apply so the
    // sunny tree invalidates (and redraws) exactly as if the app had
    // updated it directly.
    match class {
        MigrationClass::TextView => {
            if let Some(text) = attrs.text {
                sunny.apply(peer, ViewOp::SetText(text))?;
            }
            if let Some(checked) = attrs.checked {
                sunny.apply(peer, ViewOp::SetChecked(checked))?;
            }
        }
        MigrationClass::ImageView => {
            if let Some((name, bytes)) = attrs.drawable {
                sunny.apply(peer, ViewOp::SetDrawable(name, bytes))?;
            }
        }
        MigrationClass::AbsListView => {
            if let Some(pos) = attrs.selector_position {
                sunny.apply(peer, ViewOp::SetSelection(pos))?;
            }
            for item in attrs.checked_items {
                sunny.apply(peer, ViewOp::SetItemChecked(item, true))?;
            }
            if attrs.scroll_y != 0 {
                sunny.apply(peer, ViewOp::ScrollTo(attrs.scroll_y))?;
            }
        }
        MigrationClass::VideoView => {
            if let Some(uri) = attrs.video_uri {
                sunny.apply(peer, ViewOp::SetVideoUri(uri))?;
            }
        }
        MigrationClass::ProgressBar => {
            if let Some(p) = attrs.progress {
                sunny.apply(peer, ViewOp::SetProgress(p))?;
            }
        }
        MigrationClass::Container => {
            if attrs.scroll_y != 0 {
                sunny.apply(peer, ViewOp::ScrollTo(attrs.scroll_y))?;
            }
        }
        MigrationClass::Opaque => {}
    }
    // Visibility and enablement migrate for every class.
    sunny.apply(peer, ViewOp::SetEnabled(attrs.enabled))?;
    sunny.apply(peer, ViewOp::SetVisible(attrs.visible))?;
    Ok(())
}

/// The coupling between a shadow tree and a sunny tree.
///
/// Holds the sharded essence map (one per coupling side, so coin flips
/// keep resolving without a rebuild), the coalescing dirty queue, the
/// [`FlushPolicy`] that decides when the queue drains, and lifetime
/// [`MigrationMetrics`].
#[derive(Debug, Clone)]
pub struct MigrationEngine {
    mapped_views: usize,
    policy: FlushPolicy,
    queue: DirtyQueue,
    /// `peers[side]` maps a view of coupling side `side` to its peer on
    /// the other side. Side 0 is the tree that was shadow when the
    /// mapping was built; a coin flip swaps *roles* but not *sides*.
    peers: [ShardedEssenceMap; 2],
    metrics: MigrationMetrics,
    check_equivalence: bool,
    /// Fault schedule probed on the flush path (sites
    /// `essence-mapping-miss`, `attribute-copy`,
    /// `flush-deadline-overrun`). Disarmed by default.
    faults: FaultPlan,
    watchdog: MigrationWatchdog,
    fault_log: FaultLog,
    /// Views skipped by rung-1 containment since the last mapping build.
    stale_views: Vec<ViewId>,
    /// Reusable flush-batch buffer: the queue drains into it and the
    /// emptied vector returns after the flush, so steady-state flushing
    /// allocates nothing per call.
    flush_scratch: Vec<DirtyEntry>,
}

impl Default for MigrationEngine {
    fn default() -> Self {
        MigrationEngine::new()
    }
}

impl MigrationEngine {
    /// Creates an engine with no coupling built and the paper's eager
    /// flush policy.
    pub fn new() -> Self {
        MigrationEngine::with_flush_policy(FlushPolicy::Eager)
    }

    /// Creates an engine with an explicit flush policy. The debug-mode
    /// batched≡eager equivalence checker is on in debug builds.
    pub fn with_flush_policy(policy: FlushPolicy) -> Self {
        MigrationEngine {
            mapped_views: 0,
            policy,
            queue: DirtyQueue::new(),
            peers: [ShardedEssenceMap::default(), ShardedEssenceMap::default()],
            metrics: MigrationMetrics::new(),
            check_equivalence: cfg!(debug_assertions),
            faults: FaultPlan::disarmed(),
            watchdog: MigrationWatchdog::default(),
            fault_log: FaultLog::default(),
            stale_views: Vec::new(),
            flush_scratch: Vec::new(),
        }
    }

    /// Arms (or disarms) the fault schedule probed during flushes.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Replaces the per-flush watchdog budget.
    pub fn set_watchdog(&mut self, watchdog: MigrationWatchdog) {
        self.watchdog = watchdog;
    }

    /// The per-flush watchdog budget in force.
    pub fn watchdog(&self) -> MigrationWatchdog {
        self.watchdog
    }

    /// Views skipped by rung-1 containment since the last mapping build:
    /// their sunny copy may be stale and must not be trusted.
    pub fn stale_views(&self) -> &[ViewId] {
        &self.stale_views
    }

    /// Lifetime fault metrics for the flush path.
    pub(crate) fn fault_metrics(&self) -> &droidsim_metrics::FaultMetrics {
        self.fault_log.metrics()
    }

    /// Drains the recent fault records (device layer → logcat).
    pub(crate) fn take_fault_records(&mut self) -> Vec<FaultRecord> {
        self.fault_log.drain()
    }

    /// Tears the coupling down entirely: pending queue, both sharded peer
    /// maps, the stale set and the mapped count. Called when a fallback
    /// restart abandons shadow/sunny handling so nothing can migrate
    /// toward a destroyed tree.
    pub fn reset_coupling(&mut self) {
        self.queue.clear();
        self.peers[0].clear();
        self.peers[1].clear();
        self.stale_views.clear();
        self.mapped_views = 0;
    }

    /// The flush policy in force.
    pub fn flush_policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Changes the flush policy. Pending entries stay queued; a switch to
    /// [`FlushPolicy::Eager`] drains them on the next delivery.
    pub fn set_flush_policy(&mut self, policy: FlushPolicy) {
        self.policy = policy;
    }

    /// Enables/disables the debug-mode equivalence checker (it is a
    /// no-op in release builds regardless).
    pub fn set_equivalence_checking(&mut self, on: bool) {
        self.check_equivalence = on;
    }

    /// Lifetime flush/coalescing metrics.
    pub fn metrics(&self) -> &MigrationMetrics {
        &self.metrics
    }

    /// Builds the essence-based mapping **both ways**: each tree's views
    /// store peers into the other, so a coin flip swaps roles without
    /// rebuilding (the paper: the flip "avoids … the building of the
    /// essence-based mapping"). The same pairs are loaded into the
    /// engine's sharded maps — the structure the batched flush resolves
    /// through — and any stale queue is dropped. Returns the number of
    /// shadow views mapped.
    pub fn build_mapping(&mut self, shadow: &mut ViewTree, sunny: &mut ViewTree) -> usize {
        if memo::enabled() {
            let key = (shadow.mapping_shape_digest(), sunny.mapping_shape_digest());
            match mapping_plan_cache().probe(key) {
                Admission::Hit(plan) => return self.apply_mapping_plan(shadow, sunny, &plan),
                Admission::Build => {
                    let mapped = self.build_mapping_cold(shadow, sunny);
                    let plan = MappingPlan::extract(shadow, sunny);
                    debug_assert_eq!(plan.forward.len(), mapped);
                    mapping_plan_cache().publish(key, plan);
                    return mapped;
                }
                Admission::Skip => {}
            }
        }
        self.build_mapping_cold(shadow, sunny)
    }

    /// Replays a cached plan: installs both trees' peer pointers and
    /// refills the engine state exactly as the cold build would.
    fn apply_mapping_plan(
        &mut self,
        shadow: &mut ViewTree,
        sunny: &mut ViewTree,
        plan: &MappingPlan,
    ) -> usize {
        let mapped = shadow.apply_sunny_peers(&plan.forward);
        sunny.apply_sunny_peers(&plan.reverse);
        shadow.set_coupling_side(Some(0));
        sunny.set_coupling_side(Some(1));
        self.peers[0].clear();
        self.peers[1].clear();
        for &(view, peer) in &plan.forward {
            self.peers[0].insert(view, peer);
            self.peers[1].insert(peer, view);
        }
        self.queue.clear();
        self.stale_views.clear();
        self.mapped_views = mapped;
        mapped
    }

    /// The uncached mapping build.
    fn build_mapping_cold(&mut self, shadow: &mut ViewTree, sunny: &mut ViewTree) -> usize {
        // The indexes are cached on the trees (maintained incrementally on
        // structural ops), so this no longer re-traverses either hierarchy.
        // One cheap Symbol→ViewId map clone decouples the borrows.
        let shadow_index = shadow.id_name_index().clone();
        let mapped = shadow.set_sunny_peers(sunny.id_name_index());
        sunny.set_sunny_peers(&shadow_index);
        shadow.set_coupling_side(Some(0));
        sunny.set_coupling_side(Some(1));
        self.peers[0].clear();
        self.peers[1].clear();
        let peers = &mut self.peers;
        shadow.for_each_id(|id| {
            if let Some(peer) = shadow.view(id).ok().and_then(|n| n.sunny_peer) {
                peers[0].insert(id, peer);
                peers[1].insert(peer, id);
            }
        });
        self.queue.clear();
        self.stale_views.clear();
        self.mapped_views = mapped;
        mapped
    }

    /// Views mapped by the last [`MigrationEngine::build_mapping`].
    pub fn mapped_views(&self) -> usize {
        self.mapped_views
    }

    /// Coalesced entries waiting for a flush.
    pub fn pending_entries(&self) -> usize {
        self.queue.len()
    }

    /// Raw invalidations absorbed into the pending queue.
    pub fn pending_raw(&self) -> usize {
        self.queue.raw_pending()
    }

    /// Whether the flush policy says the pending queue should drain now.
    pub fn flush_due(&self, now: SimTime) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        match self.policy {
            FlushPolicy::Eager => true,
            FlushPolicy::Batched {
                max_pending,
                max_delay,
            } => self.queue.len() >= max_pending || self.queue.deadline_due(now, max_delay),
        }
    }

    /// Drops the pending queue without migrating (the coupling is gone —
    /// e.g. the sunny instance died with the app).
    pub fn discard_pending(&mut self) {
        self.queue.clear();
    }

    /// Resolves a shadow view's sunny peer. Coupled trees resolve through
    /// the sharded essence map of their side; uncoupled trees fall back
    /// to the per-view pointer (the stock hook).
    fn resolve_peer(&self, shadow: &ViewTree, view: ViewId) -> Option<ViewId> {
        match shadow.coupling_side() {
            Some(side) => self.peers[side as usize].get(view),
            None => shadow.view(view).ok().and_then(|n| n.sunny_peer),
        }
    }

    /// Lazy migration: drains the shadow tree's recorded invalidations
    /// into the coalescing queue and, when the flush policy fires (always,
    /// for [`FlushPolicy::Eager`]), migrates each queued view's essence to
    /// its sunny peer. Returns the report of what *this call* flushed — an
    /// empty report means the updates are queued, not lost.
    ///
    /// # Errors
    ///
    /// Returns a [`MigrationError`] when the flush aborts: an injected
    /// uncontainable fault, a watchdog overrun, or an app-crashing
    /// sunny-tree error. Per-view faults never error — they are contained
    /// and counted in [`MigrationReport::contained`].
    pub fn migrate_invalidations(
        &mut self,
        shadow: &mut ViewTree,
        sunny: &mut ViewTree,
        now: SimTime,
    ) -> Result<MigrationReport, MigrationError> {
        let queue = &mut self.queue;
        shadow.drain_dirty_with(|view, mask, raw| {
            queue.enqueue(view, mask, raw, now);
        });
        if self.flush_due(now) {
            self.flush(shadow, sunny)
        } else {
            Ok(MigrationReport::default())
        }
    }

    /// Unconditionally drains the pending queue to the sunny tree (the
    /// handler calls this before any shadow/sunny role change so queued
    /// updates can never migrate in a stale direction).
    ///
    /// Rung 1 of the degradation ladder lives here: a fault touching one
    /// view (injected essence-map miss or attribute-copy error, a panic
    /// inside the Table-1 copy, a benign tree rejection) skips that view,
    /// marks it stale and keeps migrating the rest of the batch.
    ///
    /// # Errors
    ///
    /// Returns a [`MigrationError`] only for faults that poison the whole
    /// flush: an injected `flush-deadline-overrun`, a watchdog budget
    /// overrun, or an app-crashing sunny-tree error (released tree,
    /// leaked window) that stock Android would die on too.
    pub fn flush(
        &mut self,
        shadow: &mut ViewTree,
        sunny: &mut ViewTree,
    ) -> Result<MigrationReport, MigrationError> {
        if self.queue.is_empty() {
            return Ok(MigrationReport::default());
        }
        if self.faults.should_inject(FaultSite::FlushDeadlineOverrun) {
            self.queue.clear();
            return Err(MigrationError::Injected {
                site: FaultSite::FlushDeadlineOverrun,
            });
        }
        if let Some(needed) = self.watchdog.exceeded(self.queue.len()) {
            self.queue.clear();
            return Err(MigrationError::DeadlineExceeded {
                budget: self.watchdog.budget,
                needed,
            });
        }
        // Drain into the engine's reusable batch buffer; it is handed
        // back (emptied, capacity kept) whichever way the flush ends.
        let mut batch = std::mem::take(&mut self.flush_scratch);
        self.queue.drain_into(&mut batch);
        let result = self.flush_batch(shadow, sunny, &batch);
        batch.clear();
        self.flush_scratch = batch;
        result
    }

    /// The body of [`MigrationEngine::flush`] over an already-drained
    /// batch.
    fn flush_batch(
        &mut self,
        shadow: &mut ViewTree,
        sunny: &mut ViewTree,
        batch: &[DirtyEntry],
    ) -> Result<MigrationReport, MigrationError> {
        let raw: usize = batch.iter().map(|e| e.raw).sum();

        #[cfg(debug_assertions)]
        let reference = if self.check_equivalence {
            Some(eager_reference(shadow, sunny, batch))
        } else {
            None
        };

        let started = std::time::Instant::now();
        let mut report = MigrationReport::default();
        for entry in batch {
            report.examined += 1;
            let peer = if self.faults.should_inject(FaultSite::EssenceMappingMiss) {
                None
            } else {
                self.resolve_peer(shadow, entry.view)
            };
            let Some(peer) = peer else {
                // A genuinely anonymous view is business as usual; a view
                // that *was* mapped losing its peer is a contained fault.
                if self.peers_contain(shadow, entry.view) {
                    self.contain(entry.view, FaultSite::EssenceMappingMiss, &mut report);
                } else {
                    report.unmapped += 1;
                }
                continue;
            };
            if self.faults.should_inject(FaultSite::AttributeCopy) {
                self.contain(entry.view, FaultSite::AttributeCopy, &mut report);
                continue;
            }
            match panic::catch_unwind(AssertUnwindSafe(|| {
                copy_essence(shadow, sunny, entry.view, peer)
            })) {
                Ok(Ok(())) => report.migrated += 1,
                Ok(Err(e)) if e.is_crash() => return Err(MigrationError::Tree(e)),
                Ok(Err(_)) => self.contain(entry.view, FaultSite::AttributeCopy, &mut report),
                Err(_) => self.contain(entry.view, FaultSite::AttributeCopy, &mut report),
            }
        }
        report.coalesced = raw.saturating_sub(report.examined);
        self.metrics
            .record_flush(report.examined, raw, started.elapsed().as_nanos() as u64);

        #[cfg(debug_assertions)]
        if let Some(reference) = reference {
            // A contained fault intentionally diverges from the eager
            // replay (the skipped view keeps its old sunny state), so the
            // equivalence invariant only holds for fault-free flushes.
            if report.contained == 0 {
                assert_equivalent_to_eager(sunny, &reference);
            }
        }
        Ok(report)
    }

    /// Whether the coupling (sharded map or per-view pointer) knows a
    /// peer for `view` — distinguishes "anonymous by design" from "the
    /// mapping lost an entry".
    fn peers_contain(&self, shadow: &ViewTree, view: ViewId) -> bool {
        match shadow.coupling_side() {
            Some(side) => self.peers[side as usize].get(view).is_some(),
            None => shadow.view(view).ok().and_then(|n| n.sunny_peer).is_some(),
        }
    }

    /// Rung-1 containment bookkeeping for one skipped view.
    fn contain(&mut self, view: ViewId, site: FaultSite, report: &mut MigrationReport) {
        self.stale_views.push(view);
        self.fault_log.contained(site.name());
        report.contained += 1;
    }

    /// Seeds the sunny tree with the shadow tree's *user state* right
    /// after coupling — direct object access, so it also covers views
    /// that skip the save/restore protocol (the paper's custom-view
    /// state-loss class). Unlike full essence migration, seeding never
    /// copies *content* (label text, drawables): the sunny tree just
    /// loaded the correct resources for the new configuration and stale
    /// old-configuration content must not overwrite them.
    ///
    /// # Errors
    ///
    /// Propagates sunny-tree [`ViewError`]s.
    pub fn seed_user_state(
        &self,
        shadow: &ViewTree,
        sunny: &mut ViewTree,
    ) -> Result<MigrationReport, ViewError> {
        let mut report = MigrationReport::default();
        let mut failure: Option<ViewError> = None;
        shadow.for_each_id(|view| {
            if failure.is_some() {
                return;
            }
            let node = match shadow.view(view) {
                Ok(n) => n,
                Err(e) => {
                    failure = Some(e);
                    return;
                }
            };
            report.examined += 1;
            let Some(peer) = node.sunny_peer else {
                report.unmapped += 1;
                return;
            };
            let mut state = node.attrs.save_user_state();
            if !node.freezes_text {
                state.remove("text");
            }
            match sunny.view_mut(peer) {
                Ok(target) => {
                    target.attrs.restore_user_state(&state);
                    report.migrated += 1;
                }
                Err(e) => failure = Some(e),
            }
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Full-tree migration (used right after coupling to seed the sunny
    /// tree with any shadow-side state that the bundle restore may have
    /// missed, e.g. attributes set after the snapshot).
    ///
    /// # Errors
    ///
    /// Propagates sunny-tree [`ViewError`]s.
    pub fn migrate_all(
        &self,
        shadow: &ViewTree,
        sunny: &mut ViewTree,
    ) -> Result<MigrationReport, ViewError> {
        let mut report = MigrationReport::default();
        let mut failure: Option<ViewError> = None;
        shadow.for_each_id(|view| {
            if failure.is_some() {
                return;
            }
            report.examined += 1;
            match migrate_view(shadow, sunny, view) {
                Ok(true) => report.migrated += 1,
                Ok(false) => report.unmapped += 1,
                Err(e) => failure = Some(e),
            }
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }
}

/// Replays the *eager* path for `batch` on a clone of the sunny tree:
/// each queued view migrates through [`migrate_view`], which resolves via
/// the per-view pointer — independently of the sharded map the batched
/// flush uses. Per-view errors are skipped, mirroring the supervised
/// path's rung-1 containment (the assert is skipped whenever containment
/// fired, so tolerating them here can never mask a real divergence).
#[cfg(debug_assertions)]
fn eager_reference(shadow: &ViewTree, sunny: &ViewTree, batch: &[DirtyEntry]) -> ViewTree {
    let mut reference = sunny.clone();
    for entry in batch {
        let _ = migrate_view(shadow, &mut reference, entry.view);
    }
    reference
}

/// Asserts the batched flush produced exactly the sunny tree that eager
/// migration would have: same attributes on every live view.
#[cfg(debug_assertions)]
fn assert_equivalent_to_eager(sunny: &ViewTree, reference: &ViewTree) {
    sunny.for_each_id(|id| {
        let (Ok(got), Ok(want)) = (sunny.view(id), reference.view(id)) else {
            return;
        };
        assert_eq!(
            got.attrs, want.attrs,
            "batched flush diverged from eager migration on {id}"
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidsim_view::ViewKind;

    fn coupled_trees() -> (ViewTree, ViewTree, MigrationEngine) {
        let build = |container: ViewKind| {
            let mut t = ViewTree::new();
            let root = t.add_view(t.root(), container, Some("panel")).unwrap();
            t.add_view(root, ViewKind::EditText, Some("name")).unwrap();
            t.add_view(root, ViewKind::ImageView, Some("hero")).unwrap();
            t.add_view(root, ViewKind::ListView, Some("list")).unwrap();
            t.add_view(root, ViewKind::VideoView, Some("player"))
                .unwrap();
            t.add_view(root, ViewKind::ProgressBar, Some("bar"))
                .unwrap();
            t.add_view(root, ViewKind::TextView, None).unwrap(); // anonymous
            t
        };
        let mut shadow = build(ViewKind::LinearLayout);
        let mut sunny = build(ViewKind::GridLayout); // different layout, same ids
        let mut engine = MigrationEngine::new();
        engine.build_mapping(&mut shadow, &mut sunny);
        (shadow, sunny, engine)
    }

    #[test]
    fn memoized_mapping_matches_cold_build() {
        // Drive the same shape through build_mapping repeatedly so the
        // plan cache passes two-touch admission and replays, then check
        // the warm coupling is indistinguishable from a cold one — peer
        // pointers, mapped counts, and a full migration round-trip.
        let (cold_shadow, cold_sunny, cold_engine) = {
            let was = memo::enabled();
            memo::set_enabled(false);
            let v = coupled_trees();
            memo::set_enabled(was);
            v
        };
        for _ in 0..4 {
            let (mut shadow, mut sunny, mut engine) = coupled_trees();
            assert_eq!(engine.mapped_views(), cold_engine.mapped_views());
            assert_eq!(shadow, cold_shadow, "shadow peers identical");
            assert_eq!(sunny, cold_sunny, "sunny peers identical");
            let name = shadow.find_by_id_name("name").unwrap();
            shadow.apply(name, ViewOp::SetText("warm".into())).unwrap();
            let report = engine
                .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
                .unwrap();
            assert_eq!(report.migrated, 1);
            let peer = sunny.find_by_id_name("name").unwrap();
            assert_eq!(
                sunny.view(peer).unwrap().attrs.text.as_deref(),
                Some("warm")
            );
        }
    }

    #[test]
    fn mapping_links_by_id_name_both_ways() {
        let (shadow, sunny, engine) = coupled_trees();
        // decor, panel, name, hero, list, player, bar = 7 named views.
        assert_eq!(engine.mapped_views(), 7);
        let s_name = shadow.find_by_id_name("name").unwrap();
        let peer = shadow.view(s_name).unwrap().sunny_peer.unwrap();
        assert_eq!(peer, sunny.find_by_id_name("name").unwrap());
        // Reverse direction too (flip support).
        let r_peer = sunny.view(peer).unwrap().sunny_peer.unwrap();
        assert_eq!(r_peer, s_name);
    }

    #[test]
    fn table1_policies_copy_the_right_essence() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        let ids = |t: &ViewTree, n: &str| t.find_by_id_name(n).unwrap();
        shadow
            .apply(ids(&shadow, "name"), ViewOp::SetText("alice".into()))
            .unwrap();
        shadow
            .apply(
                ids(&shadow, "hero"),
                ViewOp::SetDrawable("landscape.png".into(), 123),
            )
            .unwrap();
        shadow
            .apply(ids(&shadow, "list"), ViewOp::SetSelection(5))
            .unwrap();
        shadow
            .apply(ids(&shadow, "list"), ViewOp::SetItemChecked(2, true))
            .unwrap();
        shadow
            .apply(
                ids(&shadow, "player"),
                ViewOp::SetVideoUri("clip.mp4".into()),
            )
            .unwrap();
        shadow
            .apply(ids(&shadow, "bar"), ViewOp::SetProgress(66))
            .unwrap();

        let report = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        assert_eq!(report.examined, 5);
        assert_eq!(report.migrated, 5);

        let get = |n: &str| {
            sunny
                .view(sunny.find_by_id_name(n).unwrap())
                .unwrap()
                .attrs
                .clone()
        };
        assert_eq!(get("name").text.as_deref(), Some("alice"));
        assert_eq!(get("hero").drawable.as_ref().unwrap().0, "landscape.png");
        assert_eq!(get("list").selector_position, Some(5));
        assert_eq!(get("list").checked_items, vec![2]);
        assert_eq!(get("player").video_uri.as_deref(), Some("clip.mp4"));
        assert_eq!(get("bar").progress, Some(66));
    }

    #[test]
    fn anonymous_views_are_unmapped_not_errors() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        // The anonymous TextView is the last child of "panel".
        let panel = shadow.find_by_id_name("panel").unwrap();
        let anon = *shadow.view(panel).unwrap().children.last().unwrap();
        shadow
            .apply(anon, ViewOp::SetText("nobody sees this".into()))
            .unwrap();
        let report = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        assert_eq!(report.unmapped, 1);
        assert_eq!(report.migrated, 0);
    }

    #[test]
    fn migration_invalidates_the_sunny_tree() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("x".into())).unwrap();
        sunny.drain_invalidations();
        engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        assert!(!sunny.drain_invalidations().is_empty(), "sunny redraws");
    }

    #[test]
    fn drained_invalidations_do_not_remigrate() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("x".into())).unwrap();
        engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        let second = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        assert_eq!(second.examined, 0);
    }

    #[test]
    fn migrate_all_seeds_everything_named() {
        let (mut shadow, mut sunny, engine) = coupled_trees();
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("seed".into())).unwrap();
        shadow.drain_invalidations();
        let report = engine.migrate_all(&shadow, &mut sunny).unwrap();
        assert_eq!(report.examined, shadow.view_count());
        assert_eq!(report.unmapped, 1, "only the anonymous view");
        let s_name = sunny.find_by_id_name("name").unwrap();
        assert_eq!(
            sunny.view(s_name).unwrap().attrs.text.as_deref(),
            Some("seed")
        );
    }

    #[test]
    fn visibility_migrates_for_every_class() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        let hero = shadow.find_by_id_name("hero").unwrap();
        shadow.apply(hero, ViewOp::SetVisible(false)).unwrap();
        engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        let s_hero = sunny.find_by_id_name("hero").unwrap();
        assert!(!sunny.view(s_hero).unwrap().attrs.visible);
    }

    #[test]
    fn custom_views_migrate_via_their_base_class() {
        let mut shadow = ViewTree::new();
        let custom = ViewKind::from_class_name("com.app.FancyTextView");
        shadow
            .add_view(shadow.root(), custom.clone(), Some("fancy"))
            .unwrap();
        let mut sunny = ViewTree::new();
        sunny.add_view(sunny.root(), custom, Some("fancy")).unwrap();
        let mut engine = MigrationEngine::new();
        engine.build_mapping(&mut shadow, &mut sunny);
        let f = shadow.find_by_id_name("fancy").unwrap();
        shadow.apply(f, ViewOp::SetText("styled".into())).unwrap();
        engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        let sf = sunny.find_by_id_name("fancy").unwrap();
        assert_eq!(
            sunny.view(sf).unwrap().attrs.text.as_deref(),
            Some("styled")
        );
    }

    fn batched_engine(max_pending: usize, max_delay_ms: u64) -> FlushPolicy {
        FlushPolicy::batched(
            max_pending,
            droidsim_kernel::SimDuration::from_millis(max_delay_ms),
        )
    }

    #[test]
    fn batched_policy_queues_until_count_trigger() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        engine.set_flush_policy(batched_engine(3, 1_000));
        let name = shadow.find_by_id_name("name").unwrap();
        let bar = shadow.find_by_id_name("bar").unwrap();

        // Two distinct views: below the count trigger, nothing flushes.
        shadow.apply(name, ViewOp::SetText("a".into())).unwrap();
        let r = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.examined, 0);
        shadow.apply(bar, ViewOp::SetProgress(10)).unwrap();
        let r = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::from_millis(1))
            .unwrap();
        assert_eq!(r.examined, 0);
        assert_eq!(engine.pending_entries(), 2);
        let s_name = sunny.find_by_id_name("name").unwrap();
        assert_eq!(sunny.view(s_name).unwrap().attrs.text, None, "not yet");

        // Third distinct view reaches max_pending → the batch drains.
        let hero = shadow.find_by_id_name("hero").unwrap();
        shadow.apply(hero, ViewOp::SetVisible(false)).unwrap();
        let r = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::from_millis(2))
            .unwrap();
        assert_eq!(r.examined, 3);
        assert_eq!(r.migrated, 3);
        assert_eq!(engine.pending_entries(), 0);
        assert_eq!(sunny.view(s_name).unwrap().attrs.text.as_deref(), Some("a"));
    }

    #[test]
    fn batched_flush_applies_last_write_per_attribute() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        engine.set_flush_policy(batched_engine(100, 1_000));
        let bar = shadow.find_by_id_name("bar").unwrap();
        // A chatty progress bar: 10 updates, one queue entry.
        for p in 1..=10 {
            shadow.apply(bar, ViewOp::SetProgress(p * 10)).unwrap();
            engine
                .migrate_invalidations(&mut shadow, &mut sunny, SimTime::from_millis(p as u64))
                .unwrap();
        }
        assert_eq!(engine.pending_entries(), 1);
        assert_eq!(engine.pending_raw(), 10);
        let r = engine.flush(&mut shadow, &mut sunny).unwrap();
        assert_eq!(r.examined, 1, "ten raw updates, one essence copy");
        assert_eq!(r.coalesced, 9);
        let s_bar = sunny.find_by_id_name("bar").unwrap();
        assert_eq!(
            sunny.view(s_bar).unwrap().attrs.progress,
            Some(100),
            "last write wins"
        );
    }

    #[test]
    fn deadline_trigger_flushes_a_stale_queue() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        engine.set_flush_policy(batched_engine(100, 16));
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("late".into())).unwrap();
        let r = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::from_millis(100))
            .unwrap();
        assert_eq!(r.examined, 0);
        assert!(!engine.flush_due(SimTime::from_millis(110)));
        assert!(engine.flush_due(SimTime::from_millis(116)));
        // An empty delivery at/after the deadline still drains the queue.
        let r = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::from_millis(120))
            .unwrap();
        assert_eq!(r.migrated, 1);
    }

    #[test]
    fn sharded_resolution_survives_a_coin_flip() {
        let (mut side0, mut side1, mut engine) = coupled_trees();
        engine.set_flush_policy(batched_engine(1, 0));
        // Forward direction: side0 is the shadow.
        let name = side0.find_by_id_name("name").unwrap();
        side0.apply(name, ViewOp::SetText("fwd".into())).unwrap();
        engine
            .migrate_invalidations(&mut side0, &mut side1, SimTime::ZERO)
            .unwrap();
        // Coin flip: roles swap, the mapping is NOT rebuilt. Side1 is now
        // the shadow; resolution must go through the reverse shard set.
        let peer_name = side1.find_by_id_name("name").unwrap();
        side1
            .apply(peer_name, ViewOp::SetText("rev".into()))
            .unwrap();
        let r = engine
            .migrate_invalidations(&mut side1, &mut side0, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.migrated, 1);
        assert_eq!(side0.view(name).unwrap().attrs.text.as_deref(), Some("rev"));
    }

    #[test]
    fn metrics_track_batches_and_coalescing() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        engine.set_flush_policy(batched_engine(2, 1_000));
        let name = shadow.find_by_id_name("name").unwrap();
        let bar = shadow.find_by_id_name("bar").unwrap();
        shadow.apply(name, ViewOp::SetText("a".into())).unwrap();
        shadow.apply(name, ViewOp::SetText("b".into())).unwrap();
        shadow.apply(bar, ViewOp::SetProgress(1)).unwrap();
        engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        let m = engine.metrics();
        assert_eq!(m.flushes, 1);
        assert_eq!(m.raw_invalidations, 3);
        assert_eq!(m.coalesced_entries, 2);
        assert!((m.coalesce_ratio() - 1.5).abs() < 1e-12);
        assert_eq!(m.batch_size.max(), 2.0);
        assert_eq!(m.flush_latency_ns.count(), 1);
    }

    #[test]
    fn eager_default_flushes_every_delivery() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        assert!(engine.flush_policy().is_eager());
        let name = shadow.find_by_id_name("name").unwrap();
        for i in 0..4 {
            shadow
                .apply(name, ViewOp::SetText(format!("v{i}")))
                .unwrap();
            let r = engine
                .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
                .unwrap();
            assert_eq!(r.migrated, 1);
            assert_eq!(engine.pending_entries(), 0);
        }
        assert_eq!(engine.metrics().flushes, 4);
        assert!((engine.metrics().coalesce_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn injected_attribute_copy_fault_is_contained_per_view() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        engine.arm_faults(FaultPlan::seeded(3).on_nth_probe(FaultSite::AttributeCopy, 1));
        let name = shadow.find_by_id_name("name").unwrap();
        let bar = shadow.find_by_id_name("bar").unwrap();
        shadow.apply(name, ViewOp::SetText("a".into())).unwrap();
        shadow.apply(bar, ViewOp::SetProgress(42)).unwrap();
        let r = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.examined, 2);
        assert_eq!(r.contained, 1, "one view skipped");
        assert_eq!(r.migrated, 1, "the rest of the batch migrated");
        assert_eq!(engine.stale_views().len(), 1);
        assert_eq!(engine.fault_metrics().contained_per_view, 1);
        assert_eq!(engine.take_fault_records().len(), 1);
    }

    #[test]
    fn injected_mapping_miss_on_a_mapped_view_is_contained() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        engine.arm_faults(FaultPlan::seeded(4).on_nth_probe(FaultSite::EssenceMappingMiss, 1));
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("lost".into())).unwrap();
        let r = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.contained, 1);
        assert_eq!(r.unmapped, 0, "a mapped view losing its peer is a fault");
        assert_eq!(engine.fault_metrics().site_count("essence-mapping-miss"), 1);
    }

    #[test]
    fn injected_deadline_overrun_aborts_the_flush() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        engine.arm_faults(FaultPlan::seeded(5).on_nth_probe(FaultSite::FlushDeadlineOverrun, 1));
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("x".into())).unwrap();
        let err = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err.site(), Some(FaultSite::FlushDeadlineOverrun));
        assert_eq!(engine.pending_entries(), 0, "aborted batch is dropped");
    }

    #[test]
    fn watchdog_overrun_aborts_the_flush() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        engine.set_watchdog(crate::supervise::MigrationWatchdog {
            budget: droidsim_kernel::SimDuration::from_micros(50),
            per_entry_cost: droidsim_kernel::SimDuration::from_micros(100),
        });
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("x".into())).unwrap();
        let err = engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, MigrationError::DeadlineExceeded { .. }));
        assert_eq!(err.site(), Some(FaultSite::FlushDeadlineOverrun));
    }

    #[test]
    fn reset_coupling_clears_everything() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        engine.set_flush_policy(batched_engine(100, 1_000));
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("x".into())).unwrap();
        engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        assert_eq!(engine.pending_entries(), 1);
        engine.reset_coupling();
        assert_eq!(engine.pending_entries(), 0);
        assert_eq!(engine.mapped_views(), 0);
        assert!(engine.stale_views().is_empty());
    }

    #[test]
    fn rebuilding_the_mapping_drops_a_stale_queue() {
        let (mut shadow, mut sunny, mut engine) = coupled_trees();
        engine.set_flush_policy(batched_engine(100, 1_000));
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("stale".into())).unwrap();
        engine
            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
            .unwrap();
        assert_eq!(engine.pending_entries(), 1);
        engine.build_mapping(&mut shadow, &mut sunny);
        assert_eq!(engine.pending_entries(), 0);
    }
}
