//! View-tree migration (§3.3): essence-based mapping + lazy migration.
//!
//! The key observation of the paper: no matter what an app's async
//! callback does internally, its effect always ends as attribute updates
//! on views, funnelled through the generic `invalidate` step. RCHDroid
//! therefore (a) builds, once per coupling, a hash-table mapping between
//! the shadow and sunny trees keyed by view id, and (b) on every drained
//! invalidation, copies the *essence* of the shadow view to its sunny
//! peer with a per-type policy (Table 1).

use droidsim_view::{MigrationClass, ViewError, ViewId, ViewOp, ViewTree};

/// The result of one lazy-migration pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationReport {
    /// Invalidated shadow views examined.
    pub examined: usize,
    /// Views whose essence was copied to a sunny peer.
    pub migrated: usize,
    /// Invalidated views with no peer in the sunny tree (e.g. anonymous
    /// or removed in the new layout).
    pub unmapped: usize,
}

impl MigrationReport {
    /// Merges two reports.
    pub fn merge(self, other: MigrationReport) -> MigrationReport {
        MigrationReport {
            examined: self.examined + other.examined,
            migrated: self.migrated + other.migrated,
            unmapped: self.unmapped + other.unmapped,
        }
    }
}

/// Copies the migratable essence of `shadow_view` (in `shadow`) onto its
/// sunny peer (in `sunny`), per the Table 1 policy for the view's basic
/// class. Returns `true` if a peer existed and was updated.
///
/// # Errors
///
/// Propagates [`ViewError`]s from the sunny tree (released tree, stale
/// ids). The shadow view not existing is reported as `UnknownView`.
pub fn migrate_view(
    shadow: &ViewTree,
    sunny: &mut ViewTree,
    shadow_view: ViewId,
) -> Result<bool, ViewError> {
    let node = shadow.view(shadow_view)?;
    let Some(peer) = node.sunny_peer else {
        return Ok(false);
    };
    let class = node.kind.migration_class();
    let attrs = node.attrs.clone();

    // Per-type policies of Table 1. Ops go through ViewTree::apply so the
    // sunny tree invalidates (and redraws) exactly as if the app had
    // updated it directly.
    match class {
        MigrationClass::TextView => {
            if let Some(text) = attrs.text {
                sunny.apply(peer, ViewOp::SetText(text))?;
            }
            if let Some(checked) = attrs.checked {
                sunny.apply(peer, ViewOp::SetChecked(checked))?;
            }
        }
        MigrationClass::ImageView => {
            if let Some((name, bytes)) = attrs.drawable {
                sunny.apply(peer, ViewOp::SetDrawable(name, bytes))?;
            }
        }
        MigrationClass::AbsListView => {
            if let Some(pos) = attrs.selector_position {
                sunny.apply(peer, ViewOp::SetSelection(pos))?;
            }
            for item in attrs.checked_items {
                sunny.apply(peer, ViewOp::SetItemChecked(item, true))?;
            }
            if attrs.scroll_y != 0 {
                sunny.apply(peer, ViewOp::ScrollTo(attrs.scroll_y))?;
            }
        }
        MigrationClass::VideoView => {
            if let Some(uri) = attrs.video_uri {
                sunny.apply(peer, ViewOp::SetVideoUri(uri))?;
            }
        }
        MigrationClass::ProgressBar => {
            if let Some(p) = attrs.progress {
                sunny.apply(peer, ViewOp::SetProgress(p))?;
            }
        }
        MigrationClass::Container => {
            if attrs.scroll_y != 0 {
                sunny.apply(peer, ViewOp::ScrollTo(attrs.scroll_y))?;
            }
        }
        MigrationClass::Opaque => {}
    }
    // Visibility and enablement migrate for every class.
    sunny.apply(peer, ViewOp::SetEnabled(attrs.enabled))?;
    sunny.apply(peer, ViewOp::SetVisible(attrs.visible))?;
    Ok(true)
}

/// The coupling between a shadow tree and a sunny tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationEngine {
    mapped_views: usize,
}

impl MigrationEngine {
    /// Creates an engine with no coupling built.
    pub fn new() -> Self {
        MigrationEngine::default()
    }

    /// Builds the essence-based mapping **both ways**: each tree's views
    /// store peers into the other, so a coin flip swaps roles without
    /// rebuilding (the paper: the flip "avoids … the building of the
    /// essence-based mapping"). Returns the number of shadow views mapped.
    pub fn build_mapping(&mut self, shadow: &mut ViewTree, sunny: &mut ViewTree) -> usize {
        let sunny_index = sunny.id_name_index();
        let shadow_index = shadow.id_name_index();
        let mapped = shadow.set_sunny_peers(&sunny_index);
        sunny.set_sunny_peers(&shadow_index);
        self.mapped_views = mapped;
        mapped
    }

    /// Views mapped by the last [`MigrationEngine::build_mapping`].
    pub fn mapped_views(&self) -> usize {
        self.mapped_views
    }

    /// Lazy migration: drains the shadow tree's recorded invalidations and
    /// migrates each invalidated view's essence to its sunny peer.
    ///
    /// # Errors
    ///
    /// Propagates sunny-tree [`ViewError`]s (a released sunny tree is a
    /// bug in the handler, not the app).
    pub fn migrate_invalidations(
        &self,
        shadow: &mut ViewTree,
        sunny: &mut ViewTree,
    ) -> Result<MigrationReport, ViewError> {
        let mut report = MigrationReport::default();
        for view in shadow.drain_invalidations() {
            report.examined += 1;
            if migrate_view(shadow, sunny, view)? {
                report.migrated += 1;
            } else {
                report.unmapped += 1;
            }
        }
        Ok(report)
    }

    /// Seeds the sunny tree with the shadow tree's *user state* right
    /// after coupling — direct object access, so it also covers views
    /// that skip the save/restore protocol (the paper's custom-view
    /// state-loss class). Unlike full essence migration, seeding never
    /// copies *content* (label text, drawables): the sunny tree just
    /// loaded the correct resources for the new configuration and stale
    /// old-configuration content must not overwrite them.
    ///
    /// # Errors
    ///
    /// Propagates sunny-tree [`ViewError`]s.
    pub fn seed_user_state(
        &self,
        shadow: &ViewTree,
        sunny: &mut ViewTree,
    ) -> Result<MigrationReport, ViewError> {
        let mut report = MigrationReport::default();
        for view in shadow.iter_ids() {
            let node = shadow.view(view)?;
            report.examined += 1;
            let Some(peer) = node.sunny_peer else {
                report.unmapped += 1;
                continue;
            };
            let mut state = node.attrs.save_user_state();
            if !node.freezes_text {
                state.remove("text");
            }
            sunny.view_mut(peer)?.attrs.restore_user_state(&state);
            report.migrated += 1;
        }
        Ok(report)
    }

    /// Full-tree migration (used right after coupling to seed the sunny
    /// tree with any shadow-side state that the bundle restore may have
    /// missed, e.g. attributes set after the snapshot).
    ///
    /// # Errors
    ///
    /// Propagates sunny-tree [`ViewError`]s.
    pub fn migrate_all(
        &self,
        shadow: &ViewTree,
        sunny: &mut ViewTree,
    ) -> Result<MigrationReport, ViewError> {
        let mut report = MigrationReport::default();
        for view in shadow.iter_ids() {
            report.examined += 1;
            if migrate_view(shadow, sunny, view)? {
                report.migrated += 1;
            } else {
                report.unmapped += 1;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidsim_view::ViewKind;

    fn coupled_trees() -> (ViewTree, ViewTree, MigrationEngine) {
        let build = |container: ViewKind| {
            let mut t = ViewTree::new();
            let root = t.add_view(t.root(), container, Some("panel")).unwrap();
            t.add_view(root, ViewKind::EditText, Some("name")).unwrap();
            t.add_view(root, ViewKind::ImageView, Some("hero")).unwrap();
            t.add_view(root, ViewKind::ListView, Some("list")).unwrap();
            t.add_view(root, ViewKind::VideoView, Some("player")).unwrap();
            t.add_view(root, ViewKind::ProgressBar, Some("bar")).unwrap();
            t.add_view(root, ViewKind::TextView, None).unwrap(); // anonymous
            t
        };
        let mut shadow = build(ViewKind::LinearLayout);
        let mut sunny = build(ViewKind::GridLayout); // different layout, same ids
        let mut engine = MigrationEngine::new();
        engine.build_mapping(&mut shadow, &mut sunny);
        (shadow, sunny, engine)
    }

    #[test]
    fn mapping_links_by_id_name_both_ways() {
        let (shadow, sunny, engine) = coupled_trees();
        // decor, panel, name, hero, list, player, bar = 7 named views.
        assert_eq!(engine.mapped_views(), 7);
        let s_name = shadow.find_by_id_name("name").unwrap();
        let peer = shadow.view(s_name).unwrap().sunny_peer.unwrap();
        assert_eq!(peer, sunny.find_by_id_name("name").unwrap());
        // Reverse direction too (flip support).
        let r_peer = sunny.view(peer).unwrap().sunny_peer.unwrap();
        assert_eq!(r_peer, s_name);
    }

    #[test]
    fn table1_policies_copy_the_right_essence() {
        let (mut shadow, mut sunny, engine) = coupled_trees();
        let ids = |t: &ViewTree, n: &str| t.find_by_id_name(n).unwrap();
        shadow.apply(ids(&shadow, "name"), ViewOp::SetText("alice".into())).unwrap();
        shadow
            .apply(ids(&shadow, "hero"), ViewOp::SetDrawable("landscape.png".into(), 123))
            .unwrap();
        shadow.apply(ids(&shadow, "list"), ViewOp::SetSelection(5)).unwrap();
        shadow.apply(ids(&shadow, "list"), ViewOp::SetItemChecked(2, true)).unwrap();
        shadow.apply(ids(&shadow, "player"), ViewOp::SetVideoUri("clip.mp4".into())).unwrap();
        shadow.apply(ids(&shadow, "bar"), ViewOp::SetProgress(66)).unwrap();

        let report = engine.migrate_invalidations(&mut shadow, &mut sunny).unwrap();
        assert_eq!(report.examined, 5);
        assert_eq!(report.migrated, 5);

        let get = |n: &str| sunny.view(sunny.find_by_id_name(n).unwrap()).unwrap().attrs.clone();
        assert_eq!(get("name").text.as_deref(), Some("alice"));
        assert_eq!(get("hero").drawable.as_ref().unwrap().0, "landscape.png");
        assert_eq!(get("list").selector_position, Some(5));
        assert_eq!(get("list").checked_items, vec![2]);
        assert_eq!(get("player").video_uri.as_deref(), Some("clip.mp4"));
        assert_eq!(get("bar").progress, Some(66));
    }

    #[test]
    fn anonymous_views_are_unmapped_not_errors() {
        let (mut shadow, mut sunny, engine) = coupled_trees();
        // The anonymous TextView is the last child of "panel".
        let panel = shadow.find_by_id_name("panel").unwrap();
        let anon = *shadow.view(panel).unwrap().children.last().unwrap();
        shadow.apply(anon, ViewOp::SetText("nobody sees this".into())).unwrap();
        let report = engine.migrate_invalidations(&mut shadow, &mut sunny).unwrap();
        assert_eq!(report.unmapped, 1);
        assert_eq!(report.migrated, 0);
    }

    #[test]
    fn migration_invalidates_the_sunny_tree() {
        let (mut shadow, mut sunny, engine) = coupled_trees();
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("x".into())).unwrap();
        sunny.drain_invalidations();
        engine.migrate_invalidations(&mut shadow, &mut sunny).unwrap();
        assert!(!sunny.drain_invalidations().is_empty(), "sunny redraws");
    }

    #[test]
    fn drained_invalidations_do_not_remigrate() {
        let (mut shadow, mut sunny, engine) = coupled_trees();
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("x".into())).unwrap();
        engine.migrate_invalidations(&mut shadow, &mut sunny).unwrap();
        let second = engine.migrate_invalidations(&mut shadow, &mut sunny).unwrap();
        assert_eq!(second.examined, 0);
    }

    #[test]
    fn migrate_all_seeds_everything_named() {
        let (mut shadow, mut sunny, engine) = coupled_trees();
        let name = shadow.find_by_id_name("name").unwrap();
        shadow.apply(name, ViewOp::SetText("seed".into())).unwrap();
        shadow.drain_invalidations();
        let report = engine.migrate_all(&shadow, &mut sunny).unwrap();
        assert_eq!(report.examined, shadow.view_count());
        assert_eq!(report.unmapped, 1, "only the anonymous view");
        let s_name = sunny.find_by_id_name("name").unwrap();
        assert_eq!(sunny.view(s_name).unwrap().attrs.text.as_deref(), Some("seed"));
    }

    #[test]
    fn visibility_migrates_for_every_class() {
        let (mut shadow, mut sunny, engine) = coupled_trees();
        let hero = shadow.find_by_id_name("hero").unwrap();
        shadow.apply(hero, ViewOp::SetVisible(false)).unwrap();
        engine.migrate_invalidations(&mut shadow, &mut sunny).unwrap();
        let s_hero = sunny.find_by_id_name("hero").unwrap();
        assert!(!sunny.view(s_hero).unwrap().attrs.visible);
    }

    #[test]
    fn custom_views_migrate_via_their_base_class() {
        let mut shadow = ViewTree::new();
        let custom = ViewKind::from_class_name("com.app.FancyTextView");
        shadow.add_view(shadow.root(), custom.clone(), Some("fancy")).unwrap();
        let mut sunny = ViewTree::new();
        sunny.add_view(sunny.root(), custom, Some("fancy")).unwrap();
        let mut engine = MigrationEngine::new();
        engine.build_mapping(&mut shadow, &mut sunny);
        let f = shadow.find_by_id_name("fancy").unwrap();
        shadow.apply(f, ViewOp::SetText("styled".into())).unwrap();
        engine.migrate_invalidations(&mut shadow, &mut sunny).unwrap();
        let sf = sunny.find_by_id_name("fancy").unwrap();
        assert_eq!(sunny.view(sf).unwrap().attrs.text.as_deref(), Some("styled"));
    }
}
