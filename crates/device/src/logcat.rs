//! A logcat-style view of the device's event log.
//!
//! The paper's artifact measures handling time by grepping the device
//! log: "Users can print the related logs by the command through ADB:
//! `logcat | grep "zizhan"`" (§A.5). This module renders the device's
//! structured events as log lines with the same tag, so the artifact's
//! measurement workflow works verbatim against the simulator.

use crate::device::Device;
use crate::events::{DeviceEvent, HandlingPath};

/// The log tag the paper's patch uses.
pub const TAG: &str = "zizhan";

fn path_name(path: HandlingPath) -> &'static str {
    match path {
        HandlingPath::NoChange => "no-change",
        HandlingPath::HandledByApp => "onConfigurationChanged",
        HandlingPath::Relaunch => "relaunch",
        HandlingPath::RchInit => "rchdroid-init",
        HandlingPath::RchFlip => "rchdroid-flip",
        HandlingPath::RchFallback => "rchdroid-fallback",
        HandlingPath::RuntimeDroidInPlace => "runtimedroid-inplace",
    }
}

fn render_line(line: &mut String, event: &DeviceEvent) {
    use std::fmt::Write;
    line.clear();
    // Writing into a reused buffer never fails; the results are discarded
    // rather than unwrapped to keep the arms readable.
    let _ = match event {
        DeviceEvent::AppLaunched { at, component } => {
            write!(line, "{:>10.3} I ActivityTaskManager: Displayed {component} (+launch)", at.as_secs_f64())
        }
        DeviceEvent::ConfigChange { at, latency, path, component } => write!(
            line,
            "{:>10.3} I {TAG}: runtime change handled for {component} via {} in {:.3} ms",
            at.as_secs_f64(),
            path_name(*path),
            latency.as_millis_f64()
        ),
        DeviceEvent::AsyncDelivered { at, component, migration_latency, migrated_views } => {
            match migration_latency {
                Some(d) => write!(
                    line,
                    "{:>10.3} I {TAG}: lazy-migrated {migrated_views} views for {component} in {:.3} ms",
                    at.as_secs_f64(),
                    d.as_millis_f64()
                ),
                None => write!(
                    line,
                    "{:>10.3} D AsyncTask: result delivered to {component}",
                    at.as_secs_f64()
                ),
            }
        }
        DeviceEvent::Crash { at, component, exception } => write!(
            line,
            "{:>10.3} E AndroidRuntime: FATAL EXCEPTION in {component}: {exception}",
            at.as_secs_f64()
        ),
        DeviceEvent::GcPass { at, collected } => write!(
            line,
            "{:>10.3} D {TAG}: shadow GC pass ({})",
            at.as_secs_f64(),
            if *collected { "collected" } else { "kept" }
        ),
        DeviceEvent::Fault { at, component, site, rung } => write!(
            line,
            "{:>10.3} W {TAG}: fault at {site} in {component} absorbed by {rung}",
            at.as_secs_f64()
        ),
    };
}

impl Device {
    /// Renders the event log as logcat lines. Handling-time lines carry
    /// the paper's `zizhan` tag; pass a filter (like `grep`) to select.
    pub fn logcat(&self, filter: Option<&str>) -> Vec<String> {
        droidsim_kernel::alloc_track::note(1);
        let mut out = Vec::new();
        self.for_each_logcat_line(filter, |line| out.push(line.to_owned()));
        out
    }

    /// Streams logcat lines through one reused line buffer. This is the
    /// allocation-free path the soak and fleet measurement loops use:
    /// `logcat()` materialises a `Vec<String>` (one allocation per event),
    /// whereas this renders every event into the same buffer.
    pub fn for_each_logcat_line(&self, filter: Option<&str>, mut f: impl FnMut(&str)) {
        let mut line = String::new();
        for event in self.events() {
            render_line(&mut line, event);
            if filter.is_none_or(|pat| line.contains(pat)) {
                f(&line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::device::{Device, HandlingMode};
    use droidsim_app::SimpleApp;
    use droidsim_kernel::SimDuration;

    fn device_with_history() -> Device {
        let mut d = Device::new(HandlingMode::rchdroid_default());
        d.install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0)
            .unwrap();
        d.start_async_on_foreground(SimpleApp::with_views(4).button_task())
            .unwrap();
        d.rotate().unwrap();
        d.advance(SimDuration::from_secs(8));
        d
    }

    #[test]
    fn grep_zizhan_yields_handling_and_migration_lines() {
        let d = device_with_history();
        let lines = d.logcat(Some(super::TAG));
        assert!(
            lines.iter().any(|l| l.contains("rchdroid-init")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains("lazy-migrated 4 views")),
            "{lines:?}"
        );
        // Every tagged line parses a millisecond number, as the artifact's
        // measurement script expects.
        for line in &lines {
            if line.contains("handled") || line.contains("lazy-migrated") {
                assert!(line.contains(" ms"), "{line}");
            }
        }
    }

    #[test]
    fn streaming_path_matches_materialised_log() {
        let d = device_with_history();
        for filter in [None, Some(super::TAG), Some("FATAL")] {
            let mut streamed = Vec::new();
            d.for_each_logcat_line(filter, |line| streamed.push(line.to_owned()));
            assert_eq!(streamed, d.logcat(filter));
        }
    }

    #[test]
    fn unfiltered_log_contains_launch_line() {
        let d = device_with_history();
        let all = d.logcat(None);
        assert!(all.iter().any(|l| l.contains("Displayed com.bench/.Main")));
        assert!(all.len() > d.logcat(Some(super::TAG)).len());
    }

    #[test]
    fn absorbed_fault_appears_as_tagged_warning() {
        use droidsim_faults::{FaultPlan, FaultSite};
        let mut d = Device::new(HandlingMode::rchdroid_default());
        let c = d
            .install_and_launch(Box::new(SimpleApp::with_views(2)), 40 << 20, 1.0)
            .unwrap();
        d.arm_faults(
            &c,
            FaultPlan::seeded(3).on_nth_probe(FaultSite::BundleCorruption, 1),
        )
        .unwrap();
        d.rotate().unwrap();
        let faults = d.logcat(Some("fault at"));
        assert_eq!(faults.len(), 1);
        assert!(faults[0].contains(super::TAG));
        assert!(faults[0].contains("bundle-corruption"));
        assert!(faults[0].contains("fallback-restart"));
        assert!(d
            .logcat(Some(super::TAG))
            .iter()
            .any(|l| l.contains("rchdroid-fallback")));
    }

    #[test]
    fn crash_appears_as_fatal_exception() {
        let mut d = Device::new(HandlingMode::Android10);
        d.install_and_launch(Box::new(SimpleApp::with_views(2)), 40 << 20, 1.0)
            .unwrap();
        d.start_async_on_foreground(SimpleApp::with_views(2).button_task())
            .unwrap();
        d.rotate().unwrap();
        d.advance(SimDuration::from_secs(6));
        let fatals = d.logcat(Some("FATAL EXCEPTION"));
        assert_eq!(fatals.len(), 1);
        assert!(fatals[0].contains("NullPointerException"));
    }
}
