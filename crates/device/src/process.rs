//! One installed app process.

use droidsim_app::{Activity, ActivityInstanceId, ActivityThread, AppModel};
use droidsim_kernel::{SimDuration, SimTime};
use droidsim_metrics::{AppCostProfile, MemoryModel, MemorySnapshot};
use rchdroid::RchDroid;
use runtimedroid_baseline::RuntimeDroid;

/// An installed app: its model (black-box logic), its activity thread,
/// per-process change handlers, and bookkeeping the experiments read.
pub struct AppProcess {
    pub(crate) model: Box<dyn AppModel>,
    pub(crate) thread: ActivityThread,
    pub(crate) rch: RchDroid,
    pub(crate) rtd: RuntimeDroid,
    pub(crate) complexity: f64,
    pub(crate) memory: MemoryModel,
    pub(crate) crashed: Option<String>,
    pub(crate) latencies: Vec<(SimTime, SimDuration)>,
}

impl AppProcess {
    pub(crate) fn new(model: Box<dyn AppModel>, base_memory_bytes: u64, complexity: f64) -> Self {
        AppProcess {
            model,
            thread: ActivityThread::new(),
            rch: RchDroid::new(),
            rtd: RuntimeDroid::new(),
            complexity,
            memory: MemoryModel::new(base_memory_bytes),
            crashed: None,
            latencies: Vec::new(),
        }
    }

    /// The app's component name.
    pub fn component(&self) -> &str {
        self.model.component_name()
    }

    /// The black-box app model.
    pub fn model(&self) -> &dyn AppModel {
        self.model.as_ref()
    }

    /// The process's activity thread (read access for assertions).
    pub fn thread(&self) -> &ActivityThread {
        &self.thread
    }

    /// The exception message if the process crashed.
    pub fn crash(&self) -> Option<&str> {
        self.crashed.as_deref()
    }

    /// Handling latencies recorded so far (change time, latency).
    pub fn latencies(&self) -> &[(SimTime, SimDuration)] {
        &self.latencies
    }

    /// Latencies in milliseconds (experiment convenience).
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.latencies
            .iter()
            .map(|(_, d)| d.as_millis_f64())
            .collect()
    }

    /// The cost profile for the current foreground tree.
    pub fn cost_profile(&self) -> AppCostProfile {
        let view_count = self
            .foreground_activity()
            .map_or(1, |a| a.tree.view_count());
        AppCostProfile {
            complexity: self.complexity,
            view_count,
        }
    }

    /// The instance currently in the foreground (resumed or sunny).
    pub fn foreground_activity(&self) -> Option<&Activity> {
        self.thread
            .alive_instances()
            .into_iter()
            .filter_map(|id| self.thread.instance(id).ok())
            .find(|a| a.state().is_foreground())
    }

    /// The foreground instance id.
    pub fn foreground_instance(&self) -> Option<ActivityInstanceId> {
        self.foreground_activity().map(Activity::id)
    }

    /// PSS snapshot: base + alive activities (0 after a crash — the
    /// process is gone).
    pub fn memory_snapshot(&self) -> MemorySnapshot {
        if self.crashed.is_some() {
            return MemorySnapshot::default();
        }
        self.memory.snapshot(
            self.thread
                .alive_instances()
                .into_iter()
                .filter_map(|id| self.thread.instance(id).ok())
                .map(Activity::heap_bytes),
        )
    }
}

impl core::fmt::Debug for AppProcess {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AppProcess")
            .field("component", &self.component())
            .field("complexity", &self.complexity)
            .field("crashed", &self.crashed)
            .field("alive_instances", &self.thread.alive_instances().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidsim_app::SimpleApp;
    use droidsim_atms::ActivityRecordId;
    use droidsim_config::Configuration;

    fn process_with_instance() -> AppProcess {
        let mut p = AppProcess::new(Box::new(SimpleApp::with_views(3)), 10 << 20, 1.5);
        let model = SimpleApp::with_views(3);
        let id = p.thread.perform_launch_activity(
            &model,
            ActivityRecordId::new(0),
            Configuration::phone_portrait(),
            None,
        );
        p.thread.resume_sequence(id, false).unwrap();
        p
    }

    #[test]
    fn cost_profile_reflects_the_live_tree() {
        let p = process_with_instance();
        let profile = p.cost_profile();
        assert_eq!(profile.complexity, 1.5);
        // decor + root + 3 images + button
        assert_eq!(profile.view_count, 6);
    }

    #[test]
    fn foreground_accessors_agree() {
        let p = process_with_instance();
        let fg = p.foreground_activity().unwrap();
        assert_eq!(Some(fg.id()), p.foreground_instance());
        assert!(fg.state().is_foreground());
    }

    #[test]
    fn memory_snapshot_is_zero_after_crash() {
        let mut p = process_with_instance();
        assert!(p.memory_snapshot().total_bytes() > 10 << 20);
        p.crashed = Some("boom".to_owned());
        assert_eq!(p.memory_snapshot().total_bytes(), 0);
        assert_eq!(p.crash(), Some("boom"));
    }

    #[test]
    fn latencies_convert_to_ms() {
        let mut p = process_with_instance();
        p.latencies
            .push((droidsim_kernel::SimTime::ZERO, SimDuration::from_millis(89)));
        assert_eq!(p.latencies_ms(), vec![89.0]);
        assert_eq!(p.latencies().len(), 1);
    }

    #[test]
    fn debug_is_informative() {
        let p = process_with_instance();
        let s = format!("{p:?}");
        assert!(s.contains("com.bench/.Main"));
        assert!(s.contains("alive_instances: 1"));
    }
}
