//! The virtual device.

use crate::events::{DeviceEvent, HandlingPath};
use crate::process::AppProcess;
use core::fmt;
use droidsim_app::{AppModel, AsyncSpec, ThreadError, UiMessage};
use droidsim_atms::{Atms, ConfigDecision, Intent, RecordState};
use droidsim_config::Configuration;
use droidsim_faults::FaultPlan;
use droidsim_kernel::{SimDuration, SimTime, Xoshiro256};
use droidsim_metrics::{CostModel, DeviceMetrics, FaultMetrics, MemorySnapshot};
use rchdroid::{AsyncDelivery, ChangeKind, GcPolicy, LadderRung, RchOptions};
use std::collections::BTreeMap;

/// Which runtime-change handling system the device runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HandlingMode {
    /// Stock Android 10: restarting-based handling.
    Android10,
    /// RCHDroid with the given GC policy and ablation options.
    RchDroid(GcPolicy, RchOptions),
    /// The RuntimeDroid app-level baseline (assumes every installed app
    /// has been patched).
    RuntimeDroid,
}

impl HandlingMode {
    /// RCHDroid at the paper's chosen GC operating point.
    pub fn rchdroid_default() -> Self {
        HandlingMode::RchDroid(GcPolicy::paper_default(), RchOptions::default())
    }

    /// RCHDroid with a custom GC policy (the Fig. 11 sweep).
    pub fn rchdroid_with_policy(policy: GcPolicy) -> Self {
        HandlingMode::RchDroid(policy, RchOptions::default())
    }

    /// RCHDroid with ablation options (design-choice studies).
    pub fn rchdroid_ablated(options: RchOptions) -> Self {
        HandlingMode::RchDroid(GcPolicy::paper_default(), options)
    }

    /// Whether this mode is RCHDroid.
    pub fn is_rchdroid(self) -> bool {
        matches!(self, HandlingMode::RchDroid(..))
    }
}

/// The report returned for one configuration change.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeReport {
    /// Handling path taken.
    pub path: HandlingPath,
    /// Change arrival → activity resumed.
    pub latency: SimDuration,
    /// Foreground component that handled the change.
    pub component: String,
}

/// Device-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// No app is in the foreground.
    NoForegroundApp,
    /// The named component is not installed.
    UnknownApp(String),
    /// The foreground app has crashed; relaunch it first.
    AppCrashed(String),
    /// Internal handling failure (bug in a handler).
    Handling(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::NoForegroundApp => write!(f, "no app in the foreground"),
            DeviceError::UnknownApp(c) => write!(f, "app `{c}` is not installed"),
            DeviceError::AppCrashed(c) => write!(f, "app `{c}` has crashed"),
            DeviceError::Handling(m) => write!(f, "handling failure: {m}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// One virtual Android device.
pub struct Device {
    mode: HandlingMode,
    cost: CostModel,
    atms: Atms,
    apps: BTreeMap<String, AppProcess>,
    clock: SimTime,
    events: Vec<DeviceEvent>,
    gc_interval: SimDuration,
    next_gc: SimTime,
    /// Optional measurement noise: each charged latency is scaled by a
    /// uniform factor with the given coefficient of variation. Used to
    /// reproduce the paper's §5.1 protocol (mean of ≥5 runs, std < 5 %
    /// of the mean); `None` keeps the device bit-deterministic.
    jitter: Option<(Xoshiro256, f64)>,
}

impl Device {
    /// A device booted in portrait with the calibrated cost model.
    pub fn new(mode: HandlingMode) -> Self {
        Device::with_cost_model(mode, CostModel::calibrated())
    }

    /// A device with a custom cost model (ablations).
    pub fn with_cost_model(mode: HandlingMode, cost: CostModel) -> Self {
        let gc_interval = SimDuration::from_secs(1);
        Device {
            mode,
            cost,
            atms: Atms::new(Configuration::phone_portrait()),
            apps: BTreeMap::new(),
            clock: SimTime::ZERO,
            events: Vec::new(),
            gc_interval,
            next_gc: SimTime::ZERO + gc_interval,
            jitter: None,
        }
    }

    /// Enables latency jitter: every charged latency is multiplied by a
    /// seeded uniform factor whose standard deviation is `cv` of the
    /// mean. Different seeds model the run-to-run variation of real
    /// hardware.
    pub fn with_jitter(mut self, seed: u64, cv: f64) -> Self {
        self.jitter = Some((Xoshiro256::seed_from(seed), cv.max(0.0)));
        self
    }

    fn jittered(&mut self, latency: SimDuration) -> SimDuration {
        match &mut self.jitter {
            None => latency,
            Some((rng, cv)) => {
                // Uniform on [1-√3·cv, 1+√3·cv] has std = cv.
                let half_width = 3.0f64.sqrt() * *cv;
                let factor = rng.next_f64_range(1.0 - half_width, 1.0 + half_width);
                latency.mul_f64(factor.max(0.0))
            }
        }
    }

    /// The virtual clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The handling mode.
    pub fn mode(&self) -> HandlingMode {
        self.mode
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The current global configuration.
    pub fn configuration(&self) -> &Configuration {
        self.atms.global_config()
    }

    /// The event log.
    pub fn events(&self) -> &[DeviceEvent] {
        &self.events
    }

    /// Read access to the ATMS (assertions).
    pub fn atms(&self) -> &Atms {
        &self.atms
    }

    /// Installs an app and launches it to the foreground. When RCHDroid
    /// mode is active and the previous foreground app holds a shadow, the
    /// switch releases it (§3.5's immediate-release rule).
    ///
    /// Returns the component name used to address the app later.
    ///
    /// # Errors
    ///
    /// Propagates handler failures.
    pub fn install_and_launch(
        &mut self,
        model: Box<dyn AppModel>,
        base_memory_bytes: u64,
        complexity: f64,
    ) -> Result<String, DeviceError> {
        // Foreground switch: background the old app's activity and
        // release any shadow it holds.
        if let Some(prev) = self.foreground_component() {
            if let Some(p) = self.apps.get_mut(&prev) {
                if let Some(instance) = p.foreground_instance() {
                    let token = p
                        .thread
                        .instance(instance)
                        .map(droidsim_app::Activity::token)
                        .ok();
                    let _ = p.thread.pause_stop_sequence(instance);
                    if let Some(token) = token {
                        let _ = self.atms.set_record_state(token, RecordState::Stopped);
                    }
                }
                if self.mode.is_rchdroid() {
                    p.rch
                        .on_foreground_switched(&mut p.thread, &mut self.atms)
                        .map_err(|e| DeviceError::Handling(e.to_string()))?;
                }
            }
        }

        let component = model.component_name().to_owned();
        if self.apps.contains_key(&component) {
            return Err(DeviceError::Handling(format!(
                "`{component}` is already installed"
            )));
        }
        let handled = model.handled_changes();
        let mut process = AppProcess::new(model, base_memory_bytes, complexity);
        if let HandlingMode::RchDroid(policy, options) = self.mode {
            process.rch = rchdroid::RchDroid::with_options(policy, options);
        }

        let start =
            self.atms
                .start_activity_with_mask(&Intent::new(&component), self.clock, handled);
        let instance = process.thread.perform_launch_activity(
            process.model.as_ref(),
            start.record,
            self.atms.global_config().clone(),
            None,
        );
        process
            .thread
            .resume_sequence(instance, false)
            .map_err(|e| DeviceError::Handling(e.to_string()))?;
        let _ = self
            .atms
            .set_record_state(start.record, RecordState::Resumed);

        let profile = process.cost_profile();
        let latency = self.cost.create(&profile)
            + self.cost.inflate(&profile)
            + self.cost.resume_fresh(&profile);
        self.clock += latency;
        self.events.push(DeviceEvent::AppLaunched {
            at: self.clock,
            component: component.clone(),
        });
        self.apps.insert(component.clone(), process);
        Ok(component)
    }

    /// The component of the foreground activity, if any.
    pub fn foreground_component(&self) -> Option<String> {
        let record = self.atms.foreground_record()?;
        let component = self.atms.record(record)?.component().to_owned();
        self.apps.contains_key(&component).then_some(component)
    }

    /// Switches to an already-installed app (the recents gesture). The
    /// previous foreground app is paused/stopped and — under RCHDroid —
    /// its shadow instance is released immediately (§3.5: "If the
    /// foreground activity instance is terminated or switched, the
    /// corresponding shadow-state activity will be released immediately").
    ///
    /// # Errors
    ///
    /// [`DeviceError::UnknownApp`] if the target is not installed or has
    /// crashed.
    pub fn switch_to_app(&mut self, component: &str) -> Result<(), DeviceError> {
        if !self.apps.contains_key(component) || self.is_crashed(component) {
            return Err(DeviceError::UnknownApp(component.to_owned()));
        }
        let previous = self.foreground_component();
        if previous.as_deref() == Some(component) {
            return Ok(());
        }

        // Background the previous foreground app.
        if let Some(prev) = previous {
            let p = self.apps.get_mut(&prev).expect("installed");
            if let Some(instance) = p.foreground_instance() {
                let token = p
                    .thread
                    .instance(instance)
                    .map(droidsim_app::Activity::token)
                    .ok();
                let _ = p.thread.pause_stop_sequence(instance);
                if let Some(token) = token {
                    let _ = self.atms.set_record_state(token, RecordState::Stopped);
                }
            }
            if self.mode.is_rchdroid() {
                p.rch
                    .on_foreground_switched(&mut p.thread, &mut self.atms)
                    .map_err(|e| DeviceError::Handling(e.to_string()))?;
            }
        }

        // Bring the target's task to the front and resume its activity.
        let record = self
            .atms
            .bring_to_front(component)
            .ok_or_else(|| DeviceError::UnknownApp(component.to_owned()))?;
        let saved_state = self.atms.record(record).and_then(|r| r.saved_state.clone());
        let config = self.atms.global_config().clone();
        let p = self.apps.get_mut(component).expect("checked above");
        if let Some(instance) = p.thread.instance_for_token(record) {
            p.thread
                .resume_sequence(instance, false)
                .map_err(|e| DeviceError::Handling(e.to_string()))?;
        } else {
            // The instance was reclaimed under memory pressure: relaunch
            // it from the bundle the system retained.
            let transaction = droidsim_app::ClientTransaction::new(record)
                .with(droidsim_app::LifecycleItem::Launch {
                    config,
                    saved_state,
                })
                .with(droidsim_app::LifecycleItem::Resume { sunny: false });
            p.thread
                .execute_transaction(p.model.as_ref(), &transaction)
                .map_err(|e| DeviceError::Handling(e.to_string()))?;
        }
        let _ = self.atms.set_record_state(record, RecordState::Resumed);
        let profile = p.cost_profile();
        let latency = self.cost.resume_existing(&profile);
        let latency = self.jittered(latency);
        self.clock += latency;

        // If the configuration changed while the app was backgrounded,
        // Android handles the stale configuration on resume (stock:
        // relaunch; RCHDroid: shadow/sunny). Re-applying the current
        // global configuration triggers exactly that path.
        let stale = self
            .atms
            .record(record)
            .is_some_and(|r| r.config != *self.atms.global_config());
        if stale {
            let current = self.atms.global_config().clone();
            let _ = self.change_configuration(current);
        }
        Ok(())
    }

    /// The back button: finishes the foreground activity. Any coupled
    /// shadow instance is released first (§3.5: "If the foreground
    /// activity instance is terminated or switched, the corresponding
    /// shadow-state activity will be released immediately").
    ///
    /// # Errors
    ///
    /// [`DeviceError::NoForegroundApp`] with nothing in the foreground.
    pub fn press_back(&mut self) -> Result<(), DeviceError> {
        let component = self
            .foreground_component()
            .ok_or(DeviceError::NoForegroundApp)?;
        let record = self
            .atms
            .foreground_record()
            .ok_or(DeviceError::NoForegroundApp)?;
        let p = self.apps.get_mut(&component).expect("installed");

        if self.mode.is_rchdroid() {
            p.rch
                .on_foreground_switched(&mut p.thread, &mut self.atms)
                .map_err(|e| DeviceError::Handling(e.to_string()))?;
        }
        if let Some(instance) = p.thread.instance_for_token(record) {
            let _ = p.thread.destroy_activity(instance);
        }
        let _ = self.atms.destroy_record(record);
        Ok(())
    }

    /// Simulates system memory pressure: Android reclaims *stopped*
    /// (invisible, backgrounded) activities. The Shadow state's whole
    /// point (§3.2) is its exemption: "A Shadow state activity … will not
    /// be destroyed by the Android system unless it is garbage-collected."
    ///
    /// Returns the number of activity instances reclaimed.
    pub fn trigger_memory_pressure(&mut self) -> usize {
        let mut reclaimed = 0;
        let components: Vec<String> = self.apps.keys().cloned().collect();
        for component in components {
            let Some(p) = self.apps.get_mut(&component) else {
                continue;
            };
            if p.crashed.is_some() {
                continue;
            }
            for instance in p.thread.alive_instances() {
                let Ok(activity) = p.thread.instance(instance) else {
                    continue;
                };
                // Only Stopped instances are reclaimable; Shadow is exempt.
                if activity.state() != droidsim_app::ActivityState::Stopped {
                    continue;
                }
                let token = activity.token();
                // Android retains the saved-state bundle in the system
                // server so the user can come back later.
                let saved = activity.save_instance_state(p.model.as_ref());
                if p.thread.destroy_activity(instance).is_ok() {
                    if let Some(record) = self.atms.record_mut(token) {
                        record.saved_state = Some(saved);
                        record.state = RecordState::Stopped;
                    }
                    reclaimed += 1;
                }
            }
        }
        reclaimed
    }

    /// Read access to an installed app process.
    ///
    /// # Errors
    ///
    /// [`DeviceError::UnknownApp`].
    pub fn process(&self, component: &str) -> Result<&AppProcess, DeviceError> {
        self.apps
            .get(component)
            .ok_or_else(|| DeviceError::UnknownApp(component.to_owned()))
    }

    /// Whether an app has crashed.
    pub fn is_crashed(&self, component: &str) -> bool {
        self.apps
            .get(component)
            .is_some_and(|p| p.crashed.is_some())
    }

    /// PSS snapshot for an app.
    ///
    /// # Errors
    ///
    /// [`DeviceError::UnknownApp`].
    pub fn memory_snapshot(&self, component: &str) -> Result<MemorySnapshot, DeviceError> {
        Ok(self.process(component)?.memory_snapshot())
    }

    /// Runs `f` against the foreground activity (user interaction: typing
    /// into views, adding dynamic views, scrolling).
    ///
    /// # Errors
    ///
    /// [`DeviceError::NoForegroundApp`] / [`DeviceError::AppCrashed`].
    pub fn with_foreground_activity_mut<R>(
        &mut self,
        f: impl FnOnce(&mut droidsim_app::Activity) -> R,
    ) -> Result<R, DeviceError> {
        let component = self
            .foreground_component()
            .ok_or(DeviceError::NoForegroundApp)?;
        let p = self
            .apps
            .get_mut(&component)
            .expect("foreground app installed");
        if p.crashed.is_some() {
            return Err(DeviceError::AppCrashed(component));
        }
        let instance = p
            .foreground_instance()
            .ok_or(DeviceError::NoForegroundApp)?;
        let activity = p
            .thread
            .instance_mut(instance)
            .map_err(|e| DeviceError::Handling(e.to_string()))?;
        Ok(f(activity))
    }

    /// Starts an async task whose callback targets the current foreground
    /// instance (a button press).
    ///
    /// # Errors
    ///
    /// [`DeviceError::NoForegroundApp`] / [`DeviceError::AppCrashed`].
    pub fn start_async_on_foreground(&mut self, spec: AsyncSpec) -> Result<(), DeviceError> {
        let component = self
            .foreground_component()
            .ok_or(DeviceError::NoForegroundApp)?;
        let p = self
            .apps
            .get_mut(&component)
            .expect("foreground app installed");
        if p.crashed.is_some() {
            return Err(DeviceError::AppCrashed(component));
        }
        let instance = p
            .foreground_instance()
            .ok_or(DeviceError::NoForegroundApp)?;
        let now = self.clock;
        p.thread
            .start_async(instance, spec, now)
            .map_err(|e| DeviceError::Handling(e.to_string()))?;
        Ok(())
    }

    /// Issues a 90° rotation (the `wm size` toggle of the paper's
    /// workflow).
    ///
    /// # Errors
    ///
    /// As [`Device::change_configuration`].
    pub fn rotate(&mut self) -> Result<ChangeReport, DeviceError> {
        self.change_configuration(self.atms.global_config().rotated())
    }

    /// The artifact's `adb shell wm size WxH` command: overrides the
    /// usable screen size (a SCREEN_SIZE — and possibly ORIENTATION —
    /// runtime change).
    ///
    /// # Errors
    ///
    /// As [`Device::change_configuration`].
    pub fn wm_size(&mut self, width_dp: u32, height_dp: u32) -> Result<ChangeReport, DeviceError> {
        let screen = droidsim_config::ScreenSize::new(width_dp, height_dp);
        self.change_configuration(self.atms.global_config().with_screen(screen))
    }

    /// The artifact's `adb shell wm size reset`: back to the boot screen.
    ///
    /// # Errors
    ///
    /// As [`Device::change_configuration`].
    pub fn wm_size_reset(&mut self) -> Result<ChangeReport, DeviceError> {
        let boot = Configuration::phone_portrait();
        self.change_configuration(self.atms.global_config().with_screen(boot.screen))
    }

    /// Applies a runtime configuration change and handles it for the
    /// foreground app per the device's mode. The virtual clock advances by
    /// the handling latency.
    ///
    /// # Errors
    ///
    /// [`DeviceError::NoForegroundApp`] if nothing is in the foreground;
    /// [`DeviceError::AppCrashed`] if the foreground app already crashed.
    pub fn change_configuration(
        &mut self,
        config: Configuration,
    ) -> Result<ChangeReport, DeviceError> {
        let component = self
            .foreground_component()
            .ok_or(DeviceError::NoForegroundApp)?;
        if self.is_crashed(&component) {
            return Err(DeviceError::AppCrashed(component));
        }
        let record = self
            .atms
            .foreground_record()
            .ok_or(DeviceError::NoForegroundApp)?;
        self.atms.update_global_config(config);

        let p = self.apps.get_mut(&component).expect("installed");
        let profile = p.cost_profile();
        let now = self.clock;

        let (path, latency) = match self.mode {
            HandlingMode::Android10 => {
                let decision = self
                    .atms
                    .ensure_activity_configuration(record, false)
                    .map_err(|e| DeviceError::Handling(e.to_string()))?;
                match decision {
                    ConfigDecision::NoChange => (HandlingPath::NoChange, SimDuration::ZERO),
                    ConfigDecision::HandledByApp(_) => {
                        if let Some(instance) = p.foreground_instance() {
                            let activity = p
                                .thread
                                .instance_mut(instance)
                                .map_err(|e| DeviceError::Handling(e.to_string()))?;
                            p.model.on_configuration_changed(activity);
                        }
                        (
                            HandlingPath::HandledByApp,
                            self.cost.handled_by_app(&profile),
                        )
                    }
                    ConfigDecision::Relaunch(_) => {
                        // Stock relaunch: the ATMS ships a relaunch
                        // ClientTransaction (save + destroy + recreate +
                        // resume). Async tasks keep running against the
                        // dead instance — the crash scenario.
                        let transaction = droidsim_app::ClientTransaction::relaunch(
                            record,
                            self.atms.global_config().clone(),
                        );
                        p.thread
                            .execute_transaction(p.model.as_ref(), &transaction)
                            .map_err(|e| DeviceError::Handling(e.to_string()))?;
                        let _ = self.atms.set_record_state(record, RecordState::Resumed);
                        (
                            HandlingPath::Relaunch,
                            self.cost.android10_relaunch(&profile),
                        )
                    }
                    ConfigDecision::PreventedRelaunch(_) => {
                        return Err(DeviceError::Handling(
                            "prevent=false never yields PreventedRelaunch".to_owned(),
                        ));
                    }
                }
            }
            HandlingMode::RchDroid(..) => {
                let outcome = match p.rch.handle_configuration_change(
                    &mut p.thread,
                    &mut self.atms,
                    p.model.as_ref(),
                    now,
                ) {
                    Ok(outcome) => outcome,
                    // Rung 3: the ladder could not absorb the failure.
                    // The process is marked crashed — never an unwind.
                    Err(e) => {
                        Self::mark_crashed(
                            &mut self.atms,
                            &mut self.events,
                            p,
                            &component,
                            now,
                            e.to_string(),
                        );
                        return Err(DeviceError::AppCrashed(component));
                    }
                };
                match outcome.kind {
                    ChangeKind::NoChange => (HandlingPath::NoChange, SimDuration::ZERO),
                    ChangeKind::HandledByApp => (
                        HandlingPath::HandledByApp,
                        self.cost.handled_by_app(&profile),
                    ),
                    ChangeKind::Init => (HandlingPath::RchInit, self.cost.rchdroid_init(&profile)),
                    ChangeKind::Flip => (HandlingPath::RchFlip, self.cost.rchdroid_flip(&profile)),
                    // Rung 2: the change degraded to the stock restart
                    // path, so it pays the stock relaunch price.
                    ChangeKind::FallbackRestart => (
                        HandlingPath::RchFallback,
                        self.cost.android10_relaunch(&profile),
                    ),
                }
            }
            HandlingMode::RuntimeDroid => {
                p.rtd
                    .handle_configuration_change(&mut p.thread, &mut self.atms, p.model.as_ref())
                    .map_err(|e| DeviceError::Handling(e.to_string()))?;
                (
                    HandlingPath::RuntimeDroidInPlace,
                    self.cost.runtimedroid(&profile),
                )
            }
        };

        let latency = self.jittered(latency);
        self.clock += latency;
        let p = self.apps.get_mut(&component).expect("installed");
        if path != HandlingPath::NoChange {
            p.latencies.push((now, latency));
        }
        if self.mode.is_rchdroid() {
            Self::drain_fault_records(&mut self.events, p, &component, now);
        }
        self.events.push(DeviceEvent::ConfigChange {
            at: now,
            latency,
            path,
            component: component.clone(),
        });
        Ok(ChangeReport {
            path,
            latency,
            component,
        })
    }

    /// Advances the virtual clock by `duration`, delivering async-task
    /// completions and UI messages as they come due and running the shadow
    /// GC (RCHDroid mode) on its interval.
    pub fn advance(&mut self, duration: SimDuration) {
        let target = self.clock + duration;
        loop {
            let next_app_wakeup = self
                .apps
                .values()
                .filter(|p| p.crashed.is_none())
                .filter_map(|p| p.thread.next_wakeup())
                .min();
            let next_gc = if self.mode.is_rchdroid() {
                Some(self.next_gc)
            } else {
                None
            };
            let next = match (next_app_wakeup, next_gc) {
                (Some(a), Some(g)) => Some(a.min(g)),
                (a, g) => a.or(g),
            };
            let Some(next) = next.filter(|&t| t <= target) else {
                break;
            };
            self.clock = self.clock.max(next);

            // GC tick.
            if self.mode.is_rchdroid() && next >= self.next_gc {
                self.run_gc_tick();
                self.next_gc += self.gc_interval;
                continue;
            }

            // Async completions + UI dispatch for every live app.
            self.pump_apps_until(next);
        }
        self.clock = self.clock.max(target);
    }

    fn run_gc_tick(&mut self) {
        let now = self.clock;
        let mut passes = Vec::new();
        for p in self.apps.values_mut() {
            if p.crashed.is_some() {
                continue;
            }
            if p.thread.current_shadow().is_none() {
                continue;
            }
            match p.rch.run_gc(&mut p.thread, &mut self.atms, now) {
                Ok(decision) => passes.push(decision.should_collect()),
                Err(_) => passes.push(false),
            }
        }
        for collected in passes {
            self.events.push(DeviceEvent::GcPass { at: now, collected });
        }
    }

    fn pump_apps_until(&mut self, now: SimTime) {
        let components: Vec<String> = self.apps.keys().cloned().collect();
        for component in components {
            let Some(p) = self.apps.get_mut(&component) else {
                continue;
            };
            if p.crashed.is_some() {
                continue;
            }
            p.thread.pump_async(now);
            let messages = p.thread.drain_ui(now);
            for message in messages {
                let UiMessage::AsyncResult(work) = message;
                match self.mode {
                    HandlingMode::RchDroid(..) => {
                        match p.rch.on_async_delivered(
                            &mut p.thread,
                            &mut self.atms,
                            p.model.as_ref(),
                            &work,
                            now,
                        ) {
                            Ok(AsyncDelivery::Delivered) => {
                                self.events.push(DeviceEvent::AsyncDelivered {
                                    at: now,
                                    component: component.clone(),
                                    migration_latency: None,
                                    migrated_views: 0,
                                });
                            }
                            Ok(AsyncDelivery::Migrated(r)) => {
                                self.events.push(DeviceEvent::AsyncDelivered {
                                    at: now,
                                    component: component.clone(),
                                    migration_latency: Some(self.cost.async_migration(r.migrated)),
                                    migrated_views: r.migrated,
                                });
                            }
                            // Rungs 1 and 2: the callback was dropped
                            // (panic, stale target) or the handler
                            // degraded to a stock restart. Nothing was
                            // delivered; the fault-record drain below
                            // logs what happened.
                            Ok(AsyncDelivery::CallbackPanicked)
                            | Ok(AsyncDelivery::DroppedStale)
                            | Ok(AsyncDelivery::FallbackRestart { .. }) => {}
                            Err(e) => {
                                Self::mark_crashed(
                                    &mut self.atms,
                                    &mut self.events,
                                    p,
                                    &component,
                                    now,
                                    e.to_string(),
                                );
                            }
                        }
                    }
                    HandlingMode::Android10 | HandlingMode::RuntimeDroid => {
                        match p.thread.deliver_async(p.model.as_ref(), &work) {
                            Ok(()) => {
                                self.events.push(DeviceEvent::AsyncDelivered {
                                    at: now,
                                    component: component.clone(),
                                    migration_latency: None,
                                    migrated_views: 0,
                                });
                            }
                            Err(ThreadError::View(v)) if v.is_crash() => {
                                Self::mark_crashed(
                                    &mut self.atms,
                                    &mut self.events,
                                    p,
                                    &component,
                                    now,
                                    v.to_string(),
                                );
                            }
                            Err(e) => {
                                Self::mark_crashed(
                                    &mut self.atms,
                                    &mut self.events,
                                    p,
                                    &component,
                                    now,
                                    e.to_string(),
                                );
                            }
                        }
                    }
                }
            }
            // Frame boundary: a batched flush policy may have a deadline
            // due even when no further delivery arrives. No-op for the
            // default eager policy.
            if self.mode.is_rchdroid() {
                if let Some(p) = self.apps.get_mut(&component) {
                    if p.crashed.is_none() {
                        if let Err(e) = p.rch.on_frame_tick(
                            &mut p.thread,
                            &mut self.atms,
                            p.model.as_ref(),
                            now,
                        ) {
                            Self::mark_crashed(
                                &mut self.atms,
                                &mut self.events,
                                p,
                                &component,
                                now,
                                e.to_string(),
                            );
                        }
                    }
                    Self::drain_fault_records(&mut self.events, p, &component, now);
                }
            }
        }
    }

    /// Moves the handler's absorbed-fault records (rungs 1 and 2) into
    /// the device event log. Rung-3 records are skipped — the same
    /// escalation already surfaced as a [`DeviceEvent::Crash`].
    fn drain_fault_records(
        events: &mut Vec<DeviceEvent>,
        p: &mut AppProcess,
        component: &str,
        now: SimTime,
    ) {
        for record in p.rch.take_fault_records() {
            if record.rung == LadderRung::ProcessCrash {
                continue;
            }
            events.push(DeviceEvent::Fault {
                at: now,
                component: component.to_owned(),
                site: record.site.to_owned(),
                rung: record.rung.name().to_owned(),
            });
        }
    }

    /// Arms a deterministic fault plan on an app's RCHDroid handler
    /// ([`FaultPlan::disarmed`] turns injection back off). Only
    /// meaningful in RCHDroid mode; other modes ignore the plan.
    ///
    /// # Errors
    ///
    /// [`DeviceError::UnknownApp`].
    pub fn arm_faults(&mut self, component: &str, plan: FaultPlan) -> Result<(), DeviceError> {
        let p = self
            .apps
            .get_mut(component)
            .ok_or_else(|| DeviceError::UnknownApp(component.to_owned()))?;
        p.rch.arm_faults(plan);
        Ok(())
    }

    /// Lifetime fault-handling metrics of an app's RCHDroid handler:
    /// faults by site, the rung that absorbed each, and recovery
    /// latencies.
    ///
    /// # Errors
    ///
    /// [`DeviceError::UnknownApp`].
    pub fn fault_metrics(&self, component: &str) -> Result<FaultMetrics, DeviceError> {
        Ok(self.process(component)?.rch.fault_metrics())
    }

    /// The app's complete per-device metric sink — migration counters
    /// plus the fault ledger — as one mergeable value. This is what a
    /// fleet reducer collects per device and folds in index order, so
    /// parallel runs never interleave histogram writes.
    ///
    /// # Errors
    ///
    /// [`DeviceError::UnknownApp`].
    pub fn device_metrics(&self, component: &str) -> Result<DeviceMetrics, DeviceError> {
        let p = self.process(component)?;
        Ok(DeviceMetrics {
            migration: p.rch.migration_metrics().clone(),
            faults: p.rch.fault_metrics(),
        })
    }

    fn mark_crashed(
        atms: &mut Atms,
        events: &mut Vec<DeviceEvent>,
        p: &mut AppProcess,
        component: &str,
        now: SimTime,
        exception: String,
    ) {
        // Process death: destroy every instance and its record.
        for instance in p.thread.alive_instances() {
            if let Ok(a) = p.thread.instance(instance) {
                let token = a.token();
                let _ = atms.destroy_record(token);
            }
            let _ = p.thread.destroy_activity(instance);
        }
        p.crashed = Some(exception.clone());
        events.push(DeviceEvent::Crash {
            at: now,
            component: component.to_owned(),
            exception,
        });
    }
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("mode", &self.mode)
            .field("clock", &self.clock)
            .field("apps", &self.apps.keys().collect::<Vec<_>>())
            .field("events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidsim_app::SimpleApp;
    use droidsim_view::ViewOp;

    fn device_with_app(mode: HandlingMode, views: usize) -> (Device, String) {
        let mut d = Device::new(mode);
        let c = d
            .install_and_launch(Box::new(SimpleApp::with_views(views)), 40 << 20, 1.0)
            .unwrap();
        (d, c)
    }

    #[test]
    fn launch_brings_app_to_foreground() {
        let (d, c) = device_with_app(HandlingMode::Android10, 4);
        assert_eq!(d.foreground_component(), Some(c.clone()));
        assert!(!d.is_crashed(&c));
        assert!(d.now() > SimTime::ZERO, "launch took time");
    }

    #[test]
    fn stock_rotation_relaunches() {
        let (mut d, c) = device_with_app(HandlingMode::Android10, 4);
        let report = d.rotate().unwrap();
        assert_eq!(report.path, HandlingPath::Relaunch);
        let lat = report.latency.as_millis_f64();
        assert!((lat - 141.8).abs() < 4.0, "≈ the paper's 141.8 ms: {lat}");
        assert_eq!(d.process(&c).unwrap().thread().alive_instances().len(), 1);
    }

    #[test]
    fn rchdroid_rotation_init_then_flip() {
        let (mut d, c) = device_with_app(HandlingMode::rchdroid_default(), 4);
        let first = d.rotate().unwrap();
        assert_eq!(first.path, HandlingPath::RchInit);
        let second = d.rotate().unwrap();
        assert_eq!(second.path, HandlingPath::RchFlip);
        assert!((second.latency.as_millis_f64() - 89.2).abs() < 0.5);
        assert_eq!(d.process(&c).unwrap().thread().alive_instances().len(), 2);
    }

    #[test]
    fn runtimedroid_rotation_in_place() {
        let (mut d, c) = device_with_app(HandlingMode::RuntimeDroid, 4);
        let report = d.rotate().unwrap();
        assert_eq!(report.path, HandlingPath::RuntimeDroidInPlace);
        assert_eq!(d.process(&c).unwrap().thread().alive_instances().len(), 1);
    }

    #[test]
    fn stock_async_after_rotation_crashes_the_app() {
        // The Fig. 9 scenario: touch → AsyncTask → resize → task returns.
        let (mut d, c) = device_with_app(HandlingMode::Android10, 4);
        let spec = SimpleApp::with_views(4).button_task();
        d.start_async_on_foreground(spec).unwrap();
        d.rotate().unwrap();
        d.advance(SimDuration::from_secs(6));
        assert!(d.is_crashed(&c), "NullPointer on task return");
        assert!(d
            .events()
            .iter()
            .any(|e| matches!(e, DeviceEvent::Crash { exception, .. }
                if exception.contains("NullPointerException"))));
        assert_eq!(
            d.memory_snapshot(&c).unwrap().total_bytes(),
            0,
            "process gone"
        );
    }

    #[test]
    fn rchdroid_async_after_rotation_migrates_instead() {
        let (mut d, c) = device_with_app(HandlingMode::rchdroid_default(), 4);
        let spec = SimpleApp::with_views(4).button_task();
        d.start_async_on_foreground(spec).unwrap();
        d.rotate().unwrap();
        d.advance(SimDuration::from_secs(6));
        assert!(!d.is_crashed(&c));
        let migrated: usize = d
            .events()
            .iter()
            .filter_map(|e| match e {
                DeviceEvent::AsyncDelivered { migrated_views, .. } => Some(*migrated_views),
                _ => None,
            })
            .sum();
        assert_eq!(migrated, 4, "all four images migrated to the sunny tree");
        // The sunny (foreground) tree shows the loaded images.
        let p = d.process(&c).unwrap();
        let fg = p.foreground_activity().unwrap();
        let img = fg.tree.find_by_id_name("image_0").unwrap();
        assert_eq!(
            fg.tree
                .view(img)
                .unwrap()
                .attrs
                .drawable
                .as_ref()
                .unwrap()
                .0,
            "loaded_0.png"
        );
    }

    #[test]
    fn runtimedroid_async_after_rotation_survives() {
        let (mut d, c) = device_with_app(HandlingMode::RuntimeDroid, 4);
        let spec = SimpleApp::with_views(4).button_task();
        d.start_async_on_foreground(spec).unwrap();
        d.rotate().unwrap();
        d.advance(SimDuration::from_secs(6));
        assert!(!d.is_crashed(&c));
    }

    #[test]
    fn rchdroid_memory_includes_the_shadow() {
        let (mut d, c) = device_with_app(HandlingMode::rchdroid_default(), 4);
        let before = d.memory_snapshot(&c).unwrap().total_bytes();
        d.rotate().unwrap();
        let after = d.memory_snapshot(&c).unwrap().total_bytes();
        assert!(after > before, "two instances alive: {before} -> {after}");
    }

    #[test]
    fn gc_reclaims_shadow_after_idle_period() {
        let (mut d, c) = device_with_app(HandlingMode::rchdroid_default(), 4);
        d.rotate().unwrap();
        assert_eq!(d.process(&c).unwrap().thread().alive_instances().len(), 2);
        // THRESH_T = 50 s: idle 60 s (frequency drops out of the window).
        d.advance(SimDuration::from_secs(70));
        assert_eq!(d.process(&c).unwrap().thread().alive_instances().len(), 1);
        assert!(d.events().iter().any(|e| matches!(
            e,
            DeviceEvent::GcPass {
                collected: true,
                ..
            }
        )));
    }

    #[test]
    fn view_state_survives_rchdroid_change() {
        let (mut d, _) = device_with_app(HandlingMode::rchdroid_default(), 2);
        d.with_foreground_activity_mut(|a| {
            let root = a.tree.find_by_id_name("root").unwrap();
            a.tree.apply(root, ViewOp::ScrollTo(777)).unwrap();
        })
        .unwrap();
        d.rotate().unwrap();
        let scroll = d
            .with_foreground_activity_mut(|a| {
                let root = a.tree.find_by_id_name("root").unwrap();
                a.tree.view(root).unwrap().attrs.scroll_y
            })
            .unwrap();
        assert_eq!(scroll, 777);
    }

    #[test]
    fn crashed_app_rejects_further_changes() {
        let (mut d, c) = device_with_app(HandlingMode::Android10, 2);
        d.start_async_on_foreground(SimpleApp::with_views(2).button_task())
            .unwrap();
        d.rotate().unwrap();
        d.advance(SimDuration::from_secs(6));
        assert!(d.is_crashed(&c));
        assert_eq!(d.rotate(), Err(DeviceError::NoForegroundApp));
    }

    #[test]
    fn foreground_switch_releases_shadow() {
        let (mut d, c1) = device_with_app(HandlingMode::rchdroid_default(), 2);
        d.rotate().unwrap();
        assert_eq!(d.process(&c1).unwrap().thread().alive_instances().len(), 2);
        // Launch a second app → the first app's shadow is released.
        let mut other = SimpleApp::builder(1).build();
        let _ = &mut other;
        // Give it a distinct component by wrapping: SimpleApp is fixed to
        // com.bench/.Main, so simulate the switch directly instead.
        let p = d.apps.get_mut(&c1).unwrap();
        p.rch
            .on_foreground_switched(&mut p.thread, &mut d.atms)
            .unwrap();
        assert_eq!(d.process(&c1).unwrap().thread().alive_instances().len(), 1);
    }

    #[test]
    fn empty_device_has_no_foreground() {
        let mut d = Device::new(HandlingMode::rchdroid_default());
        assert_eq!(d.foreground_component(), None);
        assert_eq!(d.rotate(), Err(DeviceError::NoForegroundApp));
        assert_eq!(d.trigger_memory_pressure(), 0);
    }

    #[test]
    fn double_install_is_rejected() {
        let (mut d, _) = device_with_app(HandlingMode::rchdroid_default(), 2);
        let err = d
            .install_and_launch(Box::new(SimpleApp::with_views(2)), 1 << 20, 1.0)
            .unwrap_err();
        assert!(matches!(err, DeviceError::Handling(_)));
    }

    #[test]
    fn no_change_is_free() {
        let (mut d, _) = device_with_app(HandlingMode::rchdroid_default(), 2);
        let same = d.configuration().clone();
        let report = d.change_configuration(same).unwrap();
        assert_eq!(report.path, HandlingPath::NoChange);
        assert_eq!(report.latency, SimDuration::ZERO);
    }

    #[test]
    fn injected_fault_degrades_to_fallback_not_crash() {
        use droidsim_faults::FaultSite;
        let (mut d, c) = device_with_app(HandlingMode::rchdroid_default(), 4);
        d.arm_faults(
            &c,
            FaultPlan::seeded(1).on_nth_probe(FaultSite::BundleCorruption, 1),
        )
        .unwrap();
        let report = d.rotate().unwrap();
        assert_eq!(report.path, HandlingPath::RchFallback);
        assert!(
            report.latency > SimDuration::ZERO,
            "fallback pays the stock relaunch price"
        );
        assert!(!d.is_crashed(&c), "absorbed, not fatal");
        assert!(d.events().iter().any(|e| matches!(
            e,
            DeviceEvent::Fault { site, rung, .. }
                if site == "bundle-corruption" && rung == "fallback-restart"
        )));
        let m = d.fault_metrics(&c).unwrap();
        assert_eq!(m.fallback_restarts, 1);
        assert_eq!(m.site_count("bundle-corruption"), 1);
        // The ladder recovers: the next change runs the protocol again.
        assert_eq!(d.rotate().unwrap().path, HandlingPath::RchInit);
    }

    #[test]
    fn contained_async_fault_is_logged_not_fatal() {
        use droidsim_faults::FaultSite;
        let (mut d, c) = device_with_app(HandlingMode::rchdroid_default(), 4);
        d.start_async_on_foreground(SimpleApp::with_views(4).button_task())
            .unwrap();
        d.rotate().unwrap();
        d.arm_faults(
            &c,
            FaultPlan::seeded(2).on_nth_probe(FaultSite::AsyncCallbackPanic, 1),
        )
        .unwrap();
        d.advance(SimDuration::from_secs(6));
        assert!(!d.is_crashed(&c), "rung 1 contained the panic");
        assert!(d.events().iter().any(|e| matches!(
            e,
            DeviceEvent::Fault { site, rung, .. }
                if site == "async-callback-panic" && rung == "contained-per-view"
        )));
        assert_eq!(d.fault_metrics(&c).unwrap().contained_per_view, 1);
        assert_eq!(
            d.process(&c).unwrap().thread().alive_instances().len(),
            2,
            "shadow and sunny both survive the dropped callback"
        );
    }

    #[test]
    fn latencies_are_recorded_per_app() {
        let (mut d, c) = device_with_app(HandlingMode::rchdroid_default(), 4);
        for _ in 0..4 {
            d.rotate().unwrap();
        }
        let lats = d.process(&c).unwrap().latencies_ms();
        assert_eq!(lats.len(), 4);
        assert!(lats[0] > lats[1], "init slower than flips");
        assert!((lats[1] - lats[3]).abs() < 0.01, "flips are flat");
    }
}
