//! Whole-device integration: one virtual Android device with a pluggable
//! runtime-change handling mode.
//!
//! A [`Device`] owns the system server ([`Atms`](droidsim_atms::Atms)), a
//! set of installed app processes, the calibrated cost model and the
//! virtual clock. Its public API mirrors the paper's experiment workflow
//! (§A.5): install and launch an app, issue `wm size`-style configuration
//! changes, touch buttons to start async tasks, advance time, and read
//! latencies / memory / crash state back out.
//!
//! The handling mode selects the system under test:
//!
//! * [`HandlingMode::Android10`] — stock restarting-based handling; async
//!   tasks returning after a relaunch crash the app,
//! * [`HandlingMode::RchDroid`] — the paper's shadow/sunny protocol with
//!   coin-flipping and threshold GC,
//! * [`HandlingMode::RuntimeDroid`] — the app-level patching baseline.
//!
//! # Examples
//!
//! ```
//! use droidsim_app::SimpleApp;
//! use droidsim_device::{Device, HandlingMode};
//!
//! let mut device = Device::new(HandlingMode::rchdroid_default());
//! let app = device.install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0).unwrap();
//! let report = device.rotate().unwrap();
//! assert!(report.latency.as_millis_f64() > 0.0);
//! assert!(!device.is_crashed(&app));
//! ```

pub mod device;
pub mod events;
pub mod logcat;
pub mod process;

pub use device::{ChangeReport, Device, DeviceError, HandlingMode};
pub use events::{DeviceEvent, HandlingPath};
pub use process::AppProcess;
