//! The device's observable event log — what the experiment harnesses
//! consume to rebuild the paper's figures.

use droidsim_kernel::{SimDuration, SimTime};

/// Which handling path a configuration change took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlingPath {
    /// Global configuration unchanged.
    NoChange,
    /// App-declared `configChanges`; in-place `onConfigurationChanged`.
    HandledByApp,
    /// Stock Android 10 destroy + recreate.
    Relaunch,
    /// RCHDroid first change (create + couple).
    RchInit,
    /// RCHDroid steady-state coin flip.
    RchFlip,
    /// RCHDroid degraded to the stock restart path after an absorbed
    /// fault (rung 2 of the degradation ladder).
    RchFallback,
    /// RuntimeDroid in-place reconstruction.
    RuntimeDroidInPlace,
}

/// One entry of the device's event log.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceEvent {
    /// An app was installed and brought to the foreground.
    AppLaunched {
        /// Completion time.
        at: SimTime,
        /// Component name.
        component: String,
    },
    /// A runtime configuration change was handled.
    ConfigChange {
        /// Arrival time at the ATMS.
        at: SimTime,
        /// Handling latency (change arrival → activity resumed).
        latency: SimDuration,
        /// Path taken.
        path: HandlingPath,
        /// Foreground component.
        component: String,
    },
    /// An async callback was delivered.
    AsyncDelivered {
        /// Delivery time.
        at: SimTime,
        /// Component.
        component: String,
        /// Lazy-migration cost, when the callback landed on a shadow
        /// instance and its updates were migrated (RCHDroid only).
        migration_latency: Option<SimDuration>,
        /// Views migrated in that pass.
        migrated_views: usize,
    },
    /// An app crashed (uncaught exception on the UI thread).
    Crash {
        /// Crash time.
        at: SimTime,
        /// Component.
        component: String,
        /// The exception, rendered.
        exception: String,
    },
    /// A shadow-GC pass ran.
    GcPass {
        /// Time of the pass.
        at: SimTime,
        /// Whether the shadow instance was reclaimed.
        collected: bool,
    },
    /// The degradation ladder absorbed an injected or organic fault
    /// (rungs 1 and 2 — rung 3 surfaces as [`DeviceEvent::Crash`]).
    Fault {
        /// When the fault was absorbed.
        at: SimTime,
        /// Component whose handler absorbed it.
        component: String,
        /// The fault site's stable name (e.g. `"bundle-corruption"`).
        site: String,
        /// The ladder rung that handled it (e.g. `"contained-per-view"`).
        rung: String,
    },
}

impl DeviceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            DeviceEvent::AppLaunched { at, .. }
            | DeviceEvent::ConfigChange { at, .. }
            | DeviceEvent::AsyncDelivered { at, .. }
            | DeviceEvent::Crash { at, .. }
            | DeviceEvent::GcPass { at, .. }
            | DeviceEvent::Fault { at, .. } => *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_extracts_the_timestamp_of_every_variant() {
        let t = SimTime::from_millis(5);
        let events = [
            DeviceEvent::AppLaunched {
                at: t,
                component: "c".into(),
            },
            DeviceEvent::ConfigChange {
                at: t,
                latency: SimDuration::from_millis(1),
                path: HandlingPath::RchFlip,
                component: "c".into(),
            },
            DeviceEvent::AsyncDelivered {
                at: t,
                component: "c".into(),
                migration_latency: None,
                migrated_views: 0,
            },
            DeviceEvent::Crash {
                at: t,
                component: "c".into(),
                exception: "e".into(),
            },
            DeviceEvent::GcPass {
                at: t,
                collected: false,
            },
            DeviceEvent::Fault {
                at: t,
                component: "c".into(),
                site: "bundle-corruption".into(),
                rung: "fallback-restart".into(),
            },
        ];
        for e in events {
            assert_eq!(e.at(), t);
        }
    }

    #[test]
    fn handling_paths_are_distinct() {
        let paths = [
            HandlingPath::NoChange,
            HandlingPath::HandledByApp,
            HandlingPath::Relaunch,
            HandlingPath::RchInit,
            HandlingPath::RchFlip,
            HandlingPath::RchFallback,
            HandlingPath::RuntimeDroidInPlace,
        ];
        for (i, a) in paths.iter().enumerate() {
            for (j, b) in paths.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }
}
